"""Tests for campaign configuration, planning, execution and result storage."""

import random

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    ExperimentScale,
    ResultStore,
    SMOKE_SCALE,
)
from repro.campaign.plan import (
    full_paper_grid,
    multi_register_campaigns,
    same_register_campaigns,
    single_bit_campaigns,
)
from repro.campaign.results import CampaignResult, ExperimentRecord
from repro.errors import AnalysisError, ConfigurationError
from repro.frontend import compile_program
from repro.injection import ExperimentRunner, Outcome
from repro.injection.faultmodel import win_size_by_index


TINY_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(12):
        scratch[i % 4] = i * 7
        total += scratch[i % 4]
    output(total)
    return total
'''


@pytest.fixture(scope="module")
def tiny_provider():
    program = compile_program("tiny", [TINY_PROGRAM], {"scratch": ("i32", [0, 0, 0, 0])})
    runner = ExperimentRunner(program)

    def provider(name):
        assert name == "tiny"
        return runner

    return provider


def tiny_config(**overrides):
    defaults = dict(
        program="tiny",
        technique="inject-on-write",
        max_mbf=1,
        win_size=win_size_by_index("w1"),
        experiments=25,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestConfig:
    def test_campaign_id_is_stable_and_readable(self):
        config = tiny_config(max_mbf=3, win_size=win_size_by_index("w6"))
        assert config.campaign_id == "tiny/inject-on-write/mbf=3/win=w6:RND(11-100)"

    def test_seed_is_deterministic_and_identity_sensitive(self):
        a = tiny_config()
        b = tiny_config()
        c = tiny_config(max_mbf=2)
        d = tiny_config(master_seed=99)
        assert a.seed == b.seed
        assert a.seed != c.seed
        assert a.seed != d.seed

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config(max_mbf=0)
        with pytest.raises(ConfigurationError):
            tiny_config(experiments=0)
        with pytest.raises(ConfigurationError):
            tiny_config(technique="inject-on-hope")
        with pytest.raises(ConfigurationError):
            ExperimentScale("bad", experiments_per_campaign=0)

    def test_scale_substitution(self):
        config = tiny_config().with_scale(ExperimentScale("s", 7))
        assert config.experiments == 7
        assert config.program == "tiny"


class TestPlans:
    def test_single_bit_plan(self):
        configs = single_bit_campaigns(["a", "b"], SMOKE_SCALE)
        assert len(configs) == 4
        assert all(config.is_single_bit for config in configs)

    def test_same_register_plan_uses_zero_window(self):
        configs = same_register_campaigns(["a"], SMOKE_SCALE)
        assert len(configs) == 20  # 2 techniques x 10 max-MBF values
        assert all(config.win_size.label == "0" for config in configs)

    def test_multi_register_plan_excludes_zero_window(self):
        configs = multi_register_campaigns(["a"], SMOKE_SCALE)
        assert len(configs) == 160  # 2 techniques x 10 max-MBF x 8 win-sizes
        assert all(config.win_size.label != "0" for config in configs)

    def test_full_grid_matches_paper_count(self):
        configs = full_paper_grid(["a"], SMOKE_SCALE)
        assert len(configs) == 182
        ids = {config.campaign_id for config in configs}
        assert len(ids) == 182  # no duplicates

    def test_plan_respects_technique_filter(self):
        configs = single_bit_campaigns(["a"], SMOKE_SCALE, techniques=["inject-on-read"])
        assert len(configs) == 1
        assert configs[0].technique == "inject-on-read"


class TestRunner:
    def test_run_campaign_counts_every_experiment(self, tiny_provider):
        runner = CampaignRunner(tiny_provider)
        result = runner.run_campaign(tiny_config(experiments=30))
        assert result.experiments == 30
        assert result.outcome_counts.total == 30
        assert len(result.records) == 30
        assert sum(result.activated_histogram.values()) == 30

    def test_run_campaign_is_deterministic(self, tiny_provider):
        runner = CampaignRunner(tiny_provider)
        first = runner.run_campaign(tiny_config(experiments=25))
        second = runner.run_campaign(tiny_config(experiments=25))
        assert first.outcome_counts.as_dict() == second.outcome_counts.as_dict()
        assert [r.to_tuple() for r in first.records] == [r.to_tuple() for r in second.records]

    def test_random_win_size_resolved_within_range(self, tiny_provider):
        runner = CampaignRunner(tiny_provider)
        config = tiny_config(max_mbf=3, win_size=win_size_by_index("w4"), experiments=10)
        result = runner.run_campaign(config)
        assert 2 <= result.resolved_win_size <= 10

    def test_run_campaigns_skips_existing(self, tiny_provider):
        runner = CampaignRunner(tiny_provider)
        config = tiny_config(experiments=10)
        store = runner.run_campaigns([config])
        original = store.get(config)
        store2 = runner.run_campaigns([config], store)
        assert store2.get(config) is original
        assert len(store2) == 1

    def test_progress_callback(self, tiny_provider):
        seen = []
        runner = CampaignRunner(tiny_provider, progress=seen.append)
        runner.run_campaign(tiny_config(experiments=5))
        assert len(seen) == 1 and "tiny" in seen[0]


class TestResultStore:
    def _result(self, tiny_provider, **overrides):
        runner = CampaignRunner(tiny_provider)
        return runner.run_campaign(tiny_config(**overrides))

    def test_store_queries(self, tiny_provider):
        store = ResultStore()
        store.add(self._result(tiny_provider, experiments=10))
        store.add(self._result(tiny_provider, experiments=10, max_mbf=3))
        store.add(
            self._result(
                tiny_provider, experiments=10, max_mbf=3, win_size=win_size_by_index("w3")
            )
        )
        assert len(store) == 3
        assert store.programs() == ["tiny"]
        single = store.single_bit("tiny", "inject-on-write")
        assert single.config.is_single_bit
        assert len(store.multi_bit("tiny", "inject-on-write")) == 2
        assert len(store.multi_bit("tiny", "inject-on-write", same_register=True)) == 1
        assert len(store.multi_bit("tiny", "inject-on-write", same_register=False)) == 1

    def test_missing_campaign_raises(self):
        store = ResultStore()
        with pytest.raises(AnalysisError):
            store.get("nope")
        with pytest.raises(AnalysisError):
            store.single_bit("tiny", "inject-on-read")

    def test_json_roundtrip(self, tiny_provider, tmp_path):
        store = ResultStore()
        store.add(self._result(tiny_provider, experiments=15))
        store.add(self._result(tiny_provider, experiments=15, max_mbf=5))
        path = tmp_path / "results.json"
        store.save(path)
        loaded = ResultStore.load(path)
        assert len(loaded) == 2
        for campaign_id in store.campaign_ids():
            original = store.get(campaign_id)
            restored = loaded.get(campaign_id)
            assert restored.outcome_counts.as_dict() == original.outcome_counts.as_dict()
            assert restored.activated_histogram == original.activated_histogram
            assert [r.to_tuple() for r in restored.records] == [
                r.to_tuple() for r in original.records
            ]

    def test_json_roundtrip_is_byte_stable(self, tiny_provider, tmp_path):
        """save -> load -> save produces identical bytes (canonical form)."""
        store = ResultStore()
        store.add(self._result(tiny_provider, experiments=12, max_mbf=5))
        store.add(
            self._result(
                tiny_provider, experiments=12, max_mbf=3, win_size=win_size_by_index("w4")
            )
        )
        store.add(self._result(tiny_provider, experiments=12))
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        store.save(first)
        ResultStore.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_is_insertion_order_independent(self, tiny_provider, tmp_path):
        results = [
            self._result(tiny_provider, experiments=10),
            self._result(tiny_provider, experiments=10, max_mbf=3),
        ]
        forward, backward = ResultStore(), ResultStore()
        for result in results:
            forward.add(result)
        for result in reversed(results):
            backward.add(result)
        forward.save(tmp_path / "forward.json")
        backward.save(tmp_path / "backward.json")
        assert (tmp_path / "forward.json").read_bytes() == (
            tmp_path / "backward.json"
        ).read_bytes()

    def test_sdc_estimate_and_percentages(self, tiny_provider):
        result = self._result(tiny_provider, experiments=40)
        total = (
            result.benign_percentage
            + result.detection_percentage
            + result.sdc_percentage
        )
        assert total == pytest.approx(100.0)
        estimate = result.sdc_estimate()
        assert 0.0 <= estimate.lower <= estimate.point <= estimate.upper <= 1.0

    def test_experiment_record_roundtrip(self):
        record = ExperimentRecord(12, None, Outcome.SDC, 3)
        assert ExperimentRecord.from_tuple(record.to_tuple()) == record
