"""Golden-output oracle checks for the remaining benchmark programs.

test_programs.py already validates qsort, crc32, sha, histo, dijkstra, bfs,
fft and spmv against host-side oracles; this module covers the rest (the
susan family, ifft, sad, stringsearch, basicmath) so every workload's golden
output is pinned to an independently-computed expectation, not just to
"whatever the VM produced".
"""

import struct

import pytest

from repro.programs import registry
from repro.programs.inputs import block_image_pair, rectangle_image
from repro.programs.mibench.susan import BRIGHTNESS_THRESHOLD, HEIGHT, WIDTH
from repro.programs.parboil import sad as sad_module


def golden_ints(name):
    return [bits for _type, bits in registry.get_experiment_runner(name).golden.output]


def as_double(bits):
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def similar(center, neighbour):
    return 1 if abs(neighbour - center) <= BRIGHTNESS_THRESHOLD else 0


class TestSusanOracles:
    @pytest.fixture(scope="class")
    def image(self):
        return rectangle_image(WIDTH, HEIGHT)

    def test_smoothing_checksum(self, image):
        checksum = 0
        smoothed = list(image)
        for row in range(1, HEIGHT - 1):
            for col in range(1, WIDTH - 1):
                center = image[row * WIDTH + col]
                weighted_sum = 0
                weight_total = 0
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        neighbour = image[(row + dr) * WIDTH + (col + dc)]
                        weight = similar(center, neighbour) * 2 + 1
                        weighted_sum += neighbour * weight
                        weight_total += weight
                smoothed[row * WIDTH + col] = weighted_sum // weight_total
                checksum += smoothed[row * WIDTH + col]
        output = golden_ints("susan_smoothing")
        assert output[0] == checksum
        assert output[1] == smoothed[(HEIGHT // 2) * WIDTH + WIDTH // 2]

    def test_edges_count(self, image):
        edge_count = 0
        for row in range(1, HEIGHT - 1):
            for col in range(1, WIDTH - 1):
                center = image[row * WIDTH + col]
                usan = sum(
                    similar(center, image[(row + dr) * WIDTH + (col + dc)])
                    for dr in (-1, 0, 1)
                    for dc in (-1, 0, 1)
                    if not (dr == 0 and dc == 0)
                )
                if usan < 6:
                    edge_count += 1
        assert golden_ints("susan_edges")[0] == edge_count
        assert edge_count > 0  # the rectangle must produce edges

    def test_corners_count(self, image):
        corner_count = 0
        for row in range(2, HEIGHT - 2):
            for col in range(2, WIDTH - 2):
                center = image[row * WIDTH + col]
                usan = 0
                for dr in range(-2, 3):
                    for dc in range(-2, 3):
                        if (dr or dc) and dr * dr + dc * dc <= 4:
                            usan += similar(center, image[(row + dr) * WIDTH + (col + dc)])
                if usan < 6:
                    corner_count += 1
        assert golden_ints("susan_corners")[0] == corner_count


class TestSignalOracles:
    def test_ifft_reconstruction_error_is_tiny(self):
        output = registry.get_experiment_runner("ifft").golden.output
        error = as_double(output[0][1])
        assert 0.0 <= error < 1e-9

    def test_basicmath_root_count_and_angles(self):
        from repro.programs.mibench.basicmath import CUBIC_SETS

        output = registry.get_experiment_runner("basicmath").golden.output
        total_roots = output[0][1]
        # Every cubic has at least one real root and at most three.
        assert CUBIC_SETS <= total_roots <= 3 * CUBIC_SETS
        angle_sum = as_double(output[3][1])
        expected = sum(d * 3.141592653589793 / 180.0 for d in range(0, 360, 30))
        assert angle_sum == pytest.approx(expected, rel=1e-12)


class TestSadOracle:
    def test_best_sad_matches_host_search(self):
        width, height, block, search = (
            sad_module.WIDTH,
            sad_module.HEIGHT,
            sad_module.BLOCK,
            sad_module.SEARCH_RANGE,
        )
        current, reference = block_image_pair(width, height, seed=4242)

        def block_sad(block_row, block_col, dy, dx):
            total = 0
            for r in range(block):
                for c in range(block):
                    cr, cc = block_row + r, block_col + c
                    rr = min(max(cr + dy, 0), height - 1)
                    rc = min(max(cc + dx, 0), width - 1)
                    total += abs(current[cr * width + cc] - reference[rr * width + rc])
            return total

        best_sum = 0
        for brow in range(height // block):
            for bcol in range(width // block):
                best = min(
                    block_sad(brow * block, bcol * block, dy, dx)
                    for dy in range(-search, search + 1)
                    for dx in range(-search, search + 1)
                )
                best_sum += best
        assert golden_ints("sad")[0] == best_sum


class TestStringsearchOracle:
    def test_positions_match_python_find(self):
        from repro.programs.mibench.stringsearch import PATTERNS, PHRASE_LENGTH, _build_inputs

        phrases, _patterns, _lengths, _stride = _build_inputs()
        found = 0
        position_sum = 0
        for phrase_index in range(len(PATTERNS)):
            phrase = bytes(
                phrases[phrase_index * PHRASE_LENGTH : (phrase_index + 1) * PHRASE_LENGTH]
            ).decode("latin-1").lower()
            for pattern in PATTERNS:
                position = phrase.find(pattern.lower())
                if position >= 0:
                    found += 1
                    position_sum += position + phrase_index * 100
        output = golden_ints("stringsearch")
        assert output[0] == found
        assert output[1] == position_sum
