"""Differential suite: columnar pipeline vs the frozen object-based reference.

PR 5 rewrote the trace→def-use→inference→plan pipeline around flat columnar
arrays (:mod:`repro.vm.trace`, :mod:`repro.errorspace.defuse`,
:mod:`repro.errorspace.inference`) and re-ordered plan construction into
enumerate→infer→assemble passes.  The pre-rewrite pipeline is preserved
verbatim in :mod:`repro.errorspace.reference`; this suite proves the two
produce *bit-identical* artifacts:

* columnar golden traces expand to the same records, candidate views and
  register-access stream (all 15 registry programs);
* def-use indices agree on every def event, read attribution, deferred
  read, operand def, store span, dead store and class key (all 15);
* outcome inference agrees error-for-error (exhaustively on a small
  workload, sampled on every registry program);
* assembled pruned plans are identical — classes, representatives, members,
  inferred outcomes and counts (small workload exhaustively + the smallest
  registry program; set ``REPRO_DIFF_FULL=1`` to sweep all 15);
* exhaustive campaign counts derived from both plans match the brute-force
  ground truth (small workload).
"""

import os
import random

import pytest

from repro.campaign.engine import run_error_batch
from repro.errorspace import (
    build_defuse_index,
    build_pruned_plan,
    enumerate_error_space,
)
from repro.errorspace.inference import OutcomeInference
from repro.errorspace.reference import (
    ReferenceOutcomeInference,
    reference_build_defuse_index,
    reference_build_pruned_plan,
)
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.injection.outcome import OutcomeCounts
from repro.programs.registry import all_program_names, get_experiment_runner

WORKLOAD = '''
def scale(value: "i64", factor: "i64") -> "i64":
    return value * factor + 3

def main() -> "i64":
    total = 0
    for i in range(4):
        total += scale(table[i % 3], i + 1)
        buffer[i % 3] = total % 97
    output(total)
    output(buffer[1])
    return total
'''

GLOBALS = {
    "table": ("i64", [5, 11, 23]),
    "buffer": ("i64", [0, 0, 0]),
}

FULL_SWEEP = os.environ.get("REPRO_DIFF_FULL", "") == "1"

#: Programs whose *fully inferred* plans are compared in tier-1 (the rest is
#: covered structurally; the full sweep is opt-in via REPRO_DIFF_FULL=1).
PLAN_PROGRAMS = ["bfs"]


@pytest.fixture(scope="module")
def small_runner():
    program = compile_program("columnar_diff_small", [WORKLOAD], GLOBALS)
    return ExperimentRunner(program)


def build_both_indices(runner):
    columnar = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    reference = reference_build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    return columnar, reference


def assert_indices_identical(columnar, reference, space):
    assert len(columnar.defs) == len(reference.defs)
    for new, old in zip(columnar.defs, reference.defs):
        assert (new.def_id, new.tick, new.site, new.value) == (
            old.def_id, old.tick, old.site, old.value,
        )
        assert new.register.name == old.register.name
        assert new.register.type == old.register.type
        assert new.use_ticks == old.use_ticks
    assert columnar.read_def == reference.read_def
    assert columnar.deferred_reads == reference.deferred_reads
    assert columnar.operand_defs == reference.operand_defs
    assert columnar.call_params == reference.call_params
    assert columnar.ret_target == reference.ret_target
    assert columnar.store_span == reference.store_span
    assert columnar.segments == reference.segments
    assert columnar.global_addresses == reference.global_addresses
    assert columnar.instructions == reference.instructions
    # dead-store precomputation == the reference's per-query scan
    for tick in columnar.store_span:
        assert columnar.store_is_dead(tick) == reference.store_is_dead(tick)
    # class keys partition the candidate space identically
    for error in space.iter_candidate_errors():
        assert columnar.class_key(error.dynamic_index, error.slot) == (
            reference.class_key(error.dynamic_index, error.slot)
        )


def assert_plans_identical(columnar_plan, reference_plan):
    assert columnar_plan.matches(reference_plan)


# -------------------------------------------------------------- columnar traces
@pytest.mark.parametrize("name", all_program_names())
def test_columnar_trace_views_are_consistent(name):
    """Column-derived views equal the per-record walks they replaced."""
    golden = get_experiment_runner(name).golden
    records = golden.records
    assert len(golden) == len(records) == len(golden.meta_ids)
    # per-tick index arithmetic matches materialised records
    for tick in (0, 1, len(records) // 2, len(records) - 1):
        meta = golden.meta_at(tick)
        assert meta.record_at(tick) == records[tick]
        assert golden[tick] == records[tick]
    # the access expansion equals a straight per-record recomputation
    expected = []
    for record in records:
        for slot, bits in enumerate(record.source_register_bits):
            if bits:
                expected.append((record.dynamic_index, "read", slot, bits, record.opcode))
        if record.destination_bits:
            expected.append(
                (record.dynamic_index, "write", None, record.destination_bits, record.opcode)
            )
    assert [tuple(access) for access in golden.iter_register_accesses()] == expected
    columns = golden.access_columns()
    assert len(columns.tick) == len(expected)
    # candidate views
    assert golden.records_with_sources() == [
        record for record in records if record.source_register_bits
    ]
    assert golden.records_with_destination() == [
        record for record in records if record.destination_bits is not None
    ]


# ------------------------------------------------------------- def-use indices
@pytest.mark.parametrize("name", all_program_names())
def test_defuse_index_identical_all_programs(name):
    runner = get_experiment_runner(name)
    columnar, reference = build_both_indices(runner)
    space = enumerate_error_space(runner.golden, "inject-on-read")
    assert_indices_identical(columnar, reference, space)


# ------------------------------------------------------------------- inference
def test_inference_identical_exhaustively_small(small_runner):
    columnar, reference = build_both_indices(small_runner)
    space = enumerate_error_space(small_runner.golden, "inject-on-read")
    new_engine = OutcomeInference(columnar)
    old_engine = ReferenceOutcomeInference(reference)
    disagreements = [
        error.key
        for error in space.iter_errors()
        if new_engine.infer(error) is not old_engine.infer(error)
    ]
    assert disagreements == []


@pytest.mark.parametrize("name", all_program_names())
def test_inference_identical_sampled_all_programs(name):
    runner = get_experiment_runner(name)
    columnar, reference = build_both_indices(runner)
    space = enumerate_error_space(runner.golden, "inject-on-read")
    new_engine = OutcomeInference(columnar)
    old_engine = ReferenceOutcomeInference(reference)
    rng = random.Random(name)
    errors = [error for error in space.iter_errors() if rng.random() < 0.002][:400]
    assert errors, "sample unexpectedly empty"
    for error in errors:
        assert new_engine.infer(error) is old_engine.infer(error), error.key


# ----------------------------------------------------------------------- plans
def test_plans_identical_small_both_techniques(small_runner):
    columnar, reference = build_both_indices(small_runner)
    for technique in ("inject-on-read", "inject-on-write"):
        space = enumerate_error_space(small_runner.golden, technique)
        for infer in (True, False):
            assert_plans_identical(
                build_pruned_plan(space, columnar, infer=infer),
                reference_build_pruned_plan(space, reference, infer=infer),
            )


@pytest.mark.parametrize(
    "name", all_program_names() if FULL_SWEEP else PLAN_PROGRAMS
)
def test_plans_identical_registry_programs(name):
    """Fully inferred plan differential (tier-1 runs the smallest program;
    REPRO_DIFF_FULL=1 sweeps all 15)."""
    runner = get_experiment_runner(name)
    columnar, reference = build_both_indices(runner)
    space = enumerate_error_space(runner.golden, "inject-on-read")
    assert_plans_identical(
        build_pruned_plan(space, columnar),
        reference_build_pruned_plan(space, reference),
    )


# ------------------------------------------------------------- campaign counts
def test_exhaustive_campaign_counts_identical_small(small_runner):
    """Both plans expand executed representatives to the brute-force counts."""
    columnar, reference = build_both_indices(small_runner)
    space = enumerate_error_space(small_runner.golden, "inject-on-read")
    errors = [(e.dynamic_index, e.slot, e.bit) for e in space.iter_errors()]
    truth = OutcomeCounts()
    truth.update(run_error_batch(small_runner, "inject-on-read", errors))

    for plan in (
        build_pruned_plan(space, columnar),
        reference_build_pruned_plan(space, reference),
    ):
        planned = plan.exact_experiments()
        outcomes = run_error_batch(
            small_runner,
            "inject-on-read",
            [(p.error.dynamic_index, p.error.slot, p.error.bit) for p in planned],
        )
        weighted = plan.expand_counts(
            {planned[i].class_id: outcomes[i] for i in range(len(planned))}, planned
        )
        assert weighted.as_dict() == truth.as_dict()
