"""Tests for the execution-engine subsystem and deterministic seeding."""

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    MultiprocessEngine,
    ResultStore,
    SerialEngine,
)
from repro.campaign.engine import run_experiment_batch
from repro.errors import AnalysisError, ConfigurationError
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.injection.faultmodel import win_size_by_index
from repro.injection.techniques import technique_by_name


TINY_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(12):
        scratch[i % 4] = i * 7
        total += scratch[i % 4]
    output(total)
    return total
'''


@pytest.fixture(scope="module")
def tiny_runner():
    program = compile_program("tiny", [TINY_PROGRAM], {"scratch": ("i32", [0, 0, 0, 0])})
    return ExperimentRunner(program)


@pytest.fixture(scope="module")
def tiny_provider(tiny_runner):
    def provider(name):
        assert name == "tiny"
        return tiny_runner

    return provider


def tiny_config(**overrides):
    defaults = dict(
        program="tiny",
        technique="inject-on-write",
        max_mbf=3,
        win_size=win_size_by_index("w4"),
        experiments=32,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def result_signature(result):
    return (
        result.resolved_win_size,
        result.outcome_counts.as_dict(),
        result.activated_histogram,
        [record.to_tuple() for record in result.records],
    )


class TestSeeding:
    def test_experiment_seed_is_deterministic_and_index_sensitive(self):
        config = tiny_config()
        seeds = [config.experiment_seed(i) for i in range(100)]
        assert seeds == [config.experiment_seed(i) for i in range(100)]
        assert len(set(seeds)) == 100

    def test_experiment_seed_depends_on_campaign_identity(self):
        assert tiny_config().experiment_seed(0) != tiny_config(max_mbf=2).experiment_seed(0)
        assert (
            tiny_config().experiment_seed(0)
            != tiny_config(master_seed=99).experiment_seed(0)
        )

    def test_experiment_seed_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            tiny_config().experiment_seed(-1)

    def test_resolve_win_size_is_stable_and_in_range(self):
        config = tiny_config(win_size=win_size_by_index("w6"))
        resolved = config.resolve_win_size()
        assert resolved == config.resolve_win_size()
        assert 11 <= resolved <= 100
        assert tiny_config(win_size=win_size_by_index("w7")).resolve_win_size() == 100

    def test_experiment_replayable_in_isolation_by_index(self, tiny_runner):
        """Any experiment of a campaign can be re-run alone from its index."""
        config = tiny_config(experiments=12)
        campaign = SerialEngine().run(config, provider=lambda name: tiny_runner)
        technique = technique_by_name(config.technique)
        for index in (0, 5, 11):
            replay = tiny_runner.run_seeded(
                technique,
                max_mbf=config.max_mbf,
                win_size=campaign.resolved_win_size,
                seed=config.experiment_seed(index),
            )
            record = campaign.records[index]
            assert replay.spec.first_dynamic_index == record.first_dynamic_index
            assert replay.spec.first_slot == record.first_slot
            assert replay.outcome == record.outcome
            assert replay.activated_errors == record.activated_errors


class TestEngineEquivalence:
    def test_serial_and_multiprocess_results_identical(self, tiny_provider):
        """Same seed through both engines: identical counts, histograms, records."""
        config = tiny_config(experiments=48)
        serial = SerialEngine().run(config, provider=tiny_provider)
        parallel = MultiprocessEngine(jobs=4, chunk_size=5).run(
            config, provider=tiny_provider
        )
        assert result_signature(serial) == result_signature(parallel)

    def test_chunking_does_not_change_results(self, tiny_provider):
        config = tiny_config(experiments=20)
        coarse = MultiprocessEngine(jobs=2, chunk_size=20).run(config, provider=tiny_provider)
        fine = MultiprocessEngine(jobs=2, chunk_size=3).run(config, provider=tiny_provider)
        assert result_signature(coarse) == result_signature(fine)

    def test_batch_union_matches_full_run(self, tiny_provider):
        """Partial batches merged in order equal the one-shot serial result."""
        config = tiny_config(experiments=21)
        runner = tiny_provider("tiny")
        win = config.resolve_win_size()
        merged = run_experiment_batch(runner, config, win, 0, 8)
        merged.merge(run_experiment_batch(runner, config, win, 8, 8))
        merged.merge(run_experiment_batch(runner, config, win, 16, 5))
        full = SerialEngine().run(config, provider=tiny_provider)
        assert result_signature(merged) == result_signature(full)

    def test_batch_executes_tick_sorted_but_aggregates_in_index_order(self, tiny_runner):
        """The batch runs experiments by injection tick, results stay indexed."""
        config = tiny_config(experiments=24)
        win = config.resolve_win_size()
        executed = []
        original_run_spec = tiny_runner.run_spec

        class Recording:
            def __getattr__(self, attribute):
                return getattr(tiny_runner, attribute)

            def run_spec(self, spec, **kwargs):
                executed.append(spec.first_dynamic_index)
                return original_run_spec(spec, **kwargs)

        partial = run_experiment_batch(Recording(), config, win, 0, 24)
        assert executed == sorted(executed), "batch must execute in tick order"
        technique = technique_by_name(config.technique)
        submitted = [
            tiny_runner.seeded_spec(
                technique,
                max_mbf=config.max_mbf,
                win_size=win,
                seed=config.experiment_seed(index),
            ).first_dynamic_index
            for index in range(24)
        ]
        assert sorted(submitted) == executed
        assert [record.first_dynamic_index for record in partial.records] == submitted

    def test_merge_rejects_mismatched_campaigns(self, tiny_provider):
        a = SerialEngine().run(tiny_config(experiments=4), provider=tiny_provider)
        b = SerialEngine().run(
            tiny_config(experiments=4, max_mbf=2), provider=tiny_provider
        )
        with pytest.raises(AnalysisError):
            a.merge(b)

    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            MultiprocessEngine(jobs=0)
        with pytest.raises(ConfigurationError):
            MultiprocessEngine(jobs=2, chunk_size=0)
        with pytest.raises(ConfigurationError):
            SerialEngine(progress_interval=0)


class TestArtifactCacheWarmup:
    """Worker warm-up must route through the persistent artifact cache."""

    @pytest.fixture(autouse=True)
    def reset_cache_config(self):
        from repro import artifacts

        yield
        artifacts.configure(None)

    def _clear_registry_caches(self):
        from repro.programs import registry

        registry.build_program.cache_clear()
        registry.get_decoded_program.cache_clear()
        registry.get_defuse_index.cache_clear()
        registry.get_experiment_runner.cache_clear()

    def test_warm_cache_yields_zero_rederivations(self, tmp_path, monkeypatch):
        """Cold: exactly one golden derivation per host. Warm: exactly zero —
        in fresh in-process builds and in spawned workers alike."""
        from repro.campaign.engine import MultiprocessEngine, RegistryProvider
        from repro.errorspace import enumerate_error_space
        from repro.programs.registry import get_experiment_runner

        log = tmp_path / "derivations.log"
        cache_dir = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_DERIVATION_LOG", str(log))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        provider = RegistryProvider(cache_dir=str(cache_dir))

        def derivations():
            return len(log.read_text().splitlines()) if log.exists() else 0

        # Cold host: building the workload derives the golden trace once and
        # persists it.
        self._clear_registry_caches()
        runner = get_experiment_runner("crc32")
        assert derivations() == 1
        errors = [
            (error.dynamic_index, error.slot, error.bit)
            for error, _ in zip(
                enumerate_error_space(runner.golden, "inject-on-read").iter_errors(),
                range(8),
            )
        ]

        # Warm host, fresh process state: loading replaces deriving.
        self._clear_registry_caches()
        warm_runner = get_experiment_runner("crc32")
        assert derivations() == 1, "warm in-process build re-derived the golden trace"
        assert warm_runner.golden.records == runner.golden.records

        # Spawned workers share nothing but the disk: with a warm cache they
        # must come up without a single re-derivation.
        with MultiprocessEngine(2, chunk_size=4, start_method="spawn") as engine:
            outcomes = engine.run_errors(
                "crc32", "inject-on-read", errors, provider=provider
            )
        assert len(outcomes) == len(errors)
        assert derivations() == 1, "spawned workers re-derived despite a warm cache"

    def test_parallel_plan_inference_matches_serial(self, tmp_path):
        """plan_infer_map fans inference out; the plan stays bit-identical."""
        from repro import artifacts
        from repro.campaign.engine import MultiprocessEngine, RegistryProvider
        from repro.errorspace import build_pruned_plan, enumerate_error_space
        from repro.programs.registry import get_defuse_index, get_experiment_runner

        artifacts.configure(tmp_path / "artifacts")
        runner = get_experiment_runner("bfs")
        index = get_defuse_index("bfs")
        space = enumerate_error_space(runner.golden, "inject-on-read")
        serial_plan = build_pruned_plan(space, index)
        provider = RegistryProvider(cache_dir=str(tmp_path / "artifacts"))
        with MultiprocessEngine(2) as engine:
            infer_map = engine.plan_infer_map("bfs", provider=provider)
            assert infer_map is not None
            parallel_plan = build_pruned_plan(space, index, infer_map=infer_map)
        assert parallel_plan.matches(serial_plan)


class TestProgress:
    @pytest.mark.parametrize(
        "engine_factory",
        [
            lambda: SerialEngine(progress_interval=7),
            lambda: MultiprocessEngine(jobs=2, chunk_size=7),
        ],
        ids=["serial", "multiprocess"],
    )
    def test_progress_reaches_total_monotonically(self, tiny_provider, engine_factory):
        config = tiny_config(experiments=30)
        events = []
        engine_factory().run(config, provider=tiny_provider, on_progress=events.append)
        assert events, "engine emitted no progress"
        done_values = [event.done for event in events]
        assert done_values == sorted(done_values)
        assert done_values[-1] == 30
        final = events[-1]
        assert final.total == 30
        assert final.campaign_id == config.campaign_id
        assert final.fraction == pytest.approx(1.0)
        assert final.experiments_per_second >= 0.0


class TestRunnerIntegration:
    def test_runner_with_multiprocess_engine(self, tiny_provider):
        serial = CampaignRunner(tiny_provider).run_campaign(tiny_config())
        parallel = CampaignRunner(
            tiny_provider, engine=MultiprocessEngine(jobs=3, chunk_size=4)
        ).run_campaign(tiny_config())
        assert result_signature(serial) == result_signature(parallel)

    def test_keep_records_false_propagates_to_workers(self, tiny_provider):
        runner = CampaignRunner(
            tiny_provider,
            engine=MultiprocessEngine(jobs=2, chunk_size=4),
            keep_records=False,
        )
        result = runner.run_campaign(tiny_config(experiments=12))
        assert result.experiments == 12
        assert result.records == []

    def test_mid_sweep_checkpointing_and_streaming(self, tiny_provider, tmp_path):
        checkpoint = tmp_path / "sweep" / "checkpoint.json"
        configs = [tiny_config(experiments=6), tiny_config(experiments=6, max_mbf=2)]
        checkpoint_sizes = []

        def on_result(result):
            # The checkpoint covering this campaign is on disk by the time the
            # result streams out — an interrupted sweep resumes from here.
            checkpoint_sizes.append(len(ResultStore.load(checkpoint)))

        runner = CampaignRunner(tiny_provider)
        store = runner.run_campaigns(
            configs, checkpoint_path=checkpoint, on_result=on_result
        )
        assert checkpoint_sizes == [1, 2]
        reloaded = ResultStore.load(checkpoint)
        assert set(reloaded.campaign_ids()) == set(store.campaign_ids())

    def test_caching_provider_is_picklable_with_empty_cache(self):
        """Spawn-based pools pickle the provider; the heavy cache must drop."""
        import pickle

        from repro.campaign.engine import CachingProvider, registry_provider

        provider = CachingProvider(registry_provider)
        provider._cache["sentinel"] = object()  # unpicklable cache entry
        clone = pickle.loads(pickle.dumps(provider))
        assert clone._cache == {}
        assert clone._provider is registry_provider

    def test_checkpoint_every_batches_saves(self, tiny_provider, tmp_path):
        checkpoint = tmp_path / "checkpoint.json"
        configs = [
            tiny_config(experiments=5),
            tiny_config(experiments=5, max_mbf=2),
            tiny_config(experiments=5, max_mbf=4),
        ]
        seen = []

        def on_result(result):
            seen.append(checkpoint.exists())

        CampaignRunner(tiny_provider).run_campaigns(
            configs, checkpoint_path=checkpoint, checkpoint_every=2, on_result=on_result
        )
        # No checkpoint after the first campaign, one after the second, and a
        # final flush covers the trailing odd campaign.
        assert seen == [False, True, True]
        assert len(ResultStore.load(checkpoint)) == 3
