"""Differential suite: injection-windowed execution is bit-identical.

Windowed execution (bare sprint to the fault window, hooked only while the
injector can still flip, bare tail after the last flip) claims to be a pure
performance optimisation.  Every observable of an experiment — outcome,
activated-error count, the individual :class:`InjectionRecord`\\ s, the
dynamic instruction count, the hardware-fault category — must match an
always-hooked run exactly, on both resumable backends.  These tests enforce
the claim per experiment, at the campaign :class:`ResultStore` byte level,
and on the edge cases where the window machinery earns its keep: injection
at the very first and very last golden tick, hangs that strike after the
final flip, and windows straddling a VM checkpoint.

Set ``REPRO_DIFF_FULL=1`` for the exhaustive sweep (every program, both
backends, a denser spec grid); the default run keeps a representative
subset so tier-1 stays fast.
"""

import os
import random

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    RegistryProvider,
    ResultStore,
)
from repro.injection import ExperimentRunner, TECHNIQUES
from repro.injection.faultmodel import FaultSpec, win_size_by_index
from repro.injection.outcome import Outcome
from repro.programs import registry

FULL_SWEEP = os.environ.get("REPRO_DIFF_FULL", "") not in ("", "0")
ALL_PROGRAMS = registry.all_program_names()
#: The quick subset covers both suites, a hang-prone workload and the
#: benchmark the throughput gate measures (crc32).
QUICK_PROGRAMS = ["crc32", "qsort", "dijkstra", "sha", "bfs"]
SWEEP_PROGRAMS = ALL_PROGRAMS if FULL_SWEEP else QUICK_PROGRAMS
BACKENDS = ("decoded", "compiled")


def _result_tuple(result):
    return (
        result.spec,
        result.outcome,
        result.activated_errors,
        tuple(result.injections),
        result.dynamic_instructions,
        result.fault_category,
    )


def _window_specs(runner: ExperimentRunner):
    """Specs that exercise every windowed-execution regime.

    Sampled specs spread first-injection times across the run for both
    techniques; the pinned specs target tick 0, the final tick, a window
    straddling a VM checkpoint, and a follow-up schedule reaching past the
    end of the program (the injector never exhausts, so the tail segment
    never detaches early).
    """
    golden = runner.golden
    total = golden.dynamic_instruction_count
    per_technique = 6 if FULL_SWEEP else 3
    specs = []
    for technique in TECHNIQUES:
        rng = random.Random(f"windowed/{runner.program.module.name}/{technique.name}")
        for position in range(per_technique):
            specs.append(
                runner.seeded_spec(
                    technique,
                    max_mbf=(1, 4, 8)[position % 3],
                    win_size=(0, 3, 100)[position % 3],
                    seed=rng.getrandbits(48),
                )
            )
    first_tick = golden.records_with_destination()[0].dynamic_index
    last_tick = golden.records_with_destination()[-1].dynamic_index
    # Injection at the first eligible tick: the bare pre-window sprint is
    # empty (or near-empty) and the hooked window opens immediately.
    specs.append(
        FaultSpec(
            technique="inject-on-write",
            first_dynamic_index=first_tick,
            first_slot=None,
            max_mbf=2,
            win_size=1,
            seed=11,
        )
    )
    # Injection at the final eligible tick: the deepest bare sprint, no tail.
    specs.append(
        FaultSpec(
            technique="inject-on-write",
            first_dynamic_index=last_tick,
            first_slot=None,
            max_mbf=2,
            win_size=1,
            seed=13,
        )
    )
    # Follow-ups scheduled past the end of the run: the injector is never
    # exhausted, so windowed execution keeps sprinting between scheduled
    # times until the program simply completes.
    specs.append(
        FaultSpec(
            technique="inject-on-write",
            first_dynamic_index=max(0, total - 10),
            first_slot=None,
            max_mbf=30,
            win_size=total,
            seed=17,
        )
    )
    # A window straddling a VM checkpoint: the hooked segment runs across
    # the tick a fast-forward restore would target.
    for tick in golden.checkpoint_ticks[:1]:
        specs.append(
            FaultSpec(
                technique="inject-on-write",
                first_dynamic_index=max(0, tick - 3),
                first_slot=None,
                max_mbf=4,
                win_size=2,
                seed=19,
            )
        )
    return specs


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", SWEEP_PROGRAMS)
def test_windowed_bit_identical(name, backend):
    runner = registry.get_experiment_runner(name, backend=backend)
    assert runner.windowed, "registry runners run windowed by default"
    specs = _window_specs(runner)
    windowed = [_result_tuple(runner.run_spec(s, windowed=True)) for s in specs]
    hooked = [_result_tuple(runner.run_spec(s, windowed=False)) for s in specs]
    assert windowed == hooked


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", SWEEP_PROGRAMS)
def test_windowed_bit_identical_without_fast_forward(name, backend):
    """Windowing composes with from-scratch execution (no checkpoint restore)."""
    runner = registry.get_experiment_runner(name, backend=backend)
    specs = _window_specs(runner)[:4]
    windowed = [
        _result_tuple(runner.run_spec(s, windowed=True, fast_forward=False))
        for s in specs
    ]
    hooked = [
        _result_tuple(runner.run_spec(s, windowed=False, fast_forward=False))
        for s in specs
    ]
    assert windowed == hooked


#: Found by sweep: faults that leave the program looping forever, with the
#: flips landing *before* the hang — the bare tail segment must still hit
#: the watchdog at the exact same tick an always-hooked run does.
_HANG_SPECS = {
    "crc32": FaultSpec(
        technique="inject-on-write",
        first_dynamic_index=3071,
        first_slot=None,
        max_mbf=2,
        win_size=4,
        seed=83,
    ),
    "dijkstra": FaultSpec(
        technique="inject-on-write",
        first_dynamic_index=2146,
        first_slot=None,
        max_mbf=2,
        win_size=4,
        seed=58,
    ),
    "bfs": FaultSpec(
        technique="inject-on-write",
        first_dynamic_index=703,
        first_slot=None,
        max_mbf=2,
        win_size=4,
        seed=19,
    ),
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(_HANG_SPECS))
def test_windowed_hang_after_injection(name, backend):
    """A hang in the bare tail classifies identically to an always-hooked run."""
    runner = registry.get_experiment_runner(name, backend=backend)
    spec = _HANG_SPECS[name]
    hooked = runner.run_spec(spec, windowed=False)
    assert hooked.outcome is Outcome.HANG, "sweep-selected spec must still hang"
    assert hooked.activated_errors == spec.max_mbf, "flips land before the hang"
    windowed = runner.run_spec(spec, windowed=True)
    assert _result_tuple(windowed) == _result_tuple(hooked)


def test_windowed_exhausted_signal_detaches():
    """The injector reports exhaustion exactly when the last flip lands."""
    runner = registry.get_experiment_runner("crc32")
    spec = runner.seeded_spec(TECHNIQUES[0], max_mbf=3, win_size=2, seed=5)
    result = runner.run_spec(spec, windowed=True)
    assert result.activated_errors <= spec.max_mbf
    if result.activated_errors == spec.max_mbf:
        assert result.injections[-1].dynamic_index < result.dynamic_instructions


# --------------------------------------------------------------------- store bytes
def _store_bytes(tmp_path, filename, provider):
    configs = [
        CampaignConfig(
            program="crc32",
            technique="inject-on-read",
            max_mbf=3,
            win_size=win_size_by_index("w4"),
            experiments=16,
        ),
        CampaignConfig(
            program="dijkstra",
            technique="inject-on-write",
            max_mbf=5,
            win_size=win_size_by_index("w2"),
            experiments=16,
        ),
    ]
    store = CampaignRunner(provider).run_campaigns(configs, ResultStore())
    path = tmp_path / filename
    store.save(path)
    return path.read_bytes()


@pytest.mark.parametrize("backend", BACKENDS)
def test_store_bytes_identical_windowed_vs_hooked(tmp_path, backend):
    windowed = _store_bytes(
        tmp_path,
        f"windowed-{backend}.json",
        RegistryProvider(backend=backend, windowed=True),
    )
    hooked = _store_bytes(
        tmp_path,
        f"hooked-{backend}.json",
        RegistryProvider(backend=backend, windowed=False),
    )
    assert windowed == hooked
