"""Unit tests for VM checkpoints: memory state, capture, resume, caching."""

import pytest

from repro.frontend import compile_program
from repro.vm import (
    GoldenTrace,
    Interpreter,
    Memory,
    TraceCollector,
    capture_checkpoints,
    decode_module,
    golden_with_checkpoints,
)
from repro.vm.memory import DEFAULT_LAYOUT
from repro.vm.snapshot import CheckpointStore
from repro.ir.types import I32, I64

RECURSIVE_PROGRAM = '''
def helper(n: "i64") -> "i64":
    if n <= 1:
        return 1
    return n * helper(n - 1)

def main() -> "i64":
    total = 0
    for i in range(1, 7):
        scratch[i % 4] = helper(i)
        total += scratch[i % 4]
    output(total)
    return total
'''


@pytest.fixture(scope="module")
def recursive_program():
    return compile_program(
        "recursive", [RECURSIVE_PROGRAM], {"scratch": ("i64", [0, 0, 0, 0])}
    )


# ----------------------------------------------------------------- memory state
class TestMemoryState:
    def test_find_segment_bisect_matches_bounds(self):
        memory = Memory()
        for name, (base, size) in DEFAULT_LAYOUT.items():
            assert memory.find_segment(base).name == name
            assert memory.find_segment(base + size - 1).name == name
            assert memory.find_segment(base + size) is None or (
                memory.find_segment(base + size).name != name
            )
            assert memory.find_segment(base - 1, 2) is None or (
                memory.find_segment(base - 1, 2).name != name
            )
        assert memory.find_segment(0x100) is None
        # A read spanning past the end of a segment must not resolve.
        stack_base, stack_size = DEFAULT_LAYOUT["stack"]
        assert memory.find_segment(stack_base + stack_size - 4, 8) is None

    def test_segments_ordered_by_base(self):
        memory = Memory()
        bases = [segment.base for segment in memory._ordered]
        assert bases == sorted(bases)
        segment = memory.add_segment("mmio", 0x9000_0000, 0x1000)
        assert memory._ordered[-1] is segment
        assert memory.find_segment(0x9000_0004, 4) is segment

    def test_capture_restore_round_trip(self):
        memory = Memory()
        address = memory.allocate("heap", 64)
        memory.write_scalar(address, 0x1234_5678, I32)
        memory.write_scalar(address + 8, -9, I64)
        state = memory.capture_state()

        # Scribble over the captured region and beyond it.
        memory.write_scalar(address, 0xDEAD_BEEF, I32)
        far = memory.allocate("heap", 1024)
        memory.write_scalar(far + 512, 77, I64)
        stack = memory.allocate("stack", 128)
        memory.write_scalar(stack, 42, I64)

        memory.restore_state(state)
        assert memory.read_scalar(address, I32) == 0x1234_5678
        assert memory.read_scalar(address + 8, I64) == -9
        assert memory.read_scalar(far + 512, I64) == 0
        assert memory.segment("heap").cursor == state.segments[1][3]
        # A fresh allocation after restore lands where the original did.
        assert memory.allocate("heap", 1024) == far

    def test_restore_rejects_layout_mismatch(self):
        state = Memory().capture_state()
        other = Memory()
        other.add_segment("extra", 0x9000_0000, 0x1000)
        with pytest.raises(ValueError):
            other.restore_state(state)

    def test_capture_is_compact(self):
        memory = Memory()
        address = memory.allocate("heap", 16)
        memory.write_scalar(address, 1, I64)
        state = memory.capture_state()
        total = sum(len(payload) for _, _, payload, _ in state.segments)
        # Kilobytes of dirty prefix, not the mapped megabytes.
        assert total < 4096


# ----------------------------------------------------------------- trace metadata
class TestGoldenTraceCheckpointTicks:
    def test_latest_checkpoint_at(self):
        trace = GoldenTrace([], (), None, checkpoint_ticks=(64, 320, 576))
        assert trace.latest_checkpoint_at(63) is None
        assert trace.latest_checkpoint_at(64) == 64
        assert trace.latest_checkpoint_at(575) == 320
        assert trace.latest_checkpoint_at(576) == 576
        assert trace.latest_checkpoint_at(10**9) == 576

    def test_default_is_empty(self):
        trace = GoldenTrace([], (), None)
        assert trace.checkpoint_ticks == ()
        assert trace.latest_checkpoint_at(100) is None

    def test_collector_build_passes_ticks_through(self):
        trace = TraceCollector().build((), None, checkpoint_ticks=(5, 9))
        assert trace.checkpoint_ticks == (5, 9)


# ----------------------------------------------------------------- capture / resume
class TestCaptureAndResume:
    def test_checkpointed_run_matches_plain_run(self, recursive_program):
        decoded = decode_module(recursive_program.module)
        plain_collector, checked_collector = TraceCollector(), TraceCollector()
        plain = Interpreter(
            decoded, entry=recursive_program.entry, trace_collector=plain_collector
        ).run()
        store, checked = capture_checkpoints(
            decoded,
            entry=recursive_program.entry,
            checkpoint_interval=16,
            trace_collector=checked_collector,
        )
        assert checked.return_value == plain.return_value
        assert checked.output == plain.output
        assert checked.dynamic_instructions == plain.dynamic_instructions
        assert checked_collector.records == plain_collector.records
        assert len(store) > 0
        assert store.ticks == sorted(store.ticks)

    def test_resume_from_every_checkpoint(self, recursive_program):
        decoded = decode_module(recursive_program.module)
        full = Interpreter(decoded, entry=recursive_program.entry).run()
        store, _ = capture_checkpoints(
            decoded, entry=recursive_program.entry, checkpoint_interval=8
        )
        # The recursive helper guarantees snapshots mid-call-stack.
        assert max(len(snapshot.frames) for snapshot in store.snapshots) > 1
        vm = Interpreter(decoded, entry=recursive_program.entry)
        for snapshot in store.snapshots:
            result = vm.resume(snapshot)
            assert result.completed
            assert result.return_value == full.return_value
            assert result.output == full.output
            assert result.dynamic_instructions == full.dynamic_instructions

    def test_resumed_hooks_match_full_run_suffix(self, recursive_program):
        decoded = decode_module(recursive_program.module)

        def run_hooked(run):
            events = []

            def read_hook(index, instruction, slot, register, value):
                events.append(("r", index, instruction.opcode, slot, register.name, value))
                return value

            def write_hook(index, instruction, register, value):
                events.append(("w", index, instruction.opcode, register.name, value))
                return value

            run(read_hook, write_hook)
            return events

        def full(read_hook, write_hook):
            Interpreter(
                decoded,
                entry=recursive_program.entry,
                read_hook=read_hook,
                write_hook=write_hook,
            ).run()

        store, _ = capture_checkpoints(
            decoded, entry=recursive_program.entry, checkpoint_interval=32
        )
        snapshot = store.snapshots[len(store.snapshots) // 2]

        def resumed(read_hook, write_hook):
            vm = Interpreter(decoded, entry=recursive_program.entry)
            vm.read_hook = read_hook
            vm.write_hook = write_hook
            vm.resume(snapshot)

        full_events = run_hooked(full)
        suffix = [event for event in full_events if event[1] >= snapshot.tick]
        assert run_hooked(resumed) == suffix

    def test_restore_rejects_foreign_program(self, recursive_program):
        from repro.errors import ExecutionSetupError

        decoded = decode_module(recursive_program.module)
        store, _ = capture_checkpoints(
            decoded, entry=recursive_program.entry, checkpoint_interval=16
        )
        other = compile_program("other", ['def main() -> "i64":\n    return 3\n'])
        vm = Interpreter(decode_module(other.module))
        with pytest.raises(ExecutionSetupError):
            vm.restore(store.snapshots[0])

    def test_adaptive_interval_respects_budget(self, recursive_program):
        decoded = decode_module(recursive_program.module)
        store, result = capture_checkpoints(
            decoded, entry=recursive_program.entry, max_checkpoints=4
        )
        assert len(store) <= 4
        assert store.interval >= result.dynamic_instructions // 8

    def test_explicit_interval_within_budget_is_kept(self, recursive_program):
        decoded = decode_module(recursive_program.module)
        store, result = capture_checkpoints(
            decoded, entry=recursive_program.entry, checkpoint_interval=30
        )
        assert store.interval == 30
        assert len(store) >= result.dynamic_instructions // 30 - 1

    def test_explicit_interval_still_respects_budget(self, recursive_program):
        """A pinned interval must not allow unbounded snapshot memory."""
        decoded = decode_module(recursive_program.module)
        store, result = capture_checkpoints(
            decoded,
            entry=recursive_program.entry,
            checkpoint_interval=1,
            max_checkpoints=8,
        )
        assert result.dynamic_instructions > 8  # budget genuinely exceeded
        assert len(store) <= 8
        assert store.interval > 1

    def test_store_latest_at(self, recursive_program):
        decoded = decode_module(recursive_program.module)
        store, _ = capture_checkpoints(
            decoded, entry=recursive_program.entry, checkpoint_interval=16
        )
        assert store.latest_at(store.ticks[0] - 1) is None
        assert store.latest_at(store.ticks[0]).tick == store.ticks[0]
        assert store.latest_at(store.ticks[-1] + 10**6).tick == store.ticks[-1]
        mid = store.ticks[1]
        assert store.latest_at(mid + 1).tick == mid


# ----------------------------------------------------------------- module cache
class TestCheckpointCache:
    def test_cache_hit_and_golden_metadata(self, recursive_program):
        module = recursive_program.module
        golden_a, store_a = golden_with_checkpoints(module)
        golden_b, store_b = golden_with_checkpoints(module)
        assert golden_a is golden_b
        assert store_a is store_b
        assert golden_a.checkpoint_ticks == tuple(store_a.ticks)
        assert isinstance(store_a, CheckpointStore)

    def test_cache_key_includes_limits(self, recursive_program):
        from repro.vm import ExecutionLimits

        module = recursive_program.module
        golden_with_checkpoints(module)  # caches the default-limits run
        with pytest.raises(RuntimeError):
            # A watchdog this tight must hang-detect, not return the cached
            # full-run trace captured under default limits.
            golden_with_checkpoints(
                module, limits=ExecutionLimits(max_dynamic_instructions=5)
            )

    def test_cache_invalidated_with_decode_cache(self):
        from repro.ir import Constant, Function, I64 as IR_I64, IRBuilder, Module

        module = Module("mutable")
        function = Function("main", IR_I64)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        counter = builder.add(Constant(IR_I64, 20), Constant(IR_I64, 22))
        builder.ret(counter)
        module.finalize()

        _, store_first = golden_with_checkpoints(module, checkpoint_interval=1)
        assert store_first.program is decode_module(module)

        # Structural mutation: the decode cache is invalidated, and the
        # checkpoint cache must follow it rather than serve stale snapshots.
        extra = Function("helper", IR_I64)
        module.add_function(extra)
        extra_builder = IRBuilder(extra, extra.add_block("entry"))
        extra_builder.ret(Constant(IR_I64, 5))
        module.finalize()

        _, store_second = golden_with_checkpoints(module, checkpoint_interval=1)
        assert store_second is not store_first
        assert store_second.program is decode_module(module)
        assert store_first.program is not store_second.program
