"""Tests for the fault model, injection techniques, injector and experiments."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.frontend import compile_program
from repro.injection import (
    FaultSpec,
    INJECT_ON_READ,
    INJECT_ON_WRITE,
    MAX_MBF_VALUES,
    Outcome,
    OutcomeCounts,
    SINGLE_BIT_MAX_MBF,
    WIN_SIZE_SPECS,
    ExperimentRunner,
    FaultInjector,
    profile_program,
    technique_by_name,
)
from repro.injection.faultmodel import (
    MultiBitCluster,
    WinSizeSpec,
    full_cluster_grid,
    multi_register_clusters,
    same_register_clusters,
    win_size_by_index,
)


SIMPLE_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(20):
        buf[i % 5] = i * 3
        total += buf[i % 5]
    output(total)
    output(buf[2])
    return total
'''


@pytest.fixture(scope="module")
def simple_runner():
    program = compile_program(
        "simple", [SIMPLE_PROGRAM], {"buf": ("i32", [0, 0, 0, 0, 0])}
    )
    return ExperimentRunner(program)


class TestTableOneGrid:
    def test_max_mbf_values_match_paper(self):
        assert MAX_MBF_VALUES == (2, 3, 4, 5, 6, 7, 8, 9, 10, 30)
        assert SINGLE_BIT_MAX_MBF == 1

    def test_win_size_specs_match_paper(self):
        labels = [spec.label for spec in WIN_SIZE_SPECS]
        assert labels == [
            "0",
            "1",
            "4",
            "RND(2-10)",
            "10",
            "RND(11-100)",
            "100",
            "RND(101-1000)",
            "1000",
        ]

    def test_random_spec_resolution_in_range(self):
        rng = random.Random(3)
        spec = win_size_by_index("w4")
        for _ in range(50):
            assert 2 <= spec.resolve(rng) <= 10

    def test_fixed_spec_resolution(self):
        assert win_size_by_index("w7").resolve(random.Random(0)) == 100

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            WinSizeSpec("bad")
        with pytest.raises(ConfigurationError):
            WinSizeSpec("bad", low=5, high=2)

    def test_full_grid_size(self):
        # 10 max-MBF values x 9 win-size specs = 90 clusters per technique;
        # plus the single-bit campaign per technique -> 91; x2 = 182 (paper).
        assert len(full_cluster_grid()) == 90
        campaigns_per_program = 2 * (1 + len(full_cluster_grid()))
        assert campaigns_per_program == 182

    def test_same_register_and_multi_register_split(self):
        same = same_register_clusters()
        multi = multi_register_clusters()
        assert len(same) == 10
        assert all(cluster.is_same_register for cluster in same)
        assert len(multi) == 80
        assert not any(cluster.is_same_register for cluster in multi)

    def test_cluster_labels(self):
        cluster = MultiBitCluster(3, win_size_by_index("w6"))
        assert cluster.label == "mbf=3,win=RND(11-100)"
        assert not cluster.is_single_bit


class TestTechniques:
    def test_candidate_counts_read_exceeds_write(self, simple_runner):
        golden = simple_runner.golden
        read_count = INJECT_ON_READ.candidate_instruction_count(golden)
        write_count = INJECT_ON_WRITE.candidate_instruction_count(golden)
        # Stores have sources but no destination, so read >= write strictly
        # for this store-heavy program (Table II's trend).
        assert read_count > write_count > 0

    def test_error_space_size_counts_bits(self, simple_runner):
        golden = simple_runner.golden
        assert INJECT_ON_READ.error_space_size(golden) >= INJECT_ON_READ.candidate_instruction_count(golden)

    def test_sampled_candidates_are_valid(self, simple_runner):
        rng = random.Random(11)
        golden = simple_runner.golden
        for technique in (INJECT_ON_READ, INJECT_ON_WRITE):
            for _ in range(50):
                candidate = technique.sample_candidate(golden, rng)
                assert 0 <= candidate.dynamic_index < len(golden)
                assert candidate.register_bits in (1, 8, 16, 32, 64)
                if technique is INJECT_ON_WRITE:
                    assert candidate.slot is None

    def test_technique_by_name(self):
        assert technique_by_name("inject-on-read") is INJECT_ON_READ
        assert technique_by_name("inject-on-write") is INJECT_ON_WRITE
        with pytest.raises(ConfigurationError):
            technique_by_name("inject-on-wish")


class TestOutcomeCounts:
    def test_fractions(self):
        counts = OutcomeCounts()
        counts.add(Outcome.SDC, 10)
        counts.add(Outcome.BENIGN, 60)
        counts.add(Outcome.DETECTED_HW_EXCEPTION, 25)
        counts.add(Outcome.HANG, 3)
        counts.add(Outcome.NO_OUTPUT, 2)
        assert counts.total == 100
        assert counts.sdc_fraction == pytest.approx(0.10)
        assert counts.detection_fraction == pytest.approx(0.30)
        assert counts.resilience == pytest.approx(0.90)

    def test_merge_and_roundtrip(self):
        a = OutcomeCounts({Outcome.SDC: 1, Outcome.BENIGN: 2})
        b = OutcomeCounts({Outcome.SDC: 3})
        merged = a.merge(b)
        assert merged.count(Outcome.SDC) == 4
        assert OutcomeCounts.from_mapping(merged.as_dict()).as_dict() == merged.as_dict()

    def test_empty_counts(self):
        empty = OutcomeCounts()
        assert empty.sdc_fraction == 0.0
        assert empty.detection_fraction == 0.0


class TestFaultSpecAndInjector:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("inject-on-read", 0, 0, max_mbf=0, win_size=1, seed=1)
        with pytest.raises(ConfigurationError):
            FaultSpec("inject-on-read", 0, 0, max_mbf=1, win_size=-1, seed=1)
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultSpec("inject-on-teleport", 0, 0, max_mbf=1, win_size=1, seed=1))

    def test_single_bit_flip_changes_value(self, simple_runner):
        rng = random.Random(5)
        spec = simple_runner.sample_spec(INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng)
        result = simple_runner.run_spec(spec)
        assert result.activated_errors == 1
        record = result.injections[0]
        assert record.before_bits != record.after_bits
        # Exactly one bit differs.
        assert bin(record.before_bits ^ record.after_bits).count("1") == 1

    def test_same_register_mode_flips_distinct_bits(self, simple_runner):
        rng = random.Random(7)
        spec = simple_runner.sample_spec(INJECT_ON_WRITE, max_mbf=5, win_size=0, rng=rng)
        result = simple_runner.run_spec(spec)
        assert 1 <= result.activated_errors <= 5
        bits = [record.bit for record in result.injections]
        assert len(bits) == len(set(bits))
        dynamic_indices = {record.dynamic_index for record in result.injections}
        assert len(dynamic_indices) == 1

    def test_multi_register_mode_respects_window(self, simple_runner):
        rng = random.Random(9)
        for _ in range(20):
            spec = simple_runner.sample_spec(INJECT_ON_WRITE, max_mbf=4, win_size=5, rng=rng)
            result = simple_runner.run_spec(spec)
            indices = [record.dynamic_index for record in result.injections]
            for earlier, later in zip(indices, indices[1:]):
                assert later - earlier >= 5

    def test_activated_errors_bounded_by_max_mbf(self, simple_runner):
        rng = random.Random(13)
        for _ in range(20):
            spec = simple_runner.sample_spec(INJECT_ON_READ, max_mbf=30, win_size=1, rng=rng)
            result = simple_runner.run_spec(spec)
            assert result.activated_errors <= 30

    def test_determinism_same_spec_same_outcome(self, simple_runner):
        rng = random.Random(17)
        spec = simple_runner.sample_spec(INJECT_ON_WRITE, max_mbf=3, win_size=2, rng=rng)
        first = simple_runner.run_spec(spec)
        second = simple_runner.run_spec(spec)
        assert first.outcome == second.outcome
        assert [r.bit for r in first.injections] == [r.bit for r in second.injections]


class TestExperimentClassification:
    def test_golden_trace_profile(self, simple_runner):
        golden = simple_runner.golden
        assert golden.dynamic_instruction_count > 50
        assert len(golden.output) == 2

    def test_outcome_distribution_is_plausible(self, simple_runner):
        rng = random.Random(23)
        counts = OutcomeCounts()
        for _ in range(150):
            result = simple_runner.run_sampled(
                INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng
            )
            counts.add(result.outcome)
        assert counts.total == 150
        # Single bit flips must produce at least some benign results and at
        # least some failures; an injector that always (or never) corrupts
        # the output would be broken.
        assert counts.count(Outcome.BENIGN) > 0
        assert counts.count(Outcome.SDC) + counts.count(Outcome.DETECTED_HW_EXCEPTION) > 0

    def test_profile_rejects_crashing_program(self):
        crashing = '''
def main() -> "i64":
    x = 0
    return 10 // x
'''
        program = compile_program("crashing", [crashing])
        with pytest.raises(RuntimeError):
            profile_program(program)

    def test_pinned_first_candidate_is_respected(self, simple_runner):
        rng = random.Random(29)
        candidate = INJECT_ON_WRITE.sample_candidate(simple_runner.golden, rng)
        spec = simple_runner.sample_spec(
            INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng, first_candidate=candidate
        )
        assert spec.first_dynamic_index == candidate.dynamic_index
        result = simple_runner.run_spec(spec)
        if result.injections:
            assert result.injections[0].dynamic_index == candidate.dynamic_index
