"""Property tests for the error-space subsystem (enumeration, def-use
equivalence pruning, outcome inference).

The load-bearing guarantees:

* the exhaustive enumeration covers exactly the candidate space the
  injection techniques sample from (Table II counts times register widths);
* equivalence classes partition the candidate space and class weights plus
  inferred errors sum to the full error-space size — for all 15 registry
  programs;
* statically inferred outcomes match real executions bit for bit (checked
  exhaustively on a small custom workload, by sampling on crc32);
* a pruned campaign's weighted counts equal the brute-force exhaustive
  counts on the small workload;
* pruned-plan construction and budgeted sampling are deterministic under a
  fixed seed;
* exhaustive results round-trip through the ResultStore byte-stably.
"""

import json
import random

import pytest

from repro.campaign.engine import run_error_batch
from repro.campaign.results import ExhaustiveCampaignResult, ResultStore
from repro.errorspace import (
    build_defuse_index,
    build_pruned_plan,
    enumerate_error_space,
)
from repro.errorspace.inference import OutcomeInference, validation_sample
from repro.frontend import compile_program
from repro.injection import ExperimentRunner, INJECT_ON_READ, INJECT_ON_WRITE
from repro.injection.outcome import Outcome, OutcomeCounts
from repro.programs.registry import all_program_names, get_experiment_runner

# A small workload whose full inject-on-read error space can be executed
# brute-force in a test: a few thousand single-bit errors covering loads,
# stores, arithmetic, compares, calls and output.
WORKLOAD = '''
def scale(value: "i64", factor: "i64") -> "i64":
    return value * factor + 3

def main() -> "i64":
    total = 0
    for i in range(4):
        total += scale(table[i % 3], i + 1)
        buffer[i % 3] = total % 97
    output(total)
    output(buffer[1])
    return total
'''

GLOBALS = {
    "table": ("i64", [5, 11, 23]),
    "buffer": ("i64", [0, 0, 0]),
}


@pytest.fixture(scope="module")
def small_runner():
    program = compile_program("errorspace_small", [WORKLOAD], GLOBALS)
    return ExperimentRunner(program)


@pytest.fixture(scope="module")
def small_index(small_runner):
    return build_defuse_index(
        small_runner.program,
        small_runner.golden,
        args=small_runner.args,
        decoded=small_runner.decoded,
    )


def brute_force_outcomes(runner, technique_name, space):
    errors = [(e.dynamic_index, e.slot, e.bit) for e in space.iter_errors()]
    outcomes = run_error_batch(runner, technique_name, errors)
    return dict(zip(((t, s, b) for t, s, b in errors), outcomes))


# ---------------------------------------------------------------- enumeration
def test_enumeration_matches_technique_candidate_space(small_runner):
    golden = small_runner.golden
    for technique in (INJECT_ON_READ, INJECT_ON_WRITE):
        space = enumerate_error_space(golden, technique.name)
        candidates = technique.candidates(golden)
        assert space.candidate_count == len(candidates)
        assert space.size == technique.error_space_size(golden)
        enumerated = list(space.iter_errors())
        assert len(enumerated) == space.size
        # deterministic ordering and one error per candidate-bit pair
        keys = [e.key for e in enumerated]
        assert len(set(keys)) == len(keys)
        assert keys == sorted(keys, key=lambda k: (k[0], -1 if k[1] is None else k[1], k[2]))
        per_candidate = {(c.dynamic_index, c.slot): c.register_bits for c in candidates}
        for error in enumerated:
            assert 0 <= error.bit < per_candidate[(error.dynamic_index, error.slot)]


def test_chunked_enumeration_is_a_deterministic_partition(small_runner):
    space = enumerate_error_space(small_runner.golden, "inject-on-read")
    whole = [e.key for e in space.iter_errors()]
    for chunk_size in (7, 64, 10_000_000):
        chunked = [e.key for chunk in space.chunks(chunk_size) for e in chunk]
        assert chunked == whole


# ------------------------------------------------------- partition invariants
@pytest.mark.parametrize("name", all_program_names())
def test_classes_partition_candidate_space_all_programs(name):
    """Def-use class keys partition every program's candidate space."""
    runner = get_experiment_runner(name)
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    space = enumerate_error_space(runner.golden, "inject-on-read")
    seen = set()
    grouped_bits = 0
    for error in space.iter_candidate_errors():
        key = index.class_key(error.dynamic_index, error.slot)
        assert key is not None
        assert (error.dynamic_index, error.slot) not in seen
        seen.add((error.dynamic_index, error.slot))
        grouped_bits += error.register_bits
    # every candidate grouped exactly once, expansion covers the full space
    assert len(seen) == space.candidate_count
    assert grouped_bits == space.size


@pytest.mark.parametrize("name", ["bfs", "spmv", "crc32"])
def test_plan_weights_sum_to_error_space(name):
    runner = get_experiment_runner(name)
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    for technique in ("inject-on-read", "inject-on-write"):
        space = enumerate_error_space(runner.golden, technique)
        plan = build_pruned_plan(space, index, infer=False)
        assert plan.covered_errors == plan.total_errors == space.size
        assert plan.inferred_errors == 0
        assert sum(cls.weight for cls in plan.classes) == space.size
        if technique == "inject-on-write":
            # write classes are singletons: Table II counts are preserved
            assert len(plan.classes) == space.size
            assert all(cls.weight == 1 for cls in plan.classes)
        # classes do not overlap
        members = set()
        for cls in plan.classes:
            rep = cls.representative
            for tick, slot in ((rep.dynamic_index, rep.slot),) + cls.members:
                assert (tick, slot, cls.bit) not in members
                members.add((tick, slot, cls.bit))
        assert len(members) == space.size


# ------------------------------------------------------------------ inference
def test_inferred_outcomes_match_execution_exhaustively(small_runner, small_index):
    """Every statically inferred outcome equals the real execution outcome."""
    space = enumerate_error_space(small_runner.golden, "inject-on-read")
    truth = brute_force_outcomes(small_runner, "inject-on-read", space)
    engine = OutcomeInference(small_index)
    inferred = 0
    for error in space.iter_errors():
        outcome = engine.infer(error)
        if outcome is not None:
            inferred += 1
            assert outcome is truth[error.key], (
                f"inference predicted {outcome} but execution produced "
                f"{truth[error.key]} for error {error.key}"
            )
    # the small workload must exercise the inference layers, not skip them
    assert inferred > space.size // 10


def test_pruned_plan_reproduces_brute_force_counts(small_runner, small_index):
    """Weighted pruned counts equal the unpruned exhaustive counts exactly."""
    space = enumerate_error_space(small_runner.golden, "inject-on-read")
    truth = brute_force_outcomes(small_runner, "inject-on-read", space)
    truth_counts = OutcomeCounts()
    truth_counts.update(truth.values())

    plan = build_pruned_plan(space, small_index)
    assert plan.covered_errors == space.size
    assert plan.executed_experiments < space.size  # it actually prunes
    planned = plan.exact_experiments()
    errors = [(p.error.dynamic_index, p.error.slot, p.error.bit) for p in planned]
    outcomes = run_error_batch(small_runner, "inject-on-read", errors)
    representative_outcomes = {
        planned[i].class_id: outcomes[i] for i in range(len(planned))
    }
    weighted = plan.expand_counts(representative_outcomes, planned)
    assert weighted.total == space.size
    assert weighted.as_dict() == truth_counts.as_dict()


def test_inference_sample_matches_execution_on_crc32():
    runner = get_experiment_runner("crc32")
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    space = enumerate_error_space(runner.golden, "inject-on-read")
    engine = OutcomeInference(index)
    rng = random.Random(7)
    errors = [e for e in space.iter_errors() if rng.random() < 0.002]
    checked = 0
    for error in errors:
        outcome = engine.infer(error)
        if outcome is None:
            continue
        actual = run_error_batch(
            runner, "inject-on-read", [(error.dynamic_index, error.slot, error.bit)]
        )[0]
        assert outcome is actual
        checked += 1
        if checked >= 40:
            break
    assert checked >= 20


# -------------------------------------------------------------- determinism
def test_pruned_plan_is_deterministic(small_runner):
    plans = []
    for _ in range(2):
        index = build_defuse_index(
            small_runner.program,
            small_runner.golden,
            args=small_runner.args,
            decoded=small_runner.decoded,
        )
        space = enumerate_error_space(small_runner.golden, "inject-on-read")
        plans.append(build_pruned_plan(space, index))
    first, second = plans
    assert [c.key for c in first.classes] == [c.key for c in second.classes]
    assert [c.representative.key for c in first.classes] == [
        c.representative.key for c in second.classes
    ]
    assert [c.members for c in first.classes] == [c.members for c in second.classes]
    assert first.inferred_outcomes == second.inferred_outcomes

    budgeted_a = first.budgeted_experiments(13, seed=42)
    budgeted_b = second.budgeted_experiments(13, seed=42)
    assert [(p.class_id, p.weight) for p in budgeted_a] == [
        (p.class_id, p.weight) for p in budgeted_b
    ]
    assert sum(p.weight for p in budgeted_a) == sum(c.weight for c in first.classes)


def test_validation_sample_is_deterministic():
    population = [((tick, 0, 1), tick % 7) for tick in range(500)]
    first = validation_sample(population, 0.1, seed=3)
    second = validation_sample(population, 0.1, seed=3)
    other = validation_sample(population, 0.1, seed=4)
    assert first == second
    assert len(first) == 50
    assert first != other


def test_phi_swap_parallel_assignment_attribution():
    """Phi groups resolve incoming defs against the pre-group state.

    A block whose phis read each other's results (a parallel swap) is the
    adversarial case: sequential def updates during replay would attribute
    the second phi's read to the first phi's *new* def.  The module swaps
    two values every iteration; inference must stay exact over the whole
    space.
    """
    from repro.frontend.compiler import CompiledProgram
    from repro.ir import Constant, Function, IRBuilder, Module
    from repro.ir.types import I64

    module = Module("phiswap")
    function = Function("main", I64)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    done = function.add_block("done")

    builder = IRBuilder(function, entry)
    builder.branch(header)

    builder.position_at_end(header)
    i_phi = builder.phi(I64, "i")
    a_phi = builder.phi(I64, "a")
    b_phi = builder.phi(I64, "b")
    i_phi.add_incoming(Constant(I64, 0), entry)
    a_phi.add_incoming(Constant(I64, 7), entry)
    b_phi.add_incoming(Constant(I64, 40), entry)
    finished = builder.icmp("sge", i_phi.result, Constant(I64, 5))
    builder.cond_branch(finished, done, body)

    builder.position_at_end(body)
    new_i = builder.add(i_phi.result, Constant(I64, 1))
    i_phi.add_incoming(new_i, body)
    # the swap: each phi's back-edge incoming is the *other* phi's result
    a_phi.add_incoming(b_phi.result, body)
    b_phi.add_incoming(a_phi.result, body)
    builder.branch(header)

    builder.position_at_end(done)
    total = builder.add(a_phi.result, builder.mul(b_phi.result, Constant(I64, 1000)))
    builder.call("__output", [total])
    builder.ret(total)
    module.finalize()

    runner = ExperimentRunner(CompiledProgram(module, "main"))
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )

    # White-box: on every back-edge phi group, each swap phi's incoming def
    # must be the def the *previous* group committed — never the def created
    # by the other phi inside the same group (sequential replay would link
    # b's read to the a def created one tick earlier in the same group).
    group_starts = [
        tick for tick, instr in enumerate(index.instructions) if instr is i_phi
    ]
    checked_groups = 0
    for group_start in group_starts[1:]:  # back edges only (entry reads constants)
        for offset, phi in ((1, a_phi), (2, b_phi)):
            tick = group_start + offset
            assert index.instructions[tick] is phi
            operand_defs = [d for d in index.operand_defs[tick] if d is not None]
            assert operand_defs, f"back-edge phi at tick {tick} unattributed"
            incoming_tick = index.defs[operand_defs[0]].tick
            assert incoming_tick < group_start, (
                f"phi at tick {tick} reads a def created inside its own group "
                f"(def tick {incoming_tick}) — parallel assignment violated"
            )
        checked_groups += 1
    assert checked_groups >= 4

    # And the generic money property still holds on this adversarial module.
    space = enumerate_error_space(runner.golden, "inject-on-read")
    truth = brute_force_outcomes(runner, "inject-on-read", space)
    engine = OutcomeInference(index)
    inferred = 0
    for error in space.iter_errors():
        outcome = engine.infer(error)
        if outcome is not None:
            inferred += 1
            assert outcome is truth[error.key], f"wrong inference at {error.key}"
    assert inferred > 0


# ---------------------------------------------------------------- engine path
def test_run_errors_serial_and_parallel_agree():
    """The engine error path returns identical outcomes serial vs pooled."""
    from repro.campaign.engine import MultiprocessEngine, RegistryProvider, SerialEngine

    runner = get_experiment_runner("crc32")
    space = enumerate_error_space(runner.golden, "inject-on-read")
    rng = random.Random(11)
    errors = [
        (e.dynamic_index, e.slot, e.bit)
        for e in space.iter_errors()
        if rng.random() < 0.0003
    ][:60]
    provider = RegistryProvider()
    serial = SerialEngine().run_errors(
        "crc32", "inject-on-read", errors, provider=provider
    )
    with MultiprocessEngine(2, chunk_size=16) as engine:
        parallel = engine.run_errors(
            "crc32", "inject-on-read", errors, provider=provider
        )
    assert serial == parallel
    assert len(serial) == len(errors)


def test_session_budgeted_exhaustive_roundtrip(tmp_path):
    """Budgeted pruned campaigns run end to end and cache in the store."""
    from repro.experiments import ExperimentSession

    session = ExperimentSession(cache_path=tmp_path / "cache.json")
    result = session.run_exhaustive(
        "bfs", "inject-on-read", mode="budgeted", budget=25, infer=False, seed=5
    )
    space = enumerate_error_space(
        get_experiment_runner("bfs").golden, "inject-on-read"
    )
    # duplicate draws of the same class execute once
    assert 0 < result.executed_experiments <= 25
    assert result.outcome_counts.total == space.size == result.total_errors
    assert result.inferred_errors == 0
    # cached: a second identical call returns the stored result
    again = session.run_exhaustive(
        "bfs", "inject-on-read", mode="budgeted", budget=25, infer=False, seed=5
    )
    assert again is result
    # ... but different parameters are a different campaign, not a cache hit
    other = session.run_exhaustive(
        "bfs", "inject-on-read", mode="budgeted", budget=30, infer=False, seed=5
    )
    assert other is not result
    assert other.campaign_id != result.campaign_id
    reloaded = ResultStore.load(tmp_path / "cache.json")
    assert (
        reloaded.exhaustive(
            "bfs", "inject-on-read", "budgeted", result.variant
        ).to_dict()
        == result.to_dict()
    )


# ------------------------------------------------------------------- storage
def test_exhaustive_results_roundtrip_byte_stably(tmp_path):
    counts = OutcomeCounts()
    counts.add(Outcome.BENIGN, 1000)
    counts.add(Outcome.SDC, 234)
    counts.add(Outcome.DETECTED_HW_EXCEPTION, 400)
    result = ExhaustiveCampaignResult(
        program="crc32",
        technique="inject-on-read",
        mode="pruned",
        total_errors=1634,
        candidate_count=40,
        executed_experiments=300,
        inferred_errors=500,
        outcome_counts=counts,
        validation_sampled=100,
        validation_mispredicted=1,
    )
    store = ResultStore()
    store.add_exhaustive(result)
    path = tmp_path / "store.json"
    store.save(path)
    first_bytes = path.read_bytes()

    loaded = ResultStore.load(path)
    reloaded = loaded.exhaustive("crc32", "inject-on-read", "pruned")
    assert reloaded.to_dict() == result.to_dict()
    assert reloaded.reduction_factor == pytest.approx(1634 / 300)
    assert reloaded.misprediction_rate == pytest.approx(0.01)
    loaded.save(path)
    assert path.read_bytes() == first_bytes

    # stores without exhaustive results keep their legacy shape
    empty = ResultStore()
    empty_path = tmp_path / "legacy.json"
    empty.save(empty_path)
    payload = json.loads(empty_path.read_text())
    assert "exhaustive_campaigns" not in payload
