"""Tests for the restricted-Python frontend compiler."""

import pytest

from repro.errors import CompilationError
from repro.frontend import ProgramCompiler, compile_program
from repro.ir.verifier import verify_module
from repro.vm import Interpreter


def run_source(functions, globals_=None, entry="main", args=()):
    program = compile_program("test", functions, globals_, entry=entry)
    interpreter = Interpreter(program.module, entry=program.entry)
    return interpreter.run(list(args))


class TestBasicLowering:
    def test_arithmetic_and_return(self):
        source = '''
def main() -> "i64":
    a = 6
    b = 7
    return a * b
'''
        assert run_source([source]).return_value == 42

    def test_float_arithmetic(self):
        source = '''
def main() -> "f64":
    x = 1.5
    y = 2.0
    return x * y + 1.0
'''
        assert run_source([source]).return_value == 4.0

    def test_if_else(self):
        source = '''
def main() -> "i64":
    x = 10
    if x > 5:
        return 1
    else:
        return 2
'''
        assert run_source([source]).return_value == 1

    def test_if_else_false_branch_executes_else_body(self):
        # Regression test: the else body must run when the condition is false
        # (an early lowering bug branched straight to the merge block).
        source = '''
def main() -> "i64":
    total = 0
    for i in range(6):
        if i % 2 == 1:
            total += 100
        else:
            total += 1
    return total
'''
        assert run_source([source]).return_value == 303

    def test_elif_chain(self):
        source = '''
def classify(x: "i64") -> "i64":
    if x < 0:
        return 1
    elif x == 0:
        return 2
    elif x < 10:
        return 3
    else:
        return 4

def main() -> "i64":
    return classify(-3) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50)
'''
        assert run_source([source]).return_value == 1234

    def test_while_loop(self):
        source = '''
def main() -> "i64":
    total = 0
    i = 0
    while i < 10:
        total += i
        i += 1
    return total
'''
        assert run_source([source]).return_value == 45

    def test_for_range_loop(self):
        source = '''
def main() -> "i64":
    total = 0
    for i in range(1, 11):
        total += i
    return total
'''
        assert run_source([source]).return_value == 55

    def test_for_with_step_and_break_continue(self):
        source = '''
def main() -> "i64":
    total = 0
    for i in range(0, 100, 2):
        if i == 10:
            continue
        if i > 20:
            break
        total += i
    return total
'''
        assert run_source([source]).return_value == 0 + 2 + 4 + 6 + 8 + 12 + 14 + 16 + 18 + 20

    def test_boolean_short_circuit(self):
        # The second operand would divide by zero if evaluated.
        source = '''
def main() -> "i64":
    x = 0
    if x != 0 and 10 // x > 1:
        return 1
    return 2
'''
        assert run_source([source]).return_value == 2

    def test_ternary_and_min_max_abs(self):
        source = '''
def main() -> "i64":
    a = -5
    b = 3
    c = a if a > b else b
    return c + min(a, b) + max(a, b) + abs(a)
'''
        assert run_source([source]).return_value == 3 + (-5) + 3 + 5


class TestArraysAndGlobals:
    def test_local_array_store_load(self):
        source = '''
def main() -> "i64":
    buf = array("i32", 8)
    for i in range(8):
        buf[i] = i * i
    total = 0
    for i in range(8):
        total += buf[i]
    return total
'''
        assert run_source([source]).return_value == sum(i * i for i in range(8))

    def test_global_array(self):
        source = '''
def main() -> "i64":
    total = 0
    for i in range(5):
        total += data[i]
    return total
'''
        result = run_source([source], {"data": ("i32", [1, 2, 3, 4, 5])})
        assert result.return_value == 15

    def test_narrow_element_wraparound(self):
        source = '''
def main() -> "i64":
    buf = array("i8", 1)
    buf[0] = 200
    return buf[0]
'''
        # 200 stored in an i8 reads back as -56 (two's complement).
        assert run_source([source]).return_value == -56

    def test_malloc(self):
        source = '''
def main() -> "i64":
    buf = malloc("i64", 4)
    buf[0] = 11
    buf[3] = 31
    return buf[0] + buf[3]
'''
        assert run_source([source]).return_value == 42

    def test_output_intrinsic(self):
        source = '''
def main() -> "i64":
    output(7)
    output(2.5)
    return 0
'''
        result = run_source([source])
        assert len(result.output) == 2
        assert result.output[0][0] == "i64"
        assert result.output[1][0] == "f64"


class TestFunctionsAndCalls:
    def test_user_function_call(self):
        helper = '''
def square(x: "i64") -> "i64":
    return x * x
'''
        main = '''
def main() -> "i64":
    return square(6) + square(2)
'''
        assert run_source([helper, main]).return_value == 40

    def test_recursion(self):
        source = '''
def fib(n: "i64") -> "i64":
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def main() -> "i64":
    return fib(10)
'''
        assert run_source([source]).return_value == 55

    def test_pointer_parameters(self):
        fill = '''
def fill(buf: "i32*", n: "i64") -> None:
    for i in range(n):
        buf[i] = i + 1
'''
        main = '''
def main() -> "i64":
    buf = array("i32", 6)
    fill(buf, 6)
    total = 0
    for i in range(6):
        total += buf[i]
    return total
'''
        assert run_source([fill, main]).return_value == 21

    def test_math_builtins(self):
        source = '''
def main() -> "f64":
    return sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0)
'''
        assert run_source([source]).return_value == pytest.approx(14.0)

    def test_assert_failure_is_abort(self):
        source = '''
def main() -> "i64":
    x = 1
    assert x == 2
    return 0
'''
        result = run_source([source])
        assert not result.completed
        assert result.fault.category == "abort"


class TestDiagnostics:
    def test_missing_annotation_rejected(self):
        source = '''
def main(x) -> "i64":
    return x
'''
        with pytest.raises(CompilationError):
            compile_program("bad", [source])

    def test_unknown_call_rejected(self):
        source = '''
def main() -> "i64":
    return mystery(1)
'''
        with pytest.raises(CompilationError):
            compile_program("bad", [source])

    def test_unsupported_statement_rejected(self):
        source = '''
def main() -> "i64":
    with open("x") as f:
        pass
    return 0
'''
        with pytest.raises(CompilationError):
            compile_program("bad", [source])

    def test_undefined_variable_rejected(self):
        source = '''
def main() -> "i64":
    return undefined_thing
'''
        with pytest.raises(CompilationError):
            compile_program("bad", [source])

    def test_compiled_modules_verify(self):
        source = '''
def main() -> "i64":
    total = 0
    for i in range(4):
        if i % 2 == 0:
            total += i
    return total
'''
        program = compile_program("verified", [source])
        verify_module(program.module)
        assert program.instruction_count() > 0
