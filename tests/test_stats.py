"""Tests for the statistical helpers (proportions, confidence intervals)."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    normal_proportion_interval,
    percentage_point_difference,
    proportion_difference_significant,
    wilson_proportion_interval,
)


class TestIntervals:
    def test_point_estimate(self):
        estimate = normal_proportion_interval(25, 100)
        assert estimate.point == pytest.approx(0.25)
        assert estimate.percentage == pytest.approx(25.0)

    def test_normal_interval_matches_textbook_value(self):
        estimate = normal_proportion_interval(50, 100)
        # 0.5 +/- 1.96 * sqrt(0.25/100) = 0.5 +/- 0.098
        assert estimate.lower == pytest.approx(0.402, abs=1e-3)
        assert estimate.upper == pytest.approx(0.598, abs=1e-3)

    def test_wilson_interval_is_inside_unit_range_at_extremes(self):
        low = wilson_proportion_interval(0, 50)
        high = wilson_proportion_interval(50, 50)
        assert low.lower == pytest.approx(0.0, abs=1e-12)
        assert low.upper > 0.0
        assert high.upper == pytest.approx(1.0, abs=1e-12)
        assert high.lower < 1.0

    def test_zero_trials(self):
        estimate = wilson_proportion_interval(0, 0)
        assert estimate.point == 0.0
        assert estimate.half_width == 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            normal_proportion_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_proportion_interval(-1, 3)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=500))
    def test_intervals_bracket_the_point(self, successes, trials):
        successes = min(successes, trials)
        for interval in (
            normal_proportion_interval(successes, trials),
            wilson_proportion_interval(successes, trials),
        ):
            assert 0.0 <= interval.lower <= interval.point <= interval.upper <= 1.0

    @given(st.integers(min_value=1, max_value=100))
    def test_wilson_width_shrinks_with_more_trials(self, successes):
        small = wilson_proportion_interval(successes, 100)
        large = wilson_proportion_interval(successes * 10, 1000)
        assert large.half_width <= small.half_width + 1e-12


class TestComparisons:
    def test_significant_difference(self):
        assert proportion_difference_significant(80, 100, 20, 100)

    def test_insignificant_difference(self):
        assert not proportion_difference_significant(50, 100, 52, 100)

    def test_zero_trials_never_significant(self):
        assert not proportion_difference_significant(0, 0, 5, 10)

    def test_percentage_point_difference(self):
        assert percentage_point_difference(30, 100, 10, 100) == pytest.approx(20.0)
        assert percentage_point_difference(1, 10, 3, 10) == pytest.approx(-20.0)
