"""Integration tests: build small IR functions and execute them on the VM."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    F64,
    Function,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    verify_module,
)
from repro.ir.printer import print_module
from repro.vm import ExecutionLimits, Interpreter


def build_add_module():
    module = Module("add")
    function = Function("main", I64, [I64, I64], ["a", "b"])
    module.add_function(function)
    builder = IRBuilder(function, function.add_block("entry"))
    total = builder.add(function.arguments[0], function.arguments[1])
    builder.call("__output", [total], VOID)
    builder.ret(total)
    module.finalize()
    return module


def build_loop_module(iterations):
    """sum(0..iterations-1) via an explicit loop with a phi node."""
    module = Module("loop")
    function = Function("main", I64)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    done = function.add_block("done")

    builder = IRBuilder(function, entry)
    builder.branch(header)

    builder.position_at_end(header)
    index_phi = builder.phi(I64, "i")
    total_phi = builder.phi(I64, "total")
    index_phi.add_incoming(Constant(I64, 0), entry)
    total_phi.add_incoming(Constant(I64, 0), entry)
    finished = builder.icmp("sge", index_phi.result, Constant(I64, iterations))
    builder.cond_branch(finished, done, body)

    builder.position_at_end(body)
    new_total = builder.add(total_phi.result, index_phi.result)
    new_index = builder.add(index_phi.result, Constant(I64, 1))
    index_phi.add_incoming(new_index, body)
    total_phi.add_incoming(new_total, body)
    builder.branch(header)

    builder.position_at_end(done)
    builder.ret(total_phi.result)
    module.finalize()
    return module


class TestBuilderBasics:
    def test_add_module_verifies(self):
        module = build_add_module()
        verify_module(module)

    def test_add_module_prints(self):
        text = print_module(build_add_module())
        assert "define i64 @main(i64 %a, i64 %b)" in text
        assert "call @__output" in text

    def test_run_add(self):
        interpreter = Interpreter(build_add_module())
        result = interpreter.run([19, 23])
        assert result.completed
        assert result.return_value == 42
        assert result.output == (("i64", 42),)

    def test_loop_with_phi(self):
        module = build_loop_module(10)
        verify_module(module)
        result = Interpreter(module).run()
        assert result.completed
        assert result.return_value == sum(range(10))


class TestArithmeticSemantics:
    def _run_binop(self, opcode, lhs, rhs, type_=I64):
        module = Module("binop")
        function = Function("main", type_)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        value = builder.binop(opcode, Constant(type_, lhs), Constant(type_, rhs))
        builder.ret(value)
        module.finalize()
        return Interpreter(module).run()

    def test_wrapping_add(self):
        result = self._run_binop("add", 2**31 - 1, 1, I32)
        assert result.return_value == -(2**31)

    def test_sdiv_truncates_toward_zero(self):
        assert self._run_binop("sdiv", -7, 2).return_value == -3
        assert self._run_binop("srem", -7, 2).return_value == -1

    def test_division_by_zero_raises_hardware_fault(self):
        result = self._run_binop("sdiv", 1, 0)
        assert not result.completed
        assert result.fault is not None
        assert result.fault.category == "arithmetic-fault"

    def test_shift_amount_is_masked(self):
        # A 64-bit shift by 65 behaves like a shift by 1 (hardware masking).
        assert self._run_binop("shl", 1, 65).return_value == 2

    def test_float_division_by_zero_does_not_trap(self):
        module = Module("fdiv")
        function = Function("main", F64)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        value = builder.fdiv(Constant(F64, 1.0), Constant(F64, 0.0))
        builder.ret(value)
        module.finalize()
        result = Interpreter(module).run()
        assert result.completed
        assert result.return_value == float("inf")


class TestMemorySemantics:
    def build_store_load(self):
        module = Module("mem")
        function = Function("main", I32)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        slot = builder.alloca(I32)
        builder.store(Constant(I32, 77), slot)
        value = builder.load(slot)
        builder.ret(value)
        module.finalize()
        return module

    def test_store_then_load(self):
        result = Interpreter(self.build_store_load()).run()
        assert result.completed and result.return_value == 77

    def test_global_initialization(self):
        module = Module("globals")
        module.add_global("table", __import__("repro.ir.types", fromlist=["ArrayType"]).ArrayType(I32, 3), [5, 6, 7])
        function = Function("main", I32)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        base = builder.gep(module.get_global("table"), Constant(I64, 2), I32)
        value = builder.load(base)
        builder.ret(value)
        module.finalize()
        result = Interpreter(module).run()
        assert result.completed and result.return_value == 7

    def test_wild_load_segfaults(self):
        module = Module("wild")
        function = Function("main", I32)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        pointer = builder.cast("inttoptr", Constant(I64, 0x10), __import__("repro.ir.types", fromlist=["PointerType"]).PointerType(I32))
        value = builder.load(pointer)
        builder.ret(value)
        module.finalize()
        result = Interpreter(module).run()
        assert not result.completed
        assert result.fault.category == "segmentation-fault"


class TestControlAndLimits:
    def test_hang_detection(self):
        module = Module("spin")
        function = Function("main", VOID)
        module.add_function(function)
        entry = function.add_block("entry")
        loop = function.add_block("loop")
        builder = IRBuilder(function, entry)
        builder.branch(loop)
        builder.position_at_end(loop)
        builder.branch(loop)
        module.finalize()
        result = Interpreter(module, limits=ExecutionLimits(max_dynamic_instructions=500)).run()
        assert not result.completed
        assert result.hang

    def test_call_between_functions(self):
        module = Module("calls")
        helper = Function("double_it", I64, [I64], ["x"])
        module.add_function(helper)
        builder = IRBuilder(helper, helper.add_block("entry"))
        builder.ret(builder.add(helper.arguments[0], helper.arguments[0]))

        main = Function("main", I64)
        module.add_function(main)
        builder = IRBuilder(main, main.add_block("entry"))
        result = builder.call(helper, [Constant(I64, 21)])
        builder.ret(result)
        module.finalize()
        verify_module(module)
        assert Interpreter(module).run().return_value == 42

    def test_abort_intrinsic(self):
        module = Module("abort")
        function = Function("main", VOID)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        builder.call("__abort", [], VOID)
        builder.ret()
        module.finalize()
        result = Interpreter(module).run()
        assert not result.completed
        assert result.fault.category == "abort"

    def test_entry_argument_mismatch_is_host_error(self):
        from repro.errors import ExecutionSetupError

        with pytest.raises(ExecutionSetupError):
            Interpreter(build_add_module()).run([1])
