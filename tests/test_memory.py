"""Tests for the segmented memory model and its hardware-exception behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import F32, F64, I16, I32, I64, I8, PointerType
from repro.vm.faults import MisalignedAccessFault, SegmentationFault
from repro.vm.memory import DEFAULT_LAYOUT, Memory, MemorySegment, NULL_GUARD_LIMIT


class TestSegments:
    def test_default_layout(self):
        memory = Memory()
        assert set(memory.segments) == {"globals", "heap", "stack"}

    def test_segment_allocation_alignment(self):
        segment = MemorySegment("s", base=0x1000, size=256)
        first = segment.allocate(3, align=8)
        second = segment.allocate(8, align=8)
        assert first == 0x1000
        assert second == 0x1008

    def test_segment_exhaustion(self):
        segment = MemorySegment("s", base=0x1000, size=16)
        segment.allocate(16)
        with pytest.raises(MemoryError):
            segment.allocate(1)

    def test_overlapping_segments_rejected(self):
        memory = Memory()
        base, size = DEFAULT_LAYOUT["heap"]
        with pytest.raises(ValueError):
            memory.add_segment("clash", base + 16, 64)

    def test_null_guard_segment_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.add_segment("null", NULL_GUARD_LIMIT // 2, 64)

    def test_stack_mark_release(self):
        memory = Memory()
        mark = memory.stack_mark()
        memory.allocate("stack", 128)
        assert memory.stack_mark() != mark
        memory.stack_release(mark)
        assert memory.stack_mark() == mark


class TestAccessChecks:
    def test_null_pointer_access_faults(self):
        memory = Memory()
        with pytest.raises(SegmentationFault):
            memory.read_scalar(0, I32)
        with pytest.raises(SegmentationFault):
            memory.write_scalar(8, 1, I64)

    def test_unmapped_access_faults(self):
        memory = Memory()
        with pytest.raises(SegmentationFault):
            memory.read_scalar(0xDEAD_BEEF_0000, I32)

    def test_misaligned_access_faults(self):
        memory = Memory()
        base = memory.allocate("heap", 64, align=8)
        with pytest.raises(MisalignedAccessFault):
            memory.read_scalar(base + 1, I32)
        with pytest.raises(MisalignedAccessFault):
            memory.write_scalar(base + 2, 1.0, F64)

    def test_byte_access_never_misaligned(self):
        memory = Memory()
        base = memory.allocate("heap", 16, align=8)
        memory.write_scalar(base + 3, 42, I8)
        assert memory.read_scalar(base + 3, I8) == 42

    def test_access_straddling_segment_end_faults(self):
        memory = Memory()
        segment = memory.segment("heap")
        last_valid = segment.end - 4
        memory.write_scalar(last_valid, 7, I32)
        assert memory.read_scalar(last_valid, I32) == 7
        with pytest.raises(SegmentationFault):
            memory.read_bytes(segment.end - 2, 8)


class TestTypedRoundTrips:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_i32_roundtrip(self, value):
        memory = Memory()
        address = memory.allocate("heap", 4, align=4)
        memory.write_scalar(address, value, I32)
        assert memory.read_scalar(address, I32) == value

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_i16_roundtrip(self, value):
        memory = Memory()
        address = memory.allocate("heap", 2, align=2)
        memory.write_scalar(address, value, I16)
        assert memory.read_scalar(address, I16) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_roundtrip(self, value):
        memory = Memory()
        address = memory.allocate("heap", 8, align=8)
        memory.write_scalar(address, value, F64)
        assert memory.read_scalar(address, F64) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_roundtrip(self, value):
        memory = Memory()
        address = memory.allocate("heap", 4, align=4)
        memory.write_scalar(address, value, F32)
        assert memory.read_scalar(address, F32) == pytest.approx(value, rel=1e-6, abs=1e-30)

    def test_pointer_roundtrip(self):
        memory = Memory()
        pointer_type = PointerType(I32)
        address = memory.allocate("heap", 8, align=8)
        memory.write_scalar(address, 0x7000_0010, pointer_type)
        assert memory.read_scalar(address, pointer_type) == 0x7000_0010

    def test_array_helpers(self):
        memory = Memory()
        address = memory.allocate("heap", 40, align=8)
        memory.write_array(address, [1, 2, 3, 4, 5], I32)
        assert memory.read_array(address, 5, I32) == [1, 2, 3, 4, 5]

    def test_access_counters(self):
        memory = Memory()
        address = memory.allocate("heap", 8, align=8)
        memory.write_scalar(address, 3, I64)
        memory.read_scalar(address, I64)
        assert memory.bytes_written == 8
        assert memory.bytes_read == 8
