"""Tests for the 15 benchmark programs (Table II workloads)."""

import pytest

from repro.injection import INJECT_ON_READ, INJECT_ON_WRITE, profile_program
from repro.ir.verifier import verify_module
from repro.programs import registry
from repro.programs.inputs import (
    adjacency_matrix,
    ascii_text,
    dense_vector,
    edge_list_graph,
    embed_word,
    lcg_sequence,
    rectangle_image,
    sound_samples,
    sparse_matrix_coo,
)

ALL_PROGRAMS = registry.all_program_names()


class TestRegistry:
    def test_fifteen_programs(self):
        assert len(ALL_PROGRAMS) == 15
        assert len(set(ALL_PROGRAMS)) == 15

    def test_suite_split_matches_paper(self):
        assert len(registry.mibench_program_names()) == 11
        assert len(registry.parboil_program_names()) == 4

    def test_expected_names_present(self):
        expected = {
            "basicmath",
            "qsort",
            "susan_corners",
            "susan_edges",
            "susan_smoothing",
            "fft",
            "ifft",
            "crc32",
            "dijkstra",
            "sha",
            "stringsearch",
            "bfs",
            "histo",
            "sad",
            "spmv",
        }
        assert set(ALL_PROGRAMS) == expected

    def test_unknown_program_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            registry.get_program("doom")

    def test_build_is_cached(self):
        assert registry.build_program("crc32") is registry.build_program("crc32")
        assert registry.get_experiment_runner("crc32") is registry.get_experiment_runner("crc32")


@pytest.mark.parametrize("name", ALL_PROGRAMS)
class TestEveryProgram:
    def test_module_verifies(self, name):
        program = registry.build_program(name)
        verify_module(program.module)

    def test_golden_run_completes_with_output(self, name):
        golden = registry.get_experiment_runner(name).golden
        assert golden.dynamic_instruction_count > 500
        assert len(golden.output) >= 2

    def test_golden_run_is_deterministic(self, name):
        program = registry.get_program(name).build()
        first = profile_program(program)
        second = profile_program(registry.get_program(name).build())
        assert first.output == second.output
        assert first.dynamic_instruction_count == second.dynamic_instruction_count

    def test_candidate_counts_read_at_least_write(self, name):
        golden = registry.get_experiment_runner(name).golden
        read_count = INJECT_ON_READ.candidate_instruction_count(golden)
        write_count = INJECT_ON_WRITE.candidate_instruction_count(golden)
        assert read_count >= write_count > 0


class TestProgramSpecificGoldenValues:
    """Spot checks of each workload's semantics against a host-side oracle."""

    def test_qsort_sorts(self):
        from repro.programs.mibench.qsort import ELEMENT_COUNT

        golden = registry.get_experiment_runner("qsort").golden
        values = sorted(lcg_sequence(seed=42, count=ELEMENT_COUNT, modulus=10_000))
        expected_checksum = sum(value * (index + 1) for index, value in enumerate(values))
        checksum, first, last, inversions = [bits for _type, bits in golden.output]
        assert checksum == expected_checksum
        assert first == values[0]
        assert last == values[-1]
        assert inversions == 0

    def test_crc32_matches_binascii(self):
        import binascii

        from repro.programs.mibench.crc32 import MESSAGE_BYTES

        golden = registry.get_experiment_runner("crc32").golden
        message = bytes(value & 0xFF for value in sound_samples(MESSAGE_BYTES, seed=77))
        assert golden.output[0][1] == binascii.crc32(message)

    def test_sha_matches_hashlib(self):
        import hashlib

        from repro.programs.mibench.sha import MESSAGE_LENGTH

        golden = registry.get_experiment_runner("sha").golden
        message = bytes(ascii_text(seed=99, length=MESSAGE_LENGTH))
        digest = hashlib.sha1(message).digest()
        words = [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 20, 4)]
        assert [bits for _t, bits in golden.output[:5]] == words

    def test_histo_counts_every_sample(self):
        from repro.programs.parboil.histo import HIST_HEIGHT, HIST_WIDTH, SAMPLE_COUNT

        golden = registry.get_experiment_runner("histo").golden
        samples = lcg_sequence(seed=888, count=SAMPLE_COUNT, modulus=HIST_WIDTH * HIST_HEIGHT * 3)
        bins = [0] * (HIST_WIDTH * HIST_HEIGHT)
        for value in samples:
            row = (value // HIST_WIDTH) % HIST_HEIGHT
            col = value % HIST_WIDTH
            if bins[row * HIST_WIDTH + col] < 255:
                bins[row * HIST_WIDTH + col] += 1
        expected_checksum = sum(count * (index + 1) for index, count in enumerate(bins))
        assert golden.output[0][1] == expected_checksum

    def test_dijkstra_distances_match_networkx(self):
        import networkx as nx

        from repro.programs.mibench.dijkstra import INFINITY, NODE_COUNT

        matrix = adjacency_matrix(NODE_COUNT, seed=1234)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(NODE_COUNT))
        for row in range(NODE_COUNT):
            for col in range(NODE_COUNT):
                weight = matrix[row * NODE_COUNT + col]
                if weight > 0:
                    graph.add_edge(row, col, weight=weight)
        lengths = nx.single_source_dijkstra_path_length(graph, 0, weight="weight")
        expected_total = sum(length for node, length in lengths.items() if length < INFINITY)
        golden = registry.get_experiment_runner("dijkstra").golden
        assert golden.output[0][1] == expected_total
        assert golden.output[1][1] == len(lengths)

    def test_bfs_costs_match_networkx(self):
        import networkx as nx

        from repro.programs.parboil.bfs import NODE_COUNT

        offsets, edges = edge_list_graph(NODE_COUNT, seed=555)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(NODE_COUNT))
        for node in range(NODE_COUNT):
            for index in range(offsets[node], offsets[node + 1]):
                graph.add_edge(node, edges[index])
        lengths = nx.single_source_shortest_path_length(graph, 0)
        golden = registry.get_experiment_runner("bfs").golden
        visited, cost_sum, max_cost, last_cost = [bits for _t, bits in golden.output]
        assert visited == len(lengths)
        assert cost_sum == sum(length for length in lengths.values() if length > 0)
        assert max_cost == max(lengths.values())

    def test_fft_energy_conserved(self):
        """Parseval: FFT bin energy equals N x time-domain energy."""
        import struct

        from repro.programs.mibench.fft import POINTS, _wave_samples

        golden = registry.get_experiment_runner("fft").golden
        energy_bits = golden.output[0][1]
        energy = struct.unpack("<d", struct.pack("<Q", energy_bits))[0]
        time_energy = sum(sample * sample for sample in _wave_samples())
        assert energy == pytest.approx(POINTS * time_energy, rel=1e-9)

    def test_spmv_matches_numpy(self):
        import struct

        import numpy as np

        from repro.programs.parboil.spmv import COLS, NONZEROS, ROWS

        rows, cols, values = sparse_matrix_coo(ROWS, COLS, NONZEROS, seed=2020)
        vector = np.array(dense_vector(COLS, seed=2021))
        matrix = np.zeros((ROWS, COLS))
        for r, c, v in zip(rows, cols, values):
            matrix[r, c] += v
        first = matrix @ vector
        golden = registry.get_experiment_runner("spmv").golden
        first_checksum = struct.unpack("<d", struct.pack("<Q", golden.output[0][1]))[0]
        assert first_checksum == pytest.approx(first.sum(), rel=1e-9)

    def test_stringsearch_finds_every_pattern(self):
        golden = registry.get_experiment_runner("stringsearch").golden
        found_count = golden.output[0][1]
        # Each of the 3 embedded patterns is found at least in its own phrase.
        assert found_count >= 3


class TestInputGenerators:
    def test_lcg_is_deterministic(self):
        assert lcg_sequence(1, 10, 100) == lcg_sequence(1, 10, 100)
        assert lcg_sequence(1, 10, 100) != lcg_sequence(2, 10, 100)

    def test_rectangle_image_has_two_brightness_levels(self):
        image = rectangle_image(8, 8)
        assert len(image) == 64
        assert max(image) > 150
        assert min(image) < 60

    def test_embed_word(self):
        text = ascii_text(seed=1, length=20)
        embedded = embed_word(text, "abc", 5)
        assert embedded[5:8] == [ord("a"), ord("b"), ord("c")]
        assert len(embedded) == 20

    def test_adjacency_matrix_is_connected_ring(self):
        nodes = 6
        matrix = adjacency_matrix(nodes, seed=3)
        for node in range(nodes):
            assert matrix[node * nodes + (node + 1) % nodes] > 0
            assert matrix[node * nodes + node] == 0

    def test_edge_list_graph_offsets_are_monotonic(self):
        offsets, edges = edge_list_graph(10, seed=4)
        assert offsets[0] == 0
        assert offsets[-1] == len(edges)
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))
        assert all(0 <= target < 10 for target in edges)

    def test_sparse_matrix_covers_every_row(self):
        rows, cols, values = sparse_matrix_coo(8, 8, 20, seed=5)
        assert set(range(8)) <= set(rows)
        assert len(rows) == len(cols) == len(values)

    def test_sound_samples_are_16_bit(self):
        samples = sound_samples(32, seed=6)
        assert all(-32768 <= s <= 32767 for s in samples)
