"""Tests for the MiniIR verifier and the textual printer."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    F64,
    Function,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir.instructions import BinaryOp, Compare, Phi, Return, Store
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.types import PointerType
from repro.ir.values import VirtualRegister


def make_function(return_type=I64):
    module = Module("m")
    function = Function("f", return_type)
    module.add_function(function)
    return module, function


class TestVerifierCatchesBrokenIR:
    def test_unterminated_block(self):
        module, function = make_function()
        builder = IRBuilder(function, function.add_block("entry"))
        builder.add(Constant(I64, 1), Constant(I64, 2))
        with pytest.raises(VerificationError, match="not terminated"):
            verify_module(module)

    def test_empty_function(self):
        module, function = make_function()
        with pytest.raises(VerificationError, match="no basic blocks"):
            verify_module(module)

    def test_empty_module(self):
        with pytest.raises(VerificationError, match="no functions"):
            verify_module(Module("empty"))

    def test_type_mismatch_in_binop(self):
        module, function = make_function()
        block = function.add_block("entry")
        result = function.new_register(I64)
        block.append(BinaryOp("add", Constant(I64, 1), Constant(I32, 2), result))
        block.append(Return(Constant(I64, 0)))
        with pytest.raises(VerificationError, match="mismatched operand types"):
            verify_function(function, module)

    def test_float_opcode_on_integers(self):
        module, function = make_function()
        block = function.add_block("entry")
        result = function.new_register(I64)
        block.append(BinaryOp("fadd", Constant(I64, 1), Constant(I64, 2), result))
        block.append(Return(Constant(I64, 0)))
        with pytest.raises(VerificationError, match="float opcode"):
            verify_function(function, module)

    def test_store_through_non_pointer(self):
        module, function = make_function(VOID)
        block = function.add_block("entry")
        block.append(Store(Constant(I64, 1), Constant(I64, 0x1000)))
        block.append(Return())
        with pytest.raises(VerificationError, match="non-pointer"):
            verify_function(function, module)

    def test_return_type_mismatch(self):
        module, function = make_function(I64)
        block = function.add_block("entry")
        block.append(Return(Constant(F64, 1.0)))
        with pytest.raises(VerificationError, match="return type"):
            verify_function(function, module)

    def test_void_function_returning_value(self):
        module, function = make_function(VOID)
        block = function.add_block("entry")
        block.append(Return(Constant(I64, 1)))
        with pytest.raises(VerificationError, match="void function returns"):
            verify_function(function, module)

    def test_use_of_undefined_register(self):
        module, function = make_function()
        block = function.add_block("entry")
        ghost = VirtualRegister(I64, "ghost")
        result = function.new_register(I64)
        block.append(BinaryOp("add", ghost, Constant(I64, 1), result))
        block.append(Return(result))
        with pytest.raises(VerificationError, match="undefined register"):
            verify_function(function, module)

    def test_call_to_unknown_function(self):
        module, function = make_function()
        builder = IRBuilder(function, function.add_block("entry"))
        builder.call("missing", [], I64)
        builder.ret(Constant(I64, 0))
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(module)

    def test_call_argument_count_mismatch(self):
        module = Module("m")
        callee = Function("callee", I64, [I64], ["x"])
        module.add_function(callee)
        builder = IRBuilder(callee, callee.add_block("entry"))
        builder.ret(callee.arguments[0])

        caller = Function("caller", I64)
        module.add_function(caller)
        builder = IRBuilder(caller, caller.add_block("entry"))
        value = builder.call(callee, [])
        builder.ret(value)
        with pytest.raises(VerificationError, match="passes 0 args"):
            verify_module(module)

    def test_phi_with_no_incoming(self):
        module, function = make_function()
        block = function.add_block("entry")
        phi = Phi(I64, function.new_register(I64))
        block.append(phi)
        block.append(Return(phi.result))
        with pytest.raises(VerificationError, match="no incoming"):
            verify_function(function, module)

    def test_phi_after_non_phi(self):
        module, function = make_function()
        block = function.add_block("entry")
        result = function.new_register(I64)
        block.append(BinaryOp("add", Constant(I64, 1), Constant(I64, 2), result))
        phi = Phi(I64, function.new_register(I64))
        phi.add_incoming(Constant(I64, 0), block)
        block.append(phi)
        block.append(Return(result))
        with pytest.raises(VerificationError, match="after non-phi"):
            verify_function(function, module)

    def test_conditional_branch_on_non_bool(self):
        module, function = make_function(VOID)
        entry = function.add_block("entry")
        target = function.add_block("target")
        builder = IRBuilder(function, entry)
        builder.cond_branch(Constant(I64, 1), target, target)
        builder.position_at_end(target)
        builder.ret()
        with pytest.raises(VerificationError, match="non-i1"):
            verify_module(module)

    def test_compare_result_must_be_bool(self):
        module, function = make_function()
        block = function.add_block("entry")
        bad_result = function.new_register(I64)
        block.append(Compare("eq", Constant(I64, 1), Constant(I64, 1), bad_result))
        block.append(Return(Constant(I64, 0)))
        with pytest.raises(VerificationError, match="result must be i1"):
            verify_function(function, module)

    def test_error_collects_multiple_messages(self):
        module, function = make_function()
        block = function.add_block("entry")
        result = function.new_register(I64)
        block.append(BinaryOp("add", Constant(I64, 1), Constant(I32, 2), result))
        # No terminator either -> at least two messages.
        try:
            verify_function(function, module)
        except VerificationError as error:
            assert len(error.messages) >= 2
        else:  # pragma: no cover
            pytest.fail("expected a VerificationError")


class TestPrinter:
    def build_sample(self):
        module = Module("sample")
        module.add_global("lut", __import__("repro.ir.types", fromlist=["ArrayType"]).ArrayType(I32, 4), [1, 2, 3, 4], constant=True)
        function = Function("compute", I64, [I64, PointerType(F64)], ["n", "data"])
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        doubled = builder.add(function.arguments[0], function.arguments[0])
        pointer = builder.gep(function.arguments[1], doubled)
        loaded = builder.load(pointer)
        as_int = builder.fptosi(loaded, I64)
        flag = builder.icmp("sgt", as_int, Constant(I64, 0))
        selected = builder.select(flag, as_int, doubled)
        builder.call("__output", [selected], VOID)
        builder.ret(selected)
        module.finalize()
        return module, function

    def test_function_rendering_contains_key_constructs(self):
        module, function = self.build_sample()
        text = print_function(function)
        assert "define i64 @compute(i64 %n, f64* %data)" in text
        assert "getelementptr" in text
        assert "fptosi" in text
        assert "icmp sgt" in text
        assert "select" in text
        assert "call @__output" in text
        assert text.strip().endswith("}")

    def test_module_rendering_includes_globals(self):
        module, _ = self.build_sample()
        text = print_module(module)
        assert "@lut = constant [4 x i32] [1, 2, 3, 4]" in text
        assert "; module sample" in text

    def test_every_instruction_prints_one_line(self):
        module, function = self.build_sample()
        for instruction in function.instructions():
            line = print_instruction(instruction)
            assert "\n" not in line
            assert line.strip()

    def test_phi_and_branches_print(self):
        module = Module("loops")
        function = Function("f", I64)
        module.add_function(function)
        entry = function.add_block("entry")
        header = function.add_block("header")
        builder = IRBuilder(function, entry)
        builder.branch(header)
        builder.position_at_end(header)
        phi = builder.phi(I64, "acc")
        phi.add_incoming(Constant(I64, 0), entry)
        phi.add_incoming(phi.result, header)
        done = builder.icmp("sge", phi.result, Constant(I64, 5))
        exit_block = builder.append_block("exit")
        builder.cond_branch(done, exit_block, header)
        builder.position_at_end(exit_block)
        builder.ret(phi.result)
        text = print_function(function)
        assert "phi i64 [ 0, %entry ], [ %acc" in text
        assert "br i1" in text
        assert "br label %header" in text
