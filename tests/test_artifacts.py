"""Tests for the persistent artifact cache (:mod:`repro.artifacts`).

The load-bearing guarantees:

* golden traces + checkpoint stores, def-use indices and pruned plans
  round-trip through the cache bit-identically (the loaded artifacts are
  re-bound to the current module and drive identical campaigns);
* the cache key is *content*-addressed: mutating the module (appending an
  instruction, rewriting an operand) or bumping the pipeline code version
  misses instead of returning stale artifacts;
* a corrupted or truncated artifact file is a miss, never a crash — the
  pipeline recomputes and overwrites it;
* a warm cache means zero golden-trace re-derivations, in-process and in
  spawned workers (asserted in ``tests/test_engine.py``).
"""

import pickle

import pytest

from repro import artifacts
from repro.artifacts import (
    ArtifactCache,
    deserialize_golden,
    golden_key,
    load_plan,
    module_fingerprint,
    plan_key,
    serialize_golden,
    store_plan,
)
from repro.errorspace import build_defuse_index, build_pruned_plan, enumerate_error_space
from repro.errorspace.defuse import DefUseIndex
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.ir.values import Constant
from repro.vm.interpreter import ExecutionLimits
from repro.vm.program import decode_module
from repro.vm.snapshot import golden_with_checkpoints

WORKLOAD = '''
def main() -> "i64":
    total = 0
    for i in range(6):
        buffer[i % 3] = total % 89
        total += buffer[i % 3] * 5 + i
    output(total)
    return total
'''


def build_workload(name="artifact_workload"):
    return compile_program(name, [WORKLOAD], {"buffer": ("i64", [0, 0, 0])})


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


@pytest.fixture(autouse=True)
def reset_active_cache():
    """Keep the process-wide cache configuration from leaking across tests."""
    yield
    artifacts.configure(None)


# ------------------------------------------------------------------ fingerprint
def test_fingerprint_changes_on_structural_mutation():
    program = build_workload()
    baseline = module_fingerprint(program.module)
    assert baseline == module_fingerprint(program.module)  # deterministic

    other = build_workload()
    assert module_fingerprint(other.module) == baseline  # content, not identity

    # replace_operand: rewrite a constant somewhere in the module
    mutated = build_workload()
    for instruction in mutated.module.all_instructions():
        for position, operand in enumerate(instruction.operands):
            if isinstance(operand, Constant) and operand.value == 5:
                instruction.replace_operand(position, Constant(operand.type, 7))
                break
        else:
            continue
        break
    assert module_fingerprint(mutated.module) != baseline

    # BasicBlock.append: structurally grow a function
    from repro.ir.instructions import Branch

    extended = build_workload()
    function = next(iter(extended.module.functions.values()))
    target = function.blocks[0]
    function.add_block("dangling").append(Branch(target))
    assert module_fingerprint(extended.module) != baseline


# ----------------------------------------------------------------- golden trace
def test_golden_roundtrip_is_bit_identical(cache):
    program = build_workload()
    golden, store = golden_with_checkpoints(program.module, entry=program.entry)
    payload = pickle.loads(
        pickle.dumps(serialize_golden(golden, store), protocol=pickle.HIGHEST_PROTOCOL)
    )
    decoded = decode_module(program.module)
    loaded_golden, loaded_store = deserialize_golden(payload, decoded)
    assert loaded_golden.records == golden.records
    assert loaded_golden.output == golden.output
    assert loaded_golden.return_value == golden.return_value
    assert loaded_golden.checkpoint_ticks == golden.checkpoint_ticks
    assert loaded_golden.iter_register_accesses() == golden.iter_register_accesses()
    assert loaded_store.interval == store.interval
    assert [s.tick for s in loaded_store.snapshots] == [s.tick for s in store.snapshots]
    # restored snapshots drive a resumable interpreter to the identical result
    from repro.vm.interpreter import Interpreter

    driver = Interpreter(decoded, entry=program.entry)
    resumed = driver.resume(loaded_store.snapshots[-1])
    assert resumed.completed
    assert resumed.output == golden.output
    assert resumed.return_value == golden.return_value


def test_cold_then_warm_cache_skips_derivation(tmp_path, monkeypatch):
    import repro.vm.snapshot as snapshot_module

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifacts"))
    artifacts.configure(None)  # fall back to the env var

    program = build_workload("artifact_cold_warm")
    before = snapshot_module.GOLDEN_DERIVATIONS
    golden_with_checkpoints(program.module, entry=program.entry)
    assert snapshot_module.GOLDEN_DERIVATIONS == before + 1

    # A content-identical module in a "fresh process" (new module object, so
    # the in-memory cache is cold) hits the disk artifact instead.
    clone = build_workload("artifact_cold_warm")
    golden, store = golden_with_checkpoints(clone.module, entry=clone.entry)
    assert snapshot_module.GOLDEN_DERIVATIONS == before + 1  # no new derivation
    assert len(store.snapshots) > 0
    runner = ExperimentRunner(clone)  # warm-up also resolves from the cache
    assert runner.golden.output == golden.output
    assert snapshot_module.GOLDEN_DERIVATIONS == before + 1


# ------------------------------------------------------------ cache invalidation
def test_module_mutation_misses_the_cache(tmp_path):
    cache = ArtifactCache(tmp_path / "artifacts")
    program = build_workload("artifact_invalidation")
    golden, store = golden_with_checkpoints(program.module, entry=program.entry)
    limits = ExecutionLimits()
    key = golden_key(cache, program.module, program.entry, (), None, 32, limits)
    assert cache.store("golden", key, serialize_golden(golden, store))
    assert cache.load("golden", key) is not None

    # replace_operand → different fingerprint → different key → miss
    for instruction in program.module.all_instructions():
        for position, operand in enumerate(instruction.operands):
            if isinstance(operand, Constant) and operand.value == 89:
                instruction.replace_operand(position, Constant(operand.type, 97))
                mutated_key = golden_key(
                    cache, program.module, program.entry, (), None, 32, limits
                )
                assert mutated_key != key
                assert cache.load("golden", mutated_key) is None
                return
    raise AssertionError("workload constant not found")


def test_code_version_bump_misses_the_cache(tmp_path):
    program = build_workload("artifact_codever")
    current = ArtifactCache(tmp_path / "artifacts")
    bumped = ArtifactCache(tmp_path / "artifacts", code_version="next-version")
    fingerprint = module_fingerprint(program.module)
    key = current.key_for("golden", fingerprint)
    assert current.store("golden", key, {"sentinel": 1})
    assert current.load("golden", key) == {"sentinel": 1}
    assert bumped.key_for("golden", fingerprint) != key
    assert bumped.load("golden", bumped.key_for("golden", fingerprint)) is None


def test_corrupted_and_truncated_artifacts_fall_back(tmp_path):
    cache = ArtifactCache(tmp_path / "artifacts")
    key = cache.key_for("plan", "whatever")
    assert cache.store("plan", key, {"payload": list(range(1000))})
    path = cache.path_for("plan", key)

    # truncated pickle: load must report a miss, not raise
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    assert cache.load("plan", key) is None
    # arbitrary garbage
    path.write_bytes(b"not a pickle at all")
    assert cache.load("plan", key) is None
    # the miss is recoverable: storing again round-trips
    assert cache.store("plan", key, {"ok": True})
    assert cache.load("plan", key) == {"ok": True}


def test_corrupted_plan_artifact_recomputes_in_session(tmp_path):
    from repro.experiments import ExperimentSession

    session = ExperimentSession(cache_dir=tmp_path / "artifacts")
    plan = session.pruned_plan("bfs")
    cache = session.artifact_cache
    runner = session.experiment_runner("bfs")
    key = plan_key(
        cache, runner.program.module, runner.program.entry, runner.args,
        "inject-on-read", True,
    )
    path = cache.path_for("plan", key)
    assert path.exists()
    path.write_bytes(b"\x80corrupted")

    fresh = ExperimentSession(cache_dir=tmp_path / "artifacts")
    rebuilt = fresh.pruned_plan("bfs")
    assert rebuilt.matches(plan)


# ------------------------------------------------------------------- def-use
def test_defuse_payload_roundtrip_preserves_queries():
    program = build_workload("artifact_defuse")
    runner = ExperimentRunner(program)
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    payload = pickle.loads(pickle.dumps(index.to_payload()))
    loaded = DefUseIndex.from_payload(
        runner.program, runner.golden, runner.decoded, payload
    )
    assert list(loaded.def_tick) == list(index.def_tick)
    assert loaded.def_site == index.def_site
    assert loaded.def_value == index.def_value
    assert [r.name for r in loaded.def_register] == [r.name for r in index.def_register]
    assert [r.type for r in loaded.def_register] == [r.type for r in index.def_register]
    assert loaded.read_def == index.read_def
    assert loaded.deferred_reads == index.deferred_reads
    assert loaded.operand_defs == index.operand_defs
    assert loaded.dead_stores == index.dead_stores
    assert loaded.instructions == index.instructions  # re-bound, same objects
    space = enumerate_error_space(runner.golden, "inject-on-read")
    for error in space.iter_candidate_errors():
        assert loaded.class_key(error.dynamic_index, error.slot) == index.class_key(
            error.dynamic_index, error.slot
        )
    # plans built from the loaded index are bit-identical
    original = build_pruned_plan(space, index)
    reloaded = build_pruned_plan(space, loaded)
    assert [(c.key, c.bit, c.representative, c.members) for c in original.classes] == [
        (c.key, c.bit, c.representative, c.members) for c in reloaded.classes
    ]
    assert original.inferred_outcomes == reloaded.inferred_outcomes


# ---------------------------------------------------------------------- plans
def test_plan_roundtrip_through_cache(cache):
    program = build_workload("artifact_plan")
    runner = ExperimentRunner(program)
    index = build_defuse_index(
        runner.program, runner.golden, args=runner.args, decoded=runner.decoded
    )
    space = enumerate_error_space(runner.golden, "inject-on-read")
    plan = build_pruned_plan(space, index)
    key = plan_key(cache, program.module, program.entry, (), "inject-on-read", True)
    assert store_plan(cache, key, plan)
    loaded = load_plan(cache, key)
    assert loaded is not None
    assert loaded.matches(plan)
    assert loaded.covered_errors == plan.covered_errors
    # deterministic budgeted draws agree between the two plan objects
    assert [
        (p.class_id, p.weight) for p in loaded.budgeted_experiments(9, seed=3)
    ] == [(p.class_id, p.weight) for p in plan.budgeted_experiments(9, seed=3)]


# ------------------------------------------------------------ crash durability
def test_store_survives_simulated_crash_before_rename(tmp_path, monkeypatch):
    """A writer killed between tempfile write and rename leaves a stranded
    ``.tmp-*`` file but never a half-written artifact under the real name."""
    import os

    cache = ArtifactCache(tmp_path / "artifacts")
    key = cache.key_for("golden", "workload")

    original_replace = os.replace

    def crash_instead_of_rename(src, dst):
        raise KeyboardInterrupt("simulated SIGKILL mid-store")

    monkeypatch.setattr(os, "replace", crash_instead_of_rename)
    with pytest.raises(BaseException):
        try:
            cache.store("golden", key, {"payload": 1})
        finally:
            monkeypatch.setattr(os, "replace", original_replace)
    # No artifact under the real name, possibly a stranded temp file.
    assert cache.load("golden", key) is None
    # The next writer succeeds and the artifact round-trips.
    assert cache.store("golden", key, {"payload": 2})
    assert cache.load("golden", key) == {"payload": 2}


def test_sweep_stale_tmp_reclaims_only_old_orphans(tmp_path):
    import os
    import time as time_module

    cache = ArtifactCache(tmp_path / "artifacts")
    kind_dir = tmp_path / "artifacts" / "golden"
    kind_dir.mkdir(parents=True)
    stale = kind_dir / ".tmp-stale"
    stale.write_bytes(b"orphaned by a killed writer")
    old = time_module.time() - 7200
    os.utime(stale, (old, old))
    fresh = kind_dir / ".tmp-fresh"
    fresh.write_bytes(b"a live writer may still own this")
    real = kind_dir / "artifact.pkl"
    real.write_bytes(b"never touched")

    assert cache.sweep_stale_tmp() == 1
    assert not stale.exists()
    assert fresh.exists()
    assert real.exists()


def test_cache_activation_sweeps_stale_tmp(tmp_path):
    import os
    import time as time_module

    kind_dir = tmp_path / "artifacts" / "plan"
    kind_dir.mkdir(parents=True)
    stale = kind_dir / ".tmp-dead"
    stale.write_bytes(b"x")
    old = time_module.time() - 7200
    os.utime(stale, (old, old))

    # configure() sweeps when it creates the cache instance...
    artifacts.configure(tmp_path / "artifacts")
    assert not stale.exists()

    # ...and RegistryProvider.prepare() sweeps on worker warm-up.
    stale.write_bytes(b"x")
    os.utime(stale, (old, old))
    from repro.campaign.engine import RegistryProvider

    artifacts.configure(None)
    RegistryProvider(cache_dir=str(tmp_path / "artifacts")).prepare()
    assert not stale.exists()
