"""Chaos tests for multi-host distributed campaign dispatch.

Covers the framed wire protocol, the lease coordinator (host death, network
partitions, duplicate completions, late joins, local fallback), coordinator
crash + ``--resume``, and the end-to-end guarantee that 1-host, N-host and
killed-then-resumed N-host runs produce byte-identical result stores across
the decoded and compiled backends.

In-process tests host :class:`~repro.dist.worker.WorkerAgent` on a thread
(``jobs=1`` executes leases in-process, so no daemonic-children issues);
session-level tests spawn real ``repro worker`` subprocesses over loopback
sockets, exactly as an operator would.
"""

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign import CampaignConfig, MultiprocessEngine, SerialEngine
from repro.dist import (
    CoordinatorTransport,
    MAX_FRAME_BYTES,
    NetChaos,
    ProtocolError,
    WorkerAgent,
    recv_frame,
    send_frame,
)
from repro.dist.worker import _SeverConnection
from repro.errors import CampaignInterrupted
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.injection.faultmodel import win_size_by_index

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

TINY_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(12):
        scratch[i % 4] = i * 7
        total += scratch[i % 4]
    output(total)
    return total
'''

_RUNNER = None


@pytest.fixture(autouse=True)
def _reset_global_caches():
    """In-process agents and sessions configure the global artifact cache
    and warm the registry LRUs; put both back so later test modules start
    from the cold-host state they expect."""
    yield
    from repro import artifacts
    from repro.programs import registry

    artifacts.configure(None)
    registry.build_program.cache_clear()
    registry.get_decoded_program.cache_clear()
    registry.get_defuse_index.cache_clear()
    registry.get_experiment_runner.cache_clear()


def dist_provider(name):
    """Module-level (hence picklable-by-reference) runner provider."""
    global _RUNNER
    if _RUNNER is None:
        program = compile_program(
            "tiny", [TINY_PROGRAM], {"scratch": ("i32", [0, 0, 0, 0])}
        )
        _RUNNER = ExperimentRunner(program)
    return _RUNNER


def tiny_config(**overrides):
    defaults = dict(
        program="tiny",
        technique="inject-on-write",
        max_mbf=3,
        win_size=win_size_by_index("w4"),
        experiments=32,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def result_signature(result):
    return (
        result.resolved_win_size,
        result.outcome_counts.as_dict(),
        result.activated_histogram,
        [record.to_tuple() for record in result.records],
    )


class _DyingAgent(WorkerAgent):
    """Drops the connection and permanently exits after ``die_after`` leases
    — a worker host that loses power, as opposed to a healed partition."""

    def __init__(self, *args, die_after=2, **kwargs):
        super().__init__(*args, **kwargs)
        self._die_after = die_after

    def _apply_chaos(self, entry):
        super()._apply_chaos(entry)
        if self._leases_received >= self._die_after:
            self.stop()
            raise _SeverConnection()


class _ThrottledAgent(WorkerAgent):
    """Sleeps briefly before every lease, keeping dispatch rounds alive long
    enough for slower cross-host races to play out deterministically."""

    def __init__(self, *args, throttle=0.15, **kwargs):
        super().__init__(*args, **kwargs)
        self._throttle = throttle

    def _apply_chaos(self, entry):
        super()._apply_chaos(entry)
        time.sleep(self._throttle)


class _AgentThread:
    """A WorkerAgent served from a daemon thread (in-process execution)."""

    def __init__(self, address, agent_cls=WorkerAgent, **kwargs):
        host, port = address
        self.agent = agent_cls(host, port, **kwargs)
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = self.agent.run()

    def start(self):
        self.thread.start()
        return self

    def join(self, timeout=20.0):
        self.agent.stop()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "worker agent failed to wind down"


def coordinator_engine(**kwargs):
    transport = CoordinatorTransport(
        "127.0.0.1",
        0,
        lease_ttl=kwargs.pop("lease_ttl", 2.0),
        local_fallback_after=kwargs.pop("local_fallback_after", 120.0),
    )
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("chunk_size", 4)
    engine = MultiprocessEngine(transport=transport, **kwargs)
    return engine, transport


# -- wire protocol ------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "done", "chunk": 3, "body": [1, 2, {"deep": "x"}]}
            send_frame(a, message)
            assert recv_frame(b) == message
            send_frame(b, {"type": "next", "max": 4})
            assert recv_frame(a) == {"type": "next", "max": 4}
        finally:
            a.close()
            b.close()

    def test_clean_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        send_frame(a, {"type": "hello"})
        a.close()
        try:
            assert recv_frame(b) == {"type": "hello"}
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        payload = pickle.dumps({"type": "done"})
        a.sendall(struct.pack(">I", len(payload)) + payload[: len(payload) // 2])
        a.close()
        try:
            with pytest.raises(ProtocolError, match="dropped inside a frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        try:
            with pytest.raises(ProtocolError, match="frame"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_mapping_message_rejected(self):
        a, b = socket.socketpair()
        payload = pickle.dumps(["not", "a", "dict"])
        a.sendall(struct.pack(">I", len(payload)) + payload)
        try:
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_chaos_knobs_parse_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_NET_KILL_NTH_CHUNK", "3")
        monkeypatch.setenv("REPRO_CHAOS_NET_DELAY_NTH_CHUNK", "2")
        monkeypatch.setenv("REPRO_CHAOS_NET_DELAY_SECONDS", "0.5")
        chaos = NetChaos.from_env()
        assert chaos.kill_nth == 3
        assert chaos.delay_nth == 2
        assert chaos.delay_seconds == 0.5
        assert chaos.enabled


# -- coordinator + worker agents: determinism under chaos ---------------------------


class TestDistributedCampaigns:
    def test_two_hosts_bit_identical(self):
        config = tiny_config(experiments=32)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine()
        agents = [
            _AgentThread(transport.address, name=f"host-{i}").start()
            for i in range(2)
        ]
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            engine.close()
            for agent in agents:
                agent.join()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.hosts_joined == 2
        assert transport.stats.leases_granted >= 8
        assert engine.supervision["distributed"]["hosts_joined"] == 2
        assert all(agent.exit_code == 0 for agent in agents)

    def test_dead_host_leases_reissued_to_survivor(self):
        """One host severs mid-run and never returns; the survivor absorbs
        its leases and the merged result is unchanged."""
        config = tiny_config(experiments=24)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine(lease_ttl=0.5)
        doomed = _AgentThread(
            transport.address,
            agent_cls=_DyingAgent,
            die_after=2,
            name="doomed",
            chaos=NetChaos(),
        ).start()
        survivor = _AgentThread(transport.address, name="survivor").start()
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            engine.close()
            doomed.join()
            survivor.join()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.hosts_left >= 1

    def test_partitioned_host_reconnects_and_finishes(self):
        """A severed connection heals: the agent redials with backoff and
        the same host identity completes the campaign."""
        config = tiny_config(experiments=16)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine(lease_ttl=0.5)
        agent = _AgentThread(
            transport.address,
            name="flaky",
            chaos=NetChaos(sever_nth=2),
            backoff_base=0.05,
        ).start()
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            engine.close()
            agent.join()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.hosts_joined >= 2  # original join + rejoin

    def test_duplicate_completion_first_write_wins(self):
        """A delayed host completes a lease the coordinator already expired
        and re-issued; the late completion is counted and discarded."""
        config = tiny_config(experiments=96)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine(
            lease_ttl=5.0, chunk_timeout=0.5, jobs=1, chunk_size=4
        )
        # The workhorse keeps the round alive (~3.5s of throttled chunks);
        # the victim sleeps through its first lease's hard deadline, so the
        # chunk is re-issued to the workhorse and completed twice.
        workhorse = _AgentThread(
            transport.address, agent_cls=_ThrottledAgent, name="workhorse"
        ).start()
        victim = _AgentThread(
            transport.address,
            name="victim",
            chaos=NetChaos(delay_nth=1, delay_seconds=1.2),
        ).start()
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            engine.close()
            workhorse.join()
            victim.join()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.duplicate_completions >= 1

    def test_no_hosts_falls_back_to_local_pool(self):
        config = tiny_config(experiments=16)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine(local_fallback_after=0.2)
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            engine.close()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.local_fallback_units == config.experiments
        assert (
            engine.supervision["distributed"]["local_fallback_units"]
            == config.experiments
        )

    def test_late_join_is_granted_work(self):
        config = tiny_config(experiments=16)
        serial = SerialEngine().run(config, provider=dist_provider)
        engine, transport = coordinator_engine()
        agent = _AgentThread(transport.address, name="latecomer")
        timer = threading.Timer(0.5, agent.start)
        timer.start()
        try:
            result = engine.run(config, provider=dist_provider)
        finally:
            timer.cancel()
            engine.close()
            if agent.thread.is_alive() or agent.exit_code is not None:
                agent.join()
        assert result_signature(result) == result_signature(serial)
        assert transport.stats.hosts_joined == 1


# -- coordinator crash + resume -----------------------------------------------------


class TestDistributedResume:
    def test_coordinator_crash_then_resume_bit_identical(
        self, tmp_path, monkeypatch
    ):
        config = tiny_config(experiments=32)
        serial = SerialEngine().run(config, provider=dist_provider)
        ledger_dir = str(tmp_path / "ledger")

        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "2")
        engine, transport = coordinator_engine(ledger_dir=ledger_dir)
        agent = _AgentThread(transport.address, name="round-one").start()
        try:
            with pytest.raises(CampaignInterrupted) as interrupted:
                engine.run(config, provider=dist_provider)
        finally:
            engine.close()
            agent.join()
        assert interrupted.value.resumable
        assert 0 < interrupted.value.done < config.experiments
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")

        second, transport2 = coordinator_engine(ledger_dir=ledger_dir, resume=True)
        agent2 = _AgentThread(transport2.address, name="round-two").start()
        try:
            resumed = second.run(config, provider=dist_provider)
        finally:
            second.close()
            agent2.join()
        assert result_signature(resumed) == result_signature(serial)
        assert second.supervision["ledger_loaded_units"] == interrupted.value.done


# -- session-level byte identity: real worker subprocesses --------------------------


def _worker_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Worker subprocesses must not inherit the coordinator-side abort knob.
    env.pop("REPRO_CHAOS_ABORT_AFTER_CHUNKS", None)
    env.update(extra or {})
    return env


def _spawn_worker(address, cache_dir, extra_env=None):
    host, port = address
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            f"{host}:{port}",
            "--cache-dir",
            str(cache_dir),
            "--reconnect-attempts",
            "3",
        ],
        env=_worker_env(extra_env),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _session_store_bytes(
    tmp_path, label, backend, *, hosts=0, worker_envs=(), resume=False
):
    """Run one small crc32 campaign through a session; return the store bytes."""
    from repro.experiments.session import ExperimentSession

    cache = tmp_path / f"{label}.json"
    session = ExperimentSession(
        cache_path=cache,
        cache_dir=tmp_path / f"{label}.artifacts",
        backend=backend,
        hosts=hosts,
        resume=resume,
    )
    workers = []
    config = CampaignConfig(
        program="crc32",
        technique="inject-on-read",
        max_mbf=1,
        win_size=win_size_by_index("w1"),
        experiments=6,
    )
    try:
        if hosts:
            for index, extra in enumerate(worker_envs):
                workers.append(
                    _spawn_worker(
                        session.coordinator_address,
                        tmp_path / f"{label}-worker{index}.cache",
                        extra,
                    )
                )
        session.ensure([config])
    finally:
        session.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    return cache.read_bytes()


@pytest.mark.parametrize("backend", ["decoded", "compiled"])
class TestSessionByteIdentity:
    def test_topologies_produce_identical_stores(self, tmp_path, backend):
        """1-host, 2-worker and killed-worker runs all byte-match serial."""
        baseline = _session_store_bytes(tmp_path, "serial", backend)
        one_host = _session_store_bytes(
            tmp_path, "one", backend, hosts=1, worker_envs=[{}]
        )
        two_hosts = _session_store_bytes(
            tmp_path, "two", backend, hosts=2, worker_envs=[{}, {}]
        )
        killed = _session_store_bytes(
            tmp_path,
            "killed",
            backend,
            hosts=2,
            worker_envs=[{"REPRO_CHAOS_NET_KILL_NTH_CHUNK": "1"}, {}],
        )
        assert one_host == baseline
        assert two_hosts == baseline
        assert killed == baseline

    def test_coordinator_crash_then_resume_matches(
        self, tmp_path, backend, monkeypatch
    ):
        baseline = _session_store_bytes(tmp_path, "serial", backend)
        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "1")
        with pytest.raises(CampaignInterrupted):
            _session_store_bytes(
                tmp_path, "crashed", backend, hosts=1, worker_envs=[{}]
            )
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")
        resumed = _session_store_bytes(
            tmp_path, "crashed", backend, hosts=1, worker_envs=[{}], resume=True
        )
        assert resumed == baseline
