"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError


class TestParser:
    def test_figure_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["figure", "4", "--programs", "crc32", "--experiments", "10", "--max-mbf", "2,3"]
        )
        assert args.command == "figure"
        assert args.number == 4
        assert args.programs == "crc32"
        assert args.experiments == 10

    def test_invalid_figure_number_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "9"])

    def test_command_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_fast_forward_options(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "1", "--no-fast-forward"])
        assert args.no_fast_forward
        assert args.checkpoint_interval is None
        args = parser.parse_args(["figure", "1", "--checkpoint-interval", "128"])
        assert not args.no_fast_forward
        assert args.checkpoint_interval == 128

    def test_non_positive_checkpoint_interval_rejected(self):
        parser = build_parser()
        for bad in ("0", "-5"):
            with pytest.raises(SystemExit):
                parser.parse_args(["figure", "1", "--checkpoint-interval", bad])


class TestCommands:
    def test_list_programs(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "susan_smoothing" in out and "parboil" in out
        assert len(out.strip().splitlines()) == 15

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "RND(101-1000)" in out

    def test_table2_with_program_subset(self, capsys):
        assert main(["table", "2", "--programs", "bfs,crc32"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "crc32" in out and "basicmath" not in out

    def test_unknown_program_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["table", "2", "--programs", "notaprogram"])

    def test_figure1_tiny_run(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        assert (
            main(
                [
                    "figure",
                    "1",
                    "--programs",
                    "bfs",
                    "--experiments",
                    "10",
                    "--cache",
                    str(cache),
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "figure1" in out and "bfs" in out
        assert cache.exists()

    def test_figure2_reuses_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        argv = [
            "figure",
            "2",
            "--programs",
            "bfs",
            "--experiments",
            "10",
            "--max-mbf",
            "2",
            "--cache",
            str(cache),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # cached campaigns give identical output
