"""Property-based tests for typed bit manipulation (the heart of the injector)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import BOOL, F32, F64, I16, I32, I64, I8, PointerType
from repro.vm import bitops

INT_TYPES = (BOOL, I8, I16, I32, I64)
FLOAT_TYPES = (F32, F64)
POINTER = PointerType(I32)


def int_values(type_):
    return st.integers(min_value=type_.min_value(), max_value=type_.max_value())


class TestBitWidth:
    def test_widths(self):
        assert bitops.bit_width(BOOL) == 1
        assert bitops.bit_width(I32) == 32
        assert bitops.bit_width(F32) == 32
        assert bitops.bit_width(F64) == 64
        assert bitops.bit_width(POINTER) == 64

    def test_void_like_types_rejected(self):
        from repro.ir.types import VOID

        with pytest.raises(TypeError):
            bitops.bit_width(VOID)


class TestIntegerFlips:
    @given(st.data())
    def test_flip_twice_is_identity(self, data):
        for type_ in INT_TYPES:
            value = data.draw(int_values(type_), label=f"value:{type_}")
            bit = data.draw(st.integers(0, type_.width - 1), label=f"bit:{type_}")
            once = bitops.flip_bit(value, type_, bit)
            twice = bitops.flip_bit(once, type_, bit)
            assert twice == value

    @given(st.data())
    def test_flip_changes_exactly_one_bit(self, data):
        for type_ in INT_TYPES:
            value = data.draw(int_values(type_), label=f"value:{type_}")
            bit = data.draw(st.integers(0, type_.width - 1), label=f"bit:{type_}")
            flipped = bitops.flip_bit(value, type_, bit)
            xor = bitops.value_to_bits(value, type_) ^ bitops.value_to_bits(flipped, type_)
            assert xor == 1 << bit

    @given(st.data())
    def test_roundtrip_bits(self, data):
        for type_ in INT_TYPES:
            value = data.draw(int_values(type_))
            assert bitops.bits_to_value(bitops.value_to_bits(value, type_), type_) == value

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            bitops.flip_bit(1, I8, 8)
        with pytest.raises(ValueError):
            bitops.flip_bit(1, I8, -1)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1), st.sets(st.integers(0, 31), max_size=8))
    def test_multi_flip_equals_xor_mask(self, value, bits):
        flipped = bitops.flip_bits(value, I32, bits)
        mask = 0
        for bit in bits:
            mask ^= 1 << bit
        assert bitops.value_to_bits(flipped, I32) == bitops.value_to_bits(value, I32) ^ mask


class TestFloatFlips:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=64), st.integers(0, 63))
    def test_f64_flip_twice_is_identity(self, value, bit):
        once = bitops.flip_bit(value, F64, bit)
        twice = bitops.flip_bit(once, F64, bit)
        assert bitops.value_to_bits(twice, F64) == bitops.value_to_bits(value, F64)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32), st.integers(0, 31))
    def test_f32_flip_twice_is_identity(self, value, bit):
        once = bitops.flip_bit(value, F32, bit)
        twice = bitops.flip_bit(once, F32, bit)
        if math.isnan(once):
            # A flip that lands on a signaling-NaN pattern is quieted by the
            # Python float round-trip (the hardware sets the quiet bit), so
            # the second flip restores the original pattern *up to* bit 22 —
            # exactly the canonicalization every VM value passes through.
            quiet_bit = 1 << 22
            assert bitops.value_to_bits(twice, F32) | quiet_bit == (
                bitops.value_to_bits(value, F32) | quiet_bit
            )
        else:
            assert bitops.value_to_bits(twice, F32) == bitops.value_to_bits(value, F32)

    def test_sign_bit_flip_negates(self):
        assert bitops.flip_bit(1.0, F64, 63) == -1.0
        assert bitops.flip_bit(-2.5, F64, 63) == 2.5

    def test_f32_overflow_becomes_infinity(self):
        bits = bitops.float_to_bits(1e300, 32)
        assert math.isinf(bitops.bits_to_float(bits, 32))

    def test_nan_comparison_uses_bit_patterns(self):
        assert bitops.values_equal(math.nan, math.nan, F64)
        assert not bitops.values_equal(0.0, -0.0, F64)


class TestCanonicalize:
    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_int_canonicalization_wraps(self, value):
        canonical = bitops.canonicalize(value, I32)
        assert I32.min_value() <= canonical <= I32.max_value()

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_canonicalization_is_idempotent(self, value):
        once = bitops.canonicalize(value, F32)
        assert bitops.canonicalize(once, F32) == once

    def test_pointer_canonicalization_masks_to_64_bits(self):
        assert bitops.canonicalize(2**70 + 5, POINTER) == (2**70 + 5) % 2**64
