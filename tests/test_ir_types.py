"""Unit tests for the MiniIR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    ArrayType,
    BOOL,
    F32,
    F64,
    FloatType,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    VOID,
    common_int_type,
    parse_type,
    scalar_types,
)


class TestIntType:
    def test_valid_widths(self):
        for width in (1, 8, 16, 32, 64):
            assert IntType(width).width == width

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_size_bytes(self):
        assert BOOL.size_bytes() == 1
        assert I8.size_bytes() == 1
        assert I16.size_bytes() == 2
        assert I32.size_bytes() == 4
        assert I64.size_bytes() == 8

    def test_ranges(self):
        assert I8.min_value() == -128
        assert I8.max_value() == 127
        assert I8.unsigned_max() == 255
        assert I32.min_value() == -(2**31)
        assert I32.max_value() == 2**31 - 1

    def test_wrap_two_complement(self):
        assert I8.wrap(255) == -1
        assert I8.wrap(128) == -128
        assert I8.wrap(127) == 127
        assert I8.wrap(-129) == 127
        assert I32.wrap(2**31) == -(2**31)

    def test_to_unsigned_roundtrip(self):
        assert I8.to_unsigned(-1) == 255
        assert I8.wrap(I8.to_unsigned(-1)) == -1

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_wrap_always_in_range(self, value):
        for type_ in (I8, I16, I32, I64):
            wrapped = type_.wrap(value)
            assert type_.min_value() <= wrapped <= type_.max_value()

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_wrap_is_identity_in_range(self, value):
        assert I32.wrap(value) == value

    def test_equality_and_hash(self):
        assert IntType(32) == I32
        assert hash(IntType(32)) == hash(I32)
        assert IntType(32) != IntType(64)


class TestFloatPointerArray:
    def test_float_widths(self):
        assert F32.size_bytes() == 4
        assert F64.size_bytes() == 8
        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_is_64_bit(self):
        ptr = PointerType(I32)
        assert ptr.bits == 64
        assert ptr.size_bytes() == 8
        assert str(ptr) == "i32*"

    def test_array_size(self):
        array = ArrayType(I32, 10)
        assert array.size_bytes() == 40
        assert array.alignment() == 4
        assert str(array) == "[10 x i32]"

    def test_array_of_void_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(VOID, 4)

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size_bytes()


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("i1", BOOL),
            ("i8", I8),
            ("i32", I32),
            ("i64", I64),
            ("f32", F32),
            ("f64", F64),
            ("void", VOID),
            ("i32*", PointerType(I32)),
            ("f64*", PointerType(F64)),
            ("i32**", PointerType(PointerType(I32))),
            ("[4 x i32]", ArrayType(I32, 4)),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_type(text) == expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            parse_type("i5")

    def test_common_int_type(self):
        assert common_int_type(I8, I32) == I32
        assert common_int_type(I64, I16) == I64

    def test_scalar_types_listing(self):
        kinds = scalar_types()
        assert BOOL in kinds and F64 in kinds
        assert all(t.bits is not None for t in kinds)
