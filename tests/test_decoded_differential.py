"""Differential suite: decoded execution is bit-identical to the IR walker.

The decode-once representation (:mod:`repro.vm.program`) claims bit-identical
behaviour to the reference tree-walking interpreter.  These tests enforce the
claim at every level the campaign stack depends on:

* golden traces (records, output, return value) across **every** registry
  program;
* hook call sequences (dynamic index, slot, register, value) on both hooks;
* per-experiment injection results (specs, outcomes, activated errors, the
  individual :class:`~repro.injection.faultmodel.InjectionRecord` flips) for
  fixed seeds;
* campaign :class:`~repro.campaign.results.ResultStore` files, byte for byte.

It also pins the decode-cache contract: one decode per unchanged module,
invalidation on structural mutation.
"""

import random

import pytest

from repro.campaign import CampaignConfig, CampaignRunner, ResultStore
from repro.frontend import compile_program
from repro.injection import ExperimentRunner, TECHNIQUES, profile_program
from repro.injection.faultmodel import win_size_by_index
from repro.programs import registry
from repro.vm import (
    Interpreter,
    ReferenceInterpreter,
    TraceCollector,
    decode_module,
)

ALL_PROGRAMS = registry.all_program_names()

#: Subset used for the (more expensive) injection/campaign differentials:
#: both suites, integer- and float-heavy, data- and address-dominated.
INJECTION_PROGRAMS = ["crc32", "fft", "dijkstra", "qsort"]


def _profile(backend: str, name: str):
    program = registry.build_program(name)
    return profile_program(program, backend=backend)


# --------------------------------------------------------------------- golden traces
@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_golden_trace_bit_identical(name):
    decoded = _profile("decoded", name)
    reference = _profile("reference", name)
    assert decoded.output == reference.output
    assert decoded.return_value == reference.return_value
    assert len(decoded) == len(reference)
    assert decoded.records == reference.records


# --------------------------------------------------------------------- hook sequences
def test_hook_sequences_bit_identical():
    """Both backends fire both hooks at the same times with the same data."""
    program = registry.build_program("fft")
    decoded = decode_module(program.module)

    def run(make_interpreter):
        reads, writes = [], []

        def read_hook(dynamic_index, instruction, slot, register, value):
            reads.append((dynamic_index, instruction.opcode, slot, register.name, value))
            return value

        def write_hook(dynamic_index, instruction, register, value):
            writes.append((dynamic_index, instruction.opcode, register.name, value))
            return value

        result = make_interpreter(read_hook, write_hook).run()
        assert result.completed
        return reads, writes

    decoded_reads, decoded_writes = run(
        lambda rh, wh: Interpreter(decoded, entry=program.entry, read_hook=rh, write_hook=wh)
    )
    reference_reads, reference_writes = run(
        lambda rh, wh: ReferenceInterpreter(
            program.module, entry=program.entry, read_hook=rh, write_hook=wh
        )
    )
    assert decoded_reads == reference_reads
    assert decoded_writes == reference_writes


def test_trace_collection_through_decoded_fast_path():
    """The collector's meta fast path and legacy record() agree."""
    program = registry.build_program("bfs")
    decoded = decode_module(program.module)
    fast, legacy = TraceCollector(), TraceCollector()
    Interpreter(decoded, entry=program.entry, trace_collector=fast).run()
    ReferenceInterpreter(program.module, entry=program.entry, trace_collector=legacy).run()
    assert len(fast) == len(legacy)
    assert fast.records == legacy.records


# --------------------------------------------------------------------- injections
def _experiment_results(runner: ExperimentRunner, seeds):
    results = []
    for technique in TECHNIQUES:
        for max_mbf, win_size in ((1, 0), (4, 0), (5, 3)):
            for seed in seeds:
                results.append(
                    runner.run_seeded(
                        technique, max_mbf=max_mbf, win_size=win_size, seed=seed
                    )
                )
    return results


@pytest.mark.parametrize("name", INJECTION_PROGRAMS)
def test_injection_results_bit_identical(name):
    program = registry.build_program(name)
    decoded_runner = registry.get_experiment_runner(name)
    # Golden-trace equality is proven above, so the reference runner may
    # share the decoded golden trace; this keeps the spec sampling (and the
    # test runtime) aligned while every faulty run still executes on the
    # reference backend.
    reference_runner = ExperimentRunner(
        program, golden=decoded_runner.golden, backend="reference"
    )
    seeds = [random.Random(name).getrandbits(48) for _ in range(3)]
    decoded_results = _experiment_results(decoded_runner, seeds)
    reference_results = _experiment_results(reference_runner, seeds)
    for decoded, reference in zip(decoded_results, reference_results):
        assert decoded.spec == reference.spec
        assert decoded.outcome == reference.outcome
        assert decoded.activated_errors == reference.activated_errors
        assert decoded.injections == reference.injections
        assert decoded.dynamic_instructions == reference.dynamic_instructions
        assert decoded.fault_category == reference.fault_category


# --------------------------------------------------------------------- campaign stores
def test_campaign_result_store_bytes_identical(tmp_path):
    config = CampaignConfig(
        program="crc32",
        technique="inject-on-read",
        max_mbf=3,
        win_size=win_size_by_index("w4"),
        experiments=12,
    )

    def store_bytes(provider, filename):
        store = CampaignRunner(provider).run_campaigns([config], ResultStore())
        path = tmp_path / filename
        store.save(path)
        return path.read_bytes()

    def reference_provider(name):
        return ExperimentRunner(registry.build_program(name), backend="reference")

    decoded_bytes = store_bytes(None, "decoded.json")  # default registry provider
    reference_bytes = store_bytes(reference_provider, "reference.json")
    assert decoded_bytes == reference_bytes


# --------------------------------------------------------------------- decode cache
def test_decode_module_caches_per_module():
    program = compile_program(
        "cached",
        [
            '''
def main() -> "i64":
    total = 0
    for i in range(4):
        total += i
    return total
'''
        ],
    )
    first = decode_module(program.module)
    second = decode_module(program.module)
    assert first is second
    # Two interpreters share one decoded artifact.
    assert Interpreter(program.module).run().return_value == 6
    assert decode_module(program.module) is first


def test_decode_cache_invalidated_by_mutation():
    from repro.ir import Constant, Function, I64, IRBuilder, Module

    module = Module("mutable")
    function = Function("main", I64)
    module.add_function(function)
    builder = IRBuilder(function, function.add_block("entry"))
    builder.ret(Constant(I64, 1))
    module.finalize()

    first = decode_module(module)
    assert Interpreter(module).run().return_value == 1

    # Structurally extend the module: a fresh function makes it non-finalized
    # and must force a re-decode.
    extra = Function("helper", I64)
    module.add_function(extra)
    extra_builder = IRBuilder(extra, extra.add_block("entry"))
    extra_builder.ret(Constant(I64, 2))
    assert not module.is_finalized
    second = decode_module(module)
    assert second is not first
    assert Interpreter(module).run().return_value == 1


def test_decode_cache_invalidated_by_operand_rewrite():
    """Count-preserving mutations must also force a re-decode.

    replace_operand changes no instruction/block/global counts, and an
    interleaved finalize() (any reference-interpreter construction does one)
    restores is_finalized — the decode cache must still be dropped.
    """
    from repro.ir import Constant, Function, I64, IRBuilder, Module

    module = Module("rewrite")
    function = Function("main", I64)
    module.add_function(function)
    builder = IRBuilder(function, function.add_block("entry"))
    value = builder.add(Constant(I64, 1), Constant(I64, 1))
    builder.ret(value)
    module.finalize()

    assert Interpreter(module).run().return_value == 2
    value.definer.replace_operand(1, Constant(I64, 41))
    # A reference interpreter construction re-finalizes the module in between.
    assert ReferenceInterpreter(module).run().return_value == 42
    assert Interpreter(module).run().return_value == 42


def test_experiment_runner_rejects_unknown_backend():
    from repro.errors import ConfigurationError

    program = registry.build_program("crc32")
    with pytest.raises(ConfigurationError):
        ExperimentRunner(program, backend="jit")
    with pytest.raises(ConfigurationError):
        profile_program(program, backend="jit")
