"""Tests for the analysis layer (RQ1-RQ5 and the pruning layers).

Most tests build synthetic result stores by hand so that the analysis
functions can be checked against exact expected values; a couple of small
end-to-end checks on real campaigns live in test_experiments.py.
"""

import pytest

from repro.analysis.activation import ActivationDistribution, activation_distribution
from repro.analysis.comparison import (
    fraction_of_pairs_peaking_within,
    highest_sdc_configurations,
    max_mbf_needed_for_peak_sdc,
    sdc_percentage_by_cluster,
    single_bit_is_pessimistic,
    single_bit_pessimistic_fraction,
    win_size_sensitivity,
)
from repro.analysis.pruning import (
    pessimistic_cluster_bound,
    prunable_first_location_fraction,
    pruning_summary,
    recommended_max_mbf_bound,
    single_bit_sufficient_programs,
)
from repro.analysis.reporting import format_figure1, format_table, format_table3
from repro.analysis.statistics import (
    sdc_difference_is_significant,
    sdc_difference_percentage_points,
    summarize_sdc,
)
from repro.analysis.transitions import TRANSITIONS
from repro.campaign.config import CampaignConfig
from repro.campaign.results import CampaignResult, ResultStore
from repro.errors import AnalysisError
from repro.injection.faultmodel import win_size_by_index
from repro.injection.outcome import Outcome, OutcomeCounts


def make_result(
    program,
    technique,
    max_mbf,
    win_index,
    *,
    sdc,
    benign,
    detected,
    hang=0,
    no_output=0,
    activated=None,
    resolved_win_size=None,
):
    """Hand-build a campaign result with the given outcome counts."""
    experiments = sdc + benign + detected + hang + no_output
    config = CampaignConfig(
        program=program,
        technique=technique,
        max_mbf=max_mbf,
        win_size=win_size_by_index(win_index),
        experiments=experiments,
    )
    spec = win_size_by_index(win_index)
    if resolved_win_size is None:
        resolved_win_size = spec.value if spec.value is not None else spec.low
    counts = OutcomeCounts(
        {
            Outcome.SDC: sdc,
            Outcome.BENIGN: benign,
            Outcome.DETECTED_HW_EXCEPTION: detected,
            Outcome.HANG: hang,
            Outcome.NO_OUTPUT: no_output,
        }
    )
    histogram = activated or {min(max_mbf, 2): experiments}
    return CampaignResult(
        config=config,
        resolved_win_size=resolved_win_size,
        outcome_counts=counts,
        activated_histogram=dict(histogram),
    )


@pytest.fixture
def synthetic_store():
    """Two programs, one technique each direction, with known relationships.

    * ``alpha``: single-bit SDC 30%; multi-bit campaigns never exceed it
      (single-bit pessimistic).
    * ``beta``: single-bit SDC 10%; the (3, w2) campaign reaches 25%
      (single-bit NOT pessimistic; peak at max-MBF 3, small window).
    """
    store = ResultStore()
    technique = "inject-on-write"
    store.add(make_result("alpha", technique, 1, "w1", sdc=30, benign=50, detected=20))
    store.add(make_result("alpha", technique, 2, "w2", sdc=25, benign=50, detected=25))
    store.add(make_result("alpha", technique, 3, "w2", sdc=20, benign=50, detected=30))
    store.add(make_result("alpha", technique, 2, "w9", sdc=22, benign=50, detected=28))
    store.add(make_result("alpha", technique, 3, "w9", sdc=18, benign=52, detected=30))

    store.add(make_result("beta", technique, 1, "w1", sdc=10, benign=70, detected=20))
    store.add(make_result("beta", technique, 2, "w2", sdc=18, benign=62, detected=20))
    store.add(make_result("beta", technique, 3, "w2", sdc=25, benign=55, detected=20))
    store.add(make_result("beta", technique, 2, "w9", sdc=12, benign=68, detected=20))
    store.add(make_result("beta", technique, 3, "w9", sdc=14, benign=66, detected=20))

    # Activation histograms for RQ1 (max-MBF=30 campaigns, both programs).
    store.add(
        make_result(
            "alpha",
            technique,
            30,
            "w2",
            sdc=10,
            benign=40,
            detected=50,
            activated={1: 40, 3: 30, 7: 20, 12: 10},
        )
    )
    store.add(
        make_result(
            "beta",
            technique,
            30,
            "w2",
            sdc=10,
            benign=60,
            detected=30,
            activated={2: 70, 5: 20, 11: 10},
        )
    )
    return store


class TestComparison:
    def test_sdc_series(self, synthetic_store):
        series = sdc_percentage_by_cluster(
            synthetic_store, "alpha", "inject-on-write", same_register=False
        )
        assert series[(1, "single")] == pytest.approx(30.0)
        assert series[(2, "1")] == pytest.approx(25.0)
        assert series[(3, "1000")] == pytest.approx(18.0)

    def test_single_bit_pessimistic_flags(self, synthetic_store):
        assert single_bit_is_pessimistic(synthetic_store, "alpha", "inject-on-write")
        assert not single_bit_is_pessimistic(synthetic_store, "beta", "inject-on-write")

    def test_pessimistic_fraction(self, synthetic_store):
        # alpha: all 5 multi-bit campaigns covered; beta: the 30-mbf campaign
        # (10%) and w9 campaigns are covered (12%/14% > 11% tolerance?  12 > 10+1
        # -> not covered; 14 -> not covered), 18 and 25 not covered.
        fraction = single_bit_pessimistic_fraction(synthetic_store)
        covered = 5 + 1  # alpha's five multi-bit + beta's max-MBF=30 campaign
        total = 10
        assert fraction == pytest.approx(covered / total)

    def test_highest_sdc_configurations(self, synthetic_store):
        rows = highest_sdc_configurations(
            synthetic_store, techniques=("inject-on-write",), same_register=False
        )
        by_program = {row.program: row for row in rows}
        assert by_program["beta"].max_mbf == 3
        assert by_program["beta"].win_size_label == "1"
        assert by_program["beta"].exceeds_single_bit
        assert by_program["alpha"].sdc_percentage == pytest.approx(25.0)
        assert not by_program["alpha"].exceeds_single_bit

    def test_max_mbf_needed_for_peak(self, synthetic_store):
        peaks = max_mbf_needed_for_peak_sdc(synthetic_store, "inject-on-write")
        assert peaks[("beta", "1")] == 3
        assert peaks[("alpha", "1")] == 2
        fraction = fraction_of_pairs_peaking_within(synthetic_store, "inject-on-write", 3)
        assert fraction == pytest.approx(1.0)

    def test_win_size_sensitivity(self, synthetic_store):
        spread = win_size_sensitivity(synthetic_store, "beta", "inject-on-write", max_mbf=3)
        assert spread == pytest.approx(25.0 - 14.0)

    def test_missing_data_raises(self, synthetic_store):
        with pytest.raises(AnalysisError):
            sdc_percentage_by_cluster(synthetic_store, "gamma", "inject-on-write")
        with pytest.raises(AnalysisError):
            win_size_sensitivity(synthetic_store, "alpha", "inject-on-read")


class TestActivation:
    def test_distribution_aggregates_programs(self, synthetic_store):
        distribution = activation_distribution(synthetic_store, "inject-on-write", max_mbf=30)
        assert distribution.total_experiments == 200
        assert distribution.histogram[1] == 40
        assert distribution.histogram[2] == 70

    def test_fraction_helpers(self, synthetic_store):
        distribution = activation_distribution(synthetic_store, "inject-on-write", max_mbf=30)
        assert distribution.fraction_at_most(5) == pytest.approx((40 + 30 + 70 + 20) / 200)
        assert distribution.fraction_in_range(6, 10) == pytest.approx(20 / 200)
        buckets = distribution.bucket_percentages()
        assert set(buckets) == {"1-5", "6-10", ">10"}
        assert sum(buckets.values()) == pytest.approx(100.0)

    def test_smallest_bound_covering(self, synthetic_store):
        distribution = activation_distribution(synthetic_store, "inject-on-write", max_mbf=30)
        assert distribution.smallest_bound_covering(0.8) == 5
        assert distribution.smallest_bound_covering(1.0) == 12

    def test_requires_matching_campaigns(self, synthetic_store):
        with pytest.raises(AnalysisError):
            activation_distribution(synthetic_store, "inject-on-read", max_mbf=30)
        empty = ActivationDistribution("inject-on-read")
        with pytest.raises(AnalysisError):
            empty.smallest_bound_covering(0.9)


class TestPruning:
    def test_layer1_bound(self, synthetic_store):
        assert recommended_max_mbf_bound(synthetic_store, "inject-on-write", coverage=0.8) == 5
        assert recommended_max_mbf_bound(synthetic_store, "inject-on-write", coverage=1.0) == 12

    def test_layer2_single_bit_sufficient(self, synthetic_store):
        sufficient = single_bit_sufficient_programs(synthetic_store, "inject-on-write")
        assert sufficient == ["alpha"]

    def test_layer2_cluster_bound(self, synthetic_store):
        assert pessimistic_cluster_bound(synthetic_store, "inject-on-write", quantile=1.0) == 3

    def test_layer3_prunable_fraction(self, synthetic_store):
        fraction = prunable_first_location_fraction(synthetic_store, "alpha", "inject-on-write")
        assert fraction == pytest.approx(0.5)  # 30 SDC + 20 detected out of 100

    def test_summary(self, synthetic_store):
        summary = pruning_summary(synthetic_store, "inject-on-write")
        assert summary.technique == "inject-on-write"
        assert summary.recommended_max_mbf >= 5
        assert summary.single_bit_sufficient == ("alpha",)
        low, high = summary.prunable_location_range
        assert 0.0 < low <= high <= 1.0


class TestStatisticsFacade:
    def test_summarize_sdc(self, synthetic_store):
        result = synthetic_store.single_bit("alpha", "inject-on-write")
        summary = summarize_sdc(result)
        assert summary["sdc_percentage"] == pytest.approx(30.0)
        assert summary["experiments"] == 100
        assert summary["ci_half_width"] > 0

    def test_difference_helpers(self, synthetic_store):
        single_alpha = synthetic_store.single_bit("alpha", "inject-on-write")
        single_beta = synthetic_store.single_bit("beta", "inject-on-write")
        assert sdc_difference_percentage_points(single_alpha, single_beta) == pytest.approx(20.0)
        assert sdc_difference_is_significant(single_alpha, single_beta)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "2.50" in text

    def test_figure1_and_table3_render(self, synthetic_store):
        text = format_figure1(synthetic_store, "inject-on-write")
        assert "alpha" in text and "SDC%" in text
        table3 = format_table3(synthetic_store, techniques=("inject-on-write",))
        assert "beta" in table3 and "max-MBF" in table3


class TestTransitionsModel:
    def test_transition_labels(self):
        names = {t.name for t in TRANSITIONS}
        assert any("Transition I" in name for name in names)
        assert any("Transition II" in name for name in names)
        decreasing = [t for t in TRANSITIONS if t.decreases_resilience]
        assert len(decreasing) == 2
        assert all(t.target is Outcome.SDC for t in decreasing)
