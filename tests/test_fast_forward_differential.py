"""Differential suite: fast-forwarded execution is bit-identical to scratch.

Fast-forward (checkpoint/restore of the shared golden prefix) claims to be a
pure performance optimisation: every observable of an experiment — the fault
spec, the outcome, the activated-error records, the dynamic instruction
count — must match from-scratch execution exactly.  These tests enforce the
claim at every level:

* per-experiment :class:`~repro.injection.experiment.ExperimentResult`
  equality across **every** registry program, with injection times spread
  from the first to the last golden tick;
* campaign :class:`~repro.campaign.results.ResultStore` files, byte for
  byte, with fast-forward on vs. off — and serial vs. multiprocess with the
  tick-sorted chunk execution, proving the engine's execution reordering
  never leaks into results.
"""

import random

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    MultiprocessEngine,
    RegistryProvider,
    ResultStore,
    SerialEngine,
)
from repro.injection import ExperimentRunner, TECHNIQUES
from repro.injection.faultmodel import FaultSpec, win_size_by_index
from repro.programs import registry

ALL_PROGRAMS = registry.all_program_names()


def _spread_specs(runner: ExperimentRunner, per_technique: int = 3):
    """Specs with first-injection times spread across the whole golden run."""
    golden_length = runner.golden.dynamic_instruction_count
    specs = []
    for technique in TECHNIQUES:
        rng = random.Random(f"{runner.program.module.name}/{technique.name}")
        for position in range(per_technique):
            spec = runner.seeded_spec(
                technique,
                max_mbf=(1, 4, 8)[position % 3],
                win_size=(0, 3, 100)[position % 3],
                seed=rng.getrandbits(48),
            )
            specs.append(spec)
    # Pin the boundaries explicitly: injection at the very first and the very
    # last eligible tick (the deepest fast-forward).
    for records in (
        runner.golden.records_with_destination()[:1],
        runner.golden.records_with_destination()[-1:],
    ):
        for record in records:
            specs.append(
                FaultSpec(
                    technique="inject-on-write",
                    first_dynamic_index=record.dynamic_index,
                    first_slot=None,
                    max_mbf=2,
                    win_size=1,
                    seed=golden_length,
                )
            )
    return specs


def _result_tuple(result):
    return (
        result.spec,
        result.outcome,
        result.activated_errors,
        tuple(result.injections),
        result.dynamic_instructions,
        result.fault_category,
    )


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_fast_forward_bit_identical(name):
    runner = registry.get_experiment_runner(name)
    assert runner.fast_forward, "registry runners fast-forward by default"
    specs = _spread_specs(runner)
    fast = [_result_tuple(runner.run_spec(spec, fast_forward=True)) for spec in specs]
    scratch = [
        _result_tuple(runner.run_spec(spec, fast_forward=False)) for spec in specs
    ]
    assert fast == scratch


def test_fast_forward_actually_restores():
    """The hot path really does resume from a checkpoint (not a silent fallback)."""
    runner = registry.get_experiment_runner("crc32")
    store = runner._checkpoint_store()
    assert store is not None and len(store) > 0
    late_tick = runner.golden.records_with_destination()[-1].dynamic_index
    assert store.latest_at(late_tick) is not None
    assert runner.golden.checkpoint_ticks == tuple(store.ticks)
    assert runner.golden.latest_checkpoint_at(late_tick) == store.latest_at(late_tick).tick


def test_runner_escape_hatch_disables_checkpoint_capture():
    program = registry.build_program("crc32")
    runner = ExperimentRunner(program, fast_forward=False)
    assert not runner.fast_forward
    assert runner._checkpoints is None
    spec = runner.seeded_spec(TECHNIQUES[0], seed=7)
    baseline = registry.get_experiment_runner("crc32")
    assert _result_tuple(runner.run_spec(spec)) == _result_tuple(baseline.run_spec(spec))


# --------------------------------------------------------------------- store bytes
def _campaign_configs(experiments=16):
    return [
        CampaignConfig(
            program="crc32",
            technique="inject-on-read",
            max_mbf=3,
            win_size=win_size_by_index("w4"),
            experiments=experiments,
        ),
        CampaignConfig(
            program="dijkstra",
            technique="inject-on-write",
            max_mbf=5,
            win_size=win_size_by_index("w2"),
            experiments=experiments,
        ),
    ]


def _store_bytes(tmp_path, filename, provider, engine=None):
    runner = CampaignRunner(provider, engine=engine) if engine else CampaignRunner(provider)
    store = runner.run_campaigns(_campaign_configs(), ResultStore())
    path = tmp_path / filename
    store.save(path)
    return path.read_bytes()


def test_store_bytes_identical_fast_forward_vs_scratch(tmp_path):
    fast = _store_bytes(tmp_path, "fast.json", RegistryProvider(fast_forward=True))
    scratch = _store_bytes(
        tmp_path, "scratch.json", RegistryProvider(fast_forward=False)
    )
    assert fast == scratch


def test_store_bytes_identical_serial_vs_multiprocess_sorted_chunks(tmp_path):
    """Tick-sorted chunk execution merges back to submission order exactly."""
    serial = _store_bytes(
        tmp_path, "serial.json", RegistryProvider(), engine=SerialEngine()
    )
    parallel = _store_bytes(
        tmp_path,
        "parallel.json",
        RegistryProvider(),
        engine=MultiprocessEngine(2, chunk_size=5),
    )
    assert serial == parallel


def test_store_bytes_identical_with_explicit_checkpoint_interval(tmp_path):
    default = _store_bytes(tmp_path, "default.json", RegistryProvider())
    pinned = _store_bytes(
        tmp_path, "pinned.json", RegistryProvider(checkpoint_interval=97)
    )
    assert default == pinned
