"""Tests for the telemetry subsystem: registry, spans, event log, report."""

import json
import time

import pytest

from repro.campaign import CampaignConfig, ResultStore, SerialEngine
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.injection.faultmodel import win_size_by_index
from repro.telemetry import metrics as tm
from repro.telemetry import spans as spans_module
from repro.telemetry.console import NORMAL, QUIET, ConsoleReporter
from repro.telemetry.events import (
    SCAN_CORRUPT,
    SCAN_OK,
    SCAN_TORN,
    RunLog,
    find_run_log,
    latest_run_log,
    read_events,
    scan_jsonl,
)
from repro.telemetry.report import build_report, render_report
from repro.telemetry.spans import PhaseClock, Tracer


TINY_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(12):
        scratch[i % 4] = i * 7
        total += scratch[i % 4]
    output(total)
    return total
'''


@pytest.fixture(scope="module")
def tiny_runner():
    program = compile_program("tiny", [TINY_PROGRAM], {"scratch": ("i32", [0, 0, 0, 0])})
    return ExperimentRunner(program)


@pytest.fixture(scope="module")
def tiny_provider(tiny_runner):
    def provider(name):
        assert name == "tiny"
        return tiny_runner

    return provider


def tiny_config(**overrides):
    defaults = dict(
        program="tiny",
        technique="inject-on-write",
        max_mbf=3,
        win_size=win_size_by_index("w4"),
        experiments=24,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


# --------------------------------------------------------------------- registry


def _populate(registry, counter_value, gauge_value, observations):
    registry.counter("repro_test_total", {"kind": "a"}).value += counter_value
    registry.counter("repro_test_total", {"kind": "b"}).value += 1
    registry.gauge("repro_test_gauge").set(gauge_value)
    hist = registry.histogram("repro_test_seconds", (0.1, 1.0, 10.0))
    for value in observations:
        hist.observe(value)


class TestMetricsRegistry:
    def test_counter_and_gauge_identity(self):
        registry = tm.MetricsRegistry()
        first = registry.counter("c_total", {"x": "1"})
        second = registry.counter("c_total", {"x": "1"})
        assert first is second  # bind once, bump an attribute forever
        assert registry.counter("c_total", {"x": "2"}) is not first
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_roundtrips_through_merge(self):
        registry = tm.MetricsRegistry()
        _populate(registry, 5, 3.0, [0.05, 0.5, 5.0, 50.0])
        clone = tm.snapshot_from(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_merge_is_commutative_and_associative(self):
        """Worker deltas can arrive in any order and any grouping."""
        snapshots = []
        for counter_value, gauge_value, observations in (
            # Power-of-two observations: exact float sums, so snapshot
            # equality is order-independent bit-for-bit.
            (1, 7.0, [0.0625]),
            (10, 2.0, [0.5, 2.0]),
            (100, 5.0, [16.0]),
        ):
            registry = tm.MetricsRegistry()
            _populate(registry, counter_value, gauge_value, observations)
            snapshots.append(registry.snapshot())

        def fold(order):
            registry = tm.MetricsRegistry()
            for snapshot in order:
                registry.merge(snapshot)
            return registry.snapshot()

        a, b, c = snapshots
        reference = fold([a, b, c])
        assert fold([c, b, a]) == reference
        assert fold([b, a, c]) == reference
        # Associativity: pre-merge (a+b) into one snapshot, then add c.
        ab = tm.MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        grouped = tm.MetricsRegistry()
        grouped.merge(ab.snapshot())
        grouped.merge(c)
        assert grouped.snapshot() == reference
        # Counters summed, gauges kept at max.
        assert reference["counters"]['repro_test_total{kind="a"}'] == 111
        assert reference["gauges"]["repro_test_gauge"] == 7.0

    def test_snapshot_delta_reports_only_changes(self):
        registry = tm.MetricsRegistry()
        _populate(registry, 5, 1.0, [0.5])
        before = registry.snapshot()
        registry.counter("repro_test_total", {"kind": "a"}).value += 2
        delta = registry.snapshot_delta(before)
        assert delta["counters"] == {'repro_test_total{kind="a"}': 2}
        assert delta["histograms"] == {}

    def test_labeled_totals(self):
        registry = tm.MetricsRegistry()
        registry.counter("repro_derivations_total", {"kind": "golden"}).value += 2
        registry.counter("repro_derivations_total", {"kind": "codegen"}).value += 1
        registry.counter("repro_other_total").value += 9
        totals = tm.labeled_totals(
            registry.snapshot(), "repro_derivations_total", "kind"
        )
        assert totals == {"golden": 2, "codegen": 1}

    def test_prometheus_text_format(self):
        registry = tm.MetricsRegistry()
        registry.counter("c_total", {"kind": "x"}, help="a counter").value += 3
        registry.histogram("h_seconds", (1.0,)).observe(0.5)
        text = registry.to_prometheus_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text


# ------------------------------------------------------------------ span clocks


class TestPhaseClock:
    def test_laps_are_contiguous_and_gap_free(self, monkeypatch):
        """Phase totals sum exactly to the covered wall clock — the
        double-counting failure mode of paired ``perf_counter()`` reads is
        structurally impossible with a single shared cursor."""
        wall_ticks = iter([10.0, 11.0, 13.0, 16.0])
        cpu_ticks = iter([0.0, 0.5, 1.5, 2.0])
        monkeypatch.setattr(spans_module, "perf_counter", lambda: next(wall_ticks))
        monkeypatch.setattr(spans_module, "process_time", lambda: next(cpu_ticks))
        clock = PhaseClock(("a", "b"))
        clock.start()
        assert clock.lap("a") == 1.0
        assert clock.lap("b") == 2.0
        assert clock.lap("a") == 3.0
        assert clock.wall == {"a": 4.0, "b": 2.0}
        assert clock.cpu == {"a": 1.0, "b": 1.0}
        assert clock.total_wall() == 6.0  # == 16.0 - 10.0, exactly

    def test_totals_persist_across_starts(self):
        clock = PhaseClock(("a",))
        clock.start()
        clock.lap("a")
        first = clock.wall["a"]
        clock.start()
        clock.lap("a")
        assert clock.wall["a"] >= first

    def test_enabled_clock_publishes_to_registry(self):
        previous = tm.set_enabled(True)
        before = tm.registry().snapshot()
        try:
            clock = PhaseClock(("window",))
            clock.start()
            clock.lap("window")
        finally:
            tm.set_enabled(previous)
        delta = tm.registry().snapshot_delta(before)
        published = tm.labeled_totals(delta, "repro_phase_seconds_total", "phase")
        assert published.get("window", 0.0) == clock.wall["window"]


class TestTracer:
    def test_nested_spans_accumulate_under_paths(self):
        tracer = Tracer(publish=False)
        with tracer.span("campaign"):
            with tracer.span("chunk"):
                pass
            with tracer.span("chunk"):
                pass
        assert tracer.totals["campaign/chunk"][2] == 2
        assert tracer.totals["campaign"][2] == 1
        assert tracer.wall_seconds("campaign") >= tracer.wall_seconds("campaign/chunk")


# ------------------------------------------------------------------- event log


class TestRunLog:
    def test_fresh_log_emits_header_and_monotonic_seq(self, tmp_path):
        with RunLog.open(tmp_path, "abc123", meta={"program": "tiny"}) as log:
            log.emit("run_started", kind="campaign", total=4)
            log.emit("run_finished", status="finished", sync=True)
        events, status = read_events(tmp_path / "abc123.jsonl")
        assert status == SCAN_OK
        assert [e["type"] for e in events] == ["run_log", "run_started", "run_finished"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["run"] == "abc123" for e in events)
        assert events[0]["meta"] == {"program": "tiny"}

    def test_resume_continues_the_sequence(self, tmp_path):
        with RunLog.open(tmp_path, "abc123") as log:
            log.emit("run_started")
        with RunLog.open(tmp_path, "abc123", resume=True) as log:
            log.emit("run_started")  # resumed session, same stream
        events, status = read_events(tmp_path / "abc123.jsonl")
        assert status == SCAN_OK
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert [e["type"] for e in events].count("run_started") == 2

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "abc123.jsonl"
        with RunLog.open(tmp_path, "abc123") as log:
            log.emit("run_started")
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "ts": 1.0, "ru')  # killed mid-append
        events, status = read_events(path)
        assert status == SCAN_TORN
        assert [e["seq"] for e in events] == [0, 1]
        # A resume after the crash continues after the last *intact* event.
        with RunLog.open(tmp_path, "abc123", resume=True) as log:
            log.emit("run_started")
        events, status = read_events(path)
        assert events[-1]["seq"] == 2

    def test_ledger_resume_after_torn_tail_stays_loadable(self, tmp_path):
        """Appending after a torn ledger tail used to fuse the new record
        onto the partial line, turning the tolerated torn scan into a fatal
        corrupt one on every later load."""
        from repro.campaign.ledger import ChunkLedger

        ledger = ChunkLedger.open(tmp_path, "k1", total=8, resume=False)
        ledger.record_done(0, 4, {"payload": True})
        ledger.close()
        path = ledger.path
        with open(path, "a") as handle:
            handle.write('{"type": "done", "chu')  # killed mid-append
        resumed = ChunkLedger.open(tmp_path, "k1", total=8, resume=True)
        assert set(resumed.completed) == {0}
        resumed.record_done(4, 4, {"payload": True})
        resumed.close()
        reloaded = ChunkLedger.open(tmp_path, "k1", total=8, resume=True)
        assert set(reloaded.completed) == {0, 4}
        reloaded.close()

    def test_mid_file_corruption_is_reported(self):
        lines = ['{"seq": 0}', "garbage", '{"seq": 2}']
        records, status = scan_jsonl(lines)
        assert status == SCAN_CORRUPT
        assert [r["seq"] for r in records] == [0]

    def test_latest_and_find(self, tmp_path):
        with RunLog.open(tmp_path, "aaa111"):
            pass
        time.sleep(0.01)
        with RunLog.open(tmp_path, "bbb222"):
            pass
        assert latest_run_log(tmp_path).name == "bbb222.jsonl"
        assert find_run_log(tmp_path, "aaa").name == "aaa111.jsonl"
        assert find_run_log(tmp_path, "zzz") is None


# --------------------------------------------------------------------- report


def _synthetic_events():
    key = "feedc0defeedc0de"

    def event(seq, ts, event_type, **fields):
        record = {"seq": seq, "ts": ts, "run": key, "type": event_type}
        record.update(fields)
        return record

    return [
        event(0, 100.0, "run_log", version=1, meta={"program": "crc32"}),
        event(1, 100.0, "run_started", kind="campaign", total=50, engine="serial"),
        event(2, 100.5, "chunk_dispatched", chunk=0, count=25),
        event(3, 101.0, "chunk_completed", chunk=0, count=25, done=25),
        event(4, 102.0, "chunk_retried", chunk=25),
        event(5, 103.0, "chunk_completed", chunk=25, count=25, done=50),
        event(
            6,
            104.0,
            "run_finished",
            status="finished",
            done=50,
            seconds=4.0,
            phase_seconds={"restore": 1.0, "window": 3.0},
            phase_cpu_seconds={"restore": 0.5, "window": 2.5},
            cache={
                "hits": {"golden": 1},
                "misses": {"golden": 0},
                "derivations": {"golden": 1},
            },
            supervision={"retries": 1},
        ),
    ]


class TestReport:
    def test_report_golden_output(self):
        report = build_report(_synthetic_events(), SCAN_OK)
        expected = "\n".join(
            [
                "run feedc0defeedc0de (campaign) — crc32 — finished",
                "  events       7 recorded (clean)",
                "  progress     50/50 experiments in 4.00s — 12.5/s",
                "  phases       restore 1.00s (25.0%) · window 3.00s (75.0%)",
                "  phases(cpu)  restore 0.50s · window 2.50s",
                "  timeline     t+0s 17/s · t+2s 17/s",
                "  supervision  bisections=0 quarantined_units=0 retries=1 "
                "timeouts=0 worker_restarts=0",
                "  cache        golden: 1 hits/0 misses · derivations golden=1",
            ]
        )
        assert render_report(report) == expected

    def test_in_flight_run_reports_partial_progress(self):
        events = _synthetic_events()[:4]  # no run_finished yet
        report = build_report(events, SCAN_TORN)
        assert report["state"] == "in-flight"
        assert report["done"] == 25  # summed from chunk completions
        rendered = render_report(report)
        assert "torn tail tolerated" in rendered
        assert "25/50 experiments" in rendered

    def test_resumed_stream_keeps_the_original_origin(self):
        """Two run_started events (original + resume) must not shift the
        timeline origin, or the first session's completions land at negative
        offsets."""
        events = _synthetic_events()[:4]
        events.append(
            {"seq": 4, "ts": 150.0, "run": "feedc0defeedc0de", "type": "run_started",
             "kind": "campaign", "total": 50}
        )
        events.append(
            {"seq": 5, "ts": 151.0, "run": "feedc0defeedc0de",
             "type": "chunk_completed", "chunk": 25, "count": 25, "done": 50}
        )
        report = build_report(events, SCAN_OK)
        assert all(bucket["t"] >= 0 for bucket in report["timeline"])
        assert sum(bucket["units"] for bucket in report["timeline"]) == 50


# ------------------------------------------------------------ console reporter


class TestConsoleReporter:
    def test_verbosity_routing(self, capsys):
        import io

        out, err = io.StringIO(), io.StringIO()
        reporter = ConsoleReporter(NORMAL, out=out, err=err, color=False)
        reporter.result("result line")
        reporter.note("note line")
        reporter.detail("detail line")
        reporter.warn("warn line")
        assert out.getvalue() == "result line\n"  # detail needs verbose
        assert err.getvalue() == "note line\nwarn line\n"

    def test_quiet_keeps_results_and_warnings_only(self):
        import io

        out, err = io.StringIO(), io.StringIO()
        reporter = ConsoleReporter(QUIET, out=out, err=err, color=False)
        reporter.result("result line")
        reporter.note("note line")
        reporter.detail("detail line")
        reporter.warn("warn line")
        assert out.getvalue() == "result line\n"  # CI greps survive --quiet
        assert err.getvalue() == "warn line\n"

    def test_from_flags(self):
        assert ConsoleReporter.from_flags(quiet=True, verbose=False).verbosity == 0
        assert ConsoleReporter.from_flags(quiet=False, verbose=False).verbosity == 1
        assert ConsoleReporter.from_flags(quiet=False, verbose=True).verbosity == 2

    def test_no_color_env_disables_styling(self, monkeypatch):
        import io

        monkeypatch.setenv("NO_COLOR", "1")
        reporter = ConsoleReporter(NORMAL, out=io.StringIO(), err=io.StringIO())
        assert reporter.bold("x") == "x"


# ------------------------------------------------------- engine integration


class TestEngineTelemetry:
    def test_serial_run_writes_a_renderable_event_log(
        self, tiny_provider, tmp_path
    ):
        engine = SerialEngine(
            ledger_dir=str(tmp_path / "ledger"),
            runlog_dir=str(tmp_path / "runlog"),
        )
        engine.run(tiny_config(), provider=tiny_provider)
        log_path = latest_run_log(tmp_path / "runlog")
        assert log_path is not None
        events, status = read_events(log_path)
        assert status == SCAN_OK
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run_log"
        assert "run_started" in kinds and kinds[-1] == "run_finished"
        assert [e["seq"] for e in events] == list(range(len(events)))
        finished = events[-1]
        assert finished["status"] == "finished"
        assert finished["done"] == 24
        assert finished["phase_seconds"]  # span-derived, non-empty
        assert finished["metrics"]["counters"]  # embedded snapshot delta
        rendered = render_report(build_report(events, status))
        assert "24/24 experiments" in rendered
        assert "phases" in rendered

    def test_phase_seconds_sum_does_not_exceed_wall_clock(self, tiny_provider):
        """Regression for the segment-boundary double counting the paired
        ``perf_counter()`` reads were prone to: per-phase totals are laps of
        one shared cursor, so their sum is bounded by the covered wall
        clock (inflated sums, not deflated ones, were the bug)."""
        started = time.perf_counter()
        result = SerialEngine().run(
            tiny_config(experiments=64), provider=tiny_provider
        )
        elapsed = time.perf_counter() - started
        covered = sum(result.phase_seconds.values())
        assert covered > 0
        assert covered <= elapsed * 1.02 + 0.005

    def test_result_store_bytes_identical_with_telemetry_toggled(
        self, tiny_provider, tmp_path
    ):
        """Instrumentation must never leak into scientific outputs."""
        from repro.vm import interpreter as interpreter_module

        previous = tm.enabled()
        payloads = {}
        try:
            for flag in (True, False):
                tm.set_enabled(flag)
                interpreter_module.refresh_vm_counters()
                result = SerialEngine().run(tiny_config(), provider=tiny_provider)
                store = ResultStore()
                store.add(result)
                path = tmp_path / f"store_{flag}.json"
                store.save(path)
                payloads[flag] = path.read_bytes()
        finally:
            tm.set_enabled(previous)
            interpreter_module.refresh_vm_counters()
        assert payloads[True] == payloads[False]

    def test_derivation_counter_and_log_shim(self, tmp_path, monkeypatch):
        log = tmp_path / "derivations.log"
        monkeypatch.setenv("REPRO_DERIVATION_LOG", str(log))
        before = tm.registry().snapshot()
        tm.note_derivation("golden", "golden:tiny")
        delta = tm.registry().snapshot_delta(before)
        totals = tm.labeled_totals(delta, "repro_derivations_total", "kind")
        assert totals == {"golden": 1}
        assert log.read_text().endswith("golden:tiny\n")
