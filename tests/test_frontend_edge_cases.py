"""Edge-case tests for the frontend language features the benchmarks rely on."""

import pytest

from repro.errors import CompilationError
from repro.frontend import compile_program
from repro.vm import Interpreter


def run(source, globals_=None, args=()):
    program = compile_program("edge", [source] if isinstance(source, str) else source, globals_)
    return Interpreter(program.module).run(list(args))


class TestStatements:
    def test_annotated_declaration(self):
        source = '''
def main() -> "i64":
    counter: "i32" = 250
    counter = counter + 10
    return counter
'''
        assert run(source).return_value == 260

    def test_augmented_assignment_on_subscript(self):
        source = '''
def main() -> "i64":
    buf = array("i32", 3)
    buf[1] = 5
    buf[1] += 7
    buf[1] *= 2
    return buf[1]
'''
        assert run(source).return_value == 24

    def test_docstring_and_pass_are_ignored(self):
        source = '''
def main() -> "i64":
    """This docstring must not generate code."""
    pass
    return 11
'''
        assert run(source).return_value == 11

    def test_while_with_break(self):
        source = '''
def main() -> "i64":
    i = 0
    while 1:
        i += 1
        if i == 9:
            break
    return i
'''
        assert run(source).return_value == 9

    def test_chained_assignment_rejected(self):
        with pytest.raises(CompilationError, match="chained assignment"):
            compile_program("bad", ['''
def main() -> "i64":
    a = b = 1
    return a
'''])

    def test_tuple_unpacking_rejected(self):
        with pytest.raises(CompilationError):
            compile_program("bad", ['''
def main() -> "i64":
    a, b = 1, 2
    return a
'''])

    def test_assignment_to_global_rejected(self):
        with pytest.raises(CompilationError, match="global array"):
            compile_program(
                "bad",
                ['''
def main() -> "i64":
    table = 1
    return table
'''],
                {"table": ("i32", [1, 2, 3])},
            )

    def test_while_else_rejected(self):
        with pytest.raises(CompilationError, match="while/else"):
            compile_program("bad", ['''
def main() -> "i64":
    while 0:
        pass
    else:
        pass
    return 0
'''])


class TestExpressions:
    def test_three_way_boolean_or(self):
        source = '''
def check(x: "i64") -> "i64":
    if x == 1 or x == 5 or x == 9:
        return 1
    return 0

def main() -> "i64":
    return check(1) * 100 + check(5) * 10 + check(7)
'''
        assert run(source).return_value == 110

    def test_unary_invert_and_negative_literals(self):
        source = '''
def main() -> "i64":
    a = ~5
    b = -12
    return a + b
'''
        assert run(source).return_value == (~5) + (-12)

    def test_pow_operator_uses_float_semantics(self):
        source = '''
def main() -> "f64":
    return 2 ** 10 + 0.0
'''
        assert run(source).return_value == pytest.approx(1024.0)

    def test_conversion_builtins(self):
        source = '''
def main() -> "i64":
    a = int(3.7)
    b = float(5)
    c = 1 if bool(7) else 0
    return a * 100 + int(b) * 10 + c
'''
        assert run(source).return_value == 351

    def test_pointer_arithmetic(self):
        source = '''
def second_half_sum(data: "i32*", n: "i64") -> "i64":
    half = data + n // 2
    total = 0
    for i in range(n // 2):
        total += half[i]
    return total

def main() -> "i64":
    buf = array("i32", 8)
    for i in range(8):
        buf[i] = i
    return second_half_sum(buf, 8)
'''
        assert run(source).return_value == 4 + 5 + 6 + 7

    def test_mixed_int_float_comparison(self):
        source = '''
def main() -> "i64":
    x = 2.5
    if x > 2:
        return 1
    return 0
'''
        assert run(source).return_value == 1

    def test_division_is_float_and_floordiv_is_int(self):
        source = '''
def main() -> "f64":
    a = 7 / 2
    b = 7 // 2
    return a + b
'''
        assert run(source).return_value == pytest.approx(3.5 + 3)

    def test_call_result_feeds_condition(self):
        source = '''
def is_even(x: "i64") -> "i64":
    return 1 if x % 2 == 0 else 0

def main() -> "i64":
    count = 0
    for i in range(10):
        if is_even(i):
            count += 1
    return count
'''
        assert run(source).return_value == 5

    def test_keyword_arguments_rejected(self):
        with pytest.raises(CompilationError, match="keyword"):
            compile_program("bad", ['''
def main() -> "i64":
    return min(a=1, b=2)
'''])

    def test_float_modulo_rejected(self):
        with pytest.raises(CompilationError, match="not supported on floats"):
            compile_program("bad", ['''
def main() -> "f64":
    return 5.5 % 2.0
'''])
