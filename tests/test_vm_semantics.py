"""Additional VM semantics tests: casts, selects, intrinsics, limits, hooks."""

import math

import pytest

from repro.errors import ExecutionSetupError
from repro.frontend import compile_program
from repro.ir import BOOL, Constant, F32, F64, Function, I16, I32, I64, I8, IRBuilder, Module, VOID
from repro.ir.types import PointerType
from repro.vm import ExecutionLimits, Interpreter
from repro.vm.interpreter import _MATH_INTRINSICS


def run_expression(build_body, return_type=I64, args=(), arg_types=()):
    module = Module("expr")
    function = Function("main", return_type, list(arg_types))
    module.add_function(function)
    builder = IRBuilder(function, function.add_block("entry"))
    value = build_body(builder, function)
    builder.ret(value)
    module.finalize()
    return Interpreter(module).run(list(args))


class TestCasts:
    def test_trunc_and_sext_roundtrip(self):
        result = run_expression(
            lambda b, f: b.sext(b.trunc(Constant(I64, 0x1234), I16), I64)
        )
        assert result.return_value == 0x1234

    def test_trunc_discards_high_bits(self):
        result = run_expression(lambda b, f: b.trunc(Constant(I64, 0x1FF), I8))
        assert result.return_value == I8.wrap(0x1FF)
        assert run_expression(lambda b, f: b.trunc(Constant(I64, 0x1FF), I8), I8).return_value == -1

    def test_zext_treats_source_as_unsigned(self):
        result = run_expression(
            lambda b, f: b.zext(b.trunc(Constant(I64, -1), I8), I64)
        )
        assert result.return_value == 255

    def test_sitofp_and_fptosi(self):
        result = run_expression(
            lambda b, f: b.fptosi(b.sitofp(Constant(I64, -7), F64), I64)
        )
        assert result.return_value == -7

    def test_fptosi_of_nan_and_infinity_does_not_trap(self):
        module = Module("nan")
        function = Function("main", I32)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        nan = builder.fdiv(Constant(F64, 0.0), Constant(F64, 0.0))
        as_int = builder.fptosi(nan, I32)
        builder.ret(as_int)
        module.finalize()
        result = Interpreter(module).run()
        assert result.completed
        assert result.return_value == 0

    def test_bitcast_preserves_bits(self):
        result = run_expression(
            lambda b, f: b.cast("bitcast", Constant(F64, 1.0), I64), I64
        )
        assert result.return_value == 0x3FF0000000000000

    def test_ptrtoint_and_inttoptr(self):
        def body(builder, function):
            slot = builder.alloca(I32)
            as_int = builder.cast("ptrtoint", slot, I64)
            back = builder.cast("inttoptr", as_int, PointerType(I32))
            builder.store(Constant(I32, 99), back)
            return builder.load(slot)

        assert run_expression(body, I32).return_value == 99


class TestComparisonsAndSelect:
    def test_unsigned_comparison(self):
        # -1 as unsigned i32 is the largest value, so ult 0 is false and ugt is true.
        result = run_expression(
            lambda b, f: b.select(
                b.icmp("ugt", Constant(I32, -1), Constant(I32, 5)),
                Constant(I64, 1),
                Constant(I64, 0),
            )
        )
        assert result.return_value == 1

    def test_nan_compares_not_equal(self):
        def body(builder, function):
            nan = builder.fdiv(Constant(F64, 0.0), Constant(F64, 0.0))
            equal = builder.fcmp("eq", nan, nan)
            return builder.select(equal, Constant(I64, 1), Constant(I64, 0))

        assert run_expression(body).return_value == 0

    def test_select_evaluates_to_correct_arm(self):
        result = run_expression(
            lambda b, f: b.select(b.const_bool(False), Constant(I64, 10), Constant(I64, 20))
        )
        assert result.return_value == 20


class TestIntrinsics:
    def test_math_intrinsic_table_is_total(self):
        for name, function in _MATH_INTRINSICS.items():
            assert callable(function), name

    def test_sqrt_of_negative_is_nan_not_a_trap(self):
        assert math.isnan(_MATH_INTRINSICS["__sqrt"](-1.0))

    def test_log_and_exp_guards(self):
        assert _MATH_INTRINSICS["__log"](0.0) == -math.inf
        assert math.isnan(_MATH_INTRINSICS["__log"](-3.0))
        # exp of a huge argument saturates to a large finite value or infinity
        # instead of raising OverflowError.
        assert _MATH_INTRINSICS["__exp"](1e9) >= 1e300

    def test_trig_of_huge_argument_is_finite_or_nan(self):
        value = _MATH_INTRINSICS["__sin"](1e300)
        assert math.isnan(value) or -1.0 <= value <= 1.0

    def test_acos_domain_guard(self):
        assert math.isnan(_MATH_INTRINSICS["__acos"](2.0))
        assert _MATH_INTRINSICS["__acos"](1.0) == 0.0

    def test_pow_guard(self):
        assert math.isnan(_MATH_INTRINSICS["__pow"](-1.0, 0.5))

    def test_exit_intrinsic_completes_run(self):
        source = '''
def main() -> "i64":
    output(1)
    exit(7)
    output(2)
    return 0
'''
        program = compile_program("exiting", [source])
        result = Interpreter(program.module).run()
        assert result.completed
        assert result.return_value == 7
        assert len(result.output) == 1

    def test_unknown_intrinsic_is_host_error(self):
        module = Module("bad")
        function = Function("main", VOID)
        module.add_function(function)
        builder = IRBuilder(function, function.add_block("entry"))
        builder.call("__teleport", [], VOID)
        builder.ret()
        module.finalize()
        with pytest.raises(ExecutionSetupError):
            Interpreter(module).run()

    def test_malloc_rejects_huge_request(self):
        source = '''
def main() -> "i64":
    buf = malloc("i64", 100000000000)
    return buf[0]
'''
        program = compile_program("hugemalloc", [source])
        result = Interpreter(program.module).run()
        assert not result.completed
        assert result.fault.category == "segmentation-fault"


class TestLimitsAndHooks:
    def test_recursion_overflow_is_segmentation_fault(self):
        source = '''
def recurse(n: "i64") -> "i64":
    return recurse(n + 1)

def main() -> "i64":
    return recurse(0)
'''
        program = compile_program("deep", [source])
        result = Interpreter(program.module, limits=ExecutionLimits(max_call_depth=40)).run()
        assert not result.completed
        assert result.fault.category == "segmentation-fault"

    def test_limits_from_golden_length(self):
        limits = ExecutionLimits.for_golden_length(1000, multiplier=7)
        assert limits.max_dynamic_instructions == 7000
        assert ExecutionLimits.for_golden_length(10).max_dynamic_instructions >= 1000

    def test_write_hook_sees_every_destination(self):
        source = '''
def main() -> "i64":
    total = 0
    for i in range(5):
        total += i
    output(total)
    return total
'''
        program = compile_program("hooked", [source])
        seen = []

        def write_hook(dynamic_index, instruction, register, value):
            seen.append((dynamic_index, register.type.bits))
            return value

        result = Interpreter(program.module, write_hook=write_hook).run()
        assert result.completed
        assert seen, "write hook never fired"
        # Dynamic indices are strictly increasing and within the run length.
        indices = [index for index, _bits in seen]
        assert indices == sorted(indices)
        assert indices[-1] < result.dynamic_instructions

    def test_read_hook_can_corrupt_a_value(self):
        source = '''
def main() -> "i64":
    x = 40
    y = x + 2
    output(y)
    return y
'''
        program = compile_program("corrupt", [source])

        flipped = {"done": False}

        def read_hook(dynamic_index, instruction, slot, register, value):
            if not flipped["done"] and instruction.opcode == "add" and value == 40:
                flipped["done"] = True
                return value ^ 0b1000
            return value

        result = Interpreter(program.module, read_hook=read_hook).run()
        assert result.completed
        assert flipped["done"]
        assert result.return_value != 42

    def test_output_records_type_and_bits(self):
        source = '''
def main() -> "i64":
    output(-1)
    output(0.5)
    return 0
'''
        program = compile_program("types", [source])
        result = Interpreter(program.module).run()
        (int_type, int_bits), (float_type, float_bits) = result.output
        assert int_type == "i64" and int_bits == 2**64 - 1
        assert float_type == "f64" and float_bits == 0x3FE0000000000000
