"""End-to-end integration tests of the figure/table harness at a tiny scale.

These use the two cheapest workloads (bfs, crc32) and very small campaigns so
the whole module stays fast; the benchmark harness in ``benchmarks/`` runs
the same entry points at a larger scale and asserts the paper's trends.
"""

import pytest

from repro.campaign import ExperimentScale
from repro.experiments import (
    ExperimentSession,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
)
from repro.injection.faultmodel import WIN_SIZE_SPECS, win_size_by_index

PROGRAMS = ["bfs", "crc32"]
TINY = ExperimentScale("tiny", experiments_per_campaign=20)
SMALL_WINDOWS = (win_size_by_index("w2"), win_size_by_index("w7"))


@pytest.fixture(scope="module")
def session():
    return ExperimentSession(scale=TINY)


class TestFigureHarness:
    def test_figure1(self, session):
        result = figure1(session, PROGRAMS)
        assert set(result.data) == {"inject-on-read", "inject-on-write"}
        for technique, per_program in result.data.items():
            assert set(per_program) == set(PROGRAMS)
            for program, entries in per_program.items():
                total = entries["benign"] + entries["detection"] + entries["sdc"]
                assert total == pytest.approx(100.0)
        assert "crc32" in result.text

    def test_figure2(self, session):
        result = figure2(session, PROGRAMS, max_mbf_values=(2, 30))
        for per_program in result.data.values():
            for entries in per_program.values():
                assert entries["single_bit"] is not None
                assert set(entries["by_max_mbf"]) == {2, 30}

    def test_figure3(self, session):
        result = figure3(session, PROGRAMS, win_size_specs=SMALL_WINDOWS)
        for technique, entry in result.data.items():
            assert entry["histogram"], technique
            assert 0.0 <= entry["fraction_at_most_10"] <= 1.0
            assert entry["mean"] >= 1.0

    def test_figure4_and_5(self, session):
        read = figure4(session, PROGRAMS, max_mbf_values=(2, 3), win_size_specs=SMALL_WINDOWS)
        write = figure5(session, PROGRAMS, max_mbf_values=(2, 3), win_size_specs=SMALL_WINDOWS)
        assert set(read.data["inject-on-read"]) == set(PROGRAMS)
        assert set(write.data["inject-on-write"]) == set(PROGRAMS)
        expected_clusters = {
            "mbf=2,win=1",
            "mbf=2,win=100",
            "mbf=3,win=1",
            "mbf=3,win=100",
        }
        for per_program in (read.data["inject-on-read"], write.data["inject-on-write"]):
            for entries in per_program.values():
                # The session's store may hold additional clusters from other
                # figures; the requested grid must be present at minimum.
                assert expected_clusters <= set(entries["by_cluster"])


class TestTableHarness:
    def test_table1_static_grid(self):
        result = table1()
        kinds = {row["kind"] for row in result.rows}
        assert kinds == {"max-MBF", "win-size"}
        assert len(result.rows) == 19  # 10 max-MBF values + 9 win-size specs
        assert "RND(101-1000)" in result.text

    def test_table2_candidate_counts(self):
        result = table2(PROGRAMS)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["inject_on_read_candidates"] >= row["inject_on_write_candidates"]
            assert row["dynamic_instructions"] > 0
        assert "read candidates" in result.text

    def test_table3(self, session):
        result = table3(
            session, PROGRAMS, max_mbf_values=(2, 3), win_size_specs=SMALL_WINDOWS
        )
        assert len(result.rows) == 4  # 2 programs x 2 techniques
        for row in result.rows:
            assert row["max_mbf"] in (2, 3)
            assert 0.0 <= row["sdc_percentage"] <= 100.0

    def test_table4(self, session):
        result = table4(
            session,
            ["crc32"],
            max_mbf_values=(2,),
            win_size_specs=SMALL_WINDOWS,
            locations_per_class=8,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row["transition1_percentage"] <= 100.0
            assert 0.0 <= row["transition2_percentage"] <= 100.0
        assert "Tran. I %" in result.text


class TestSessionCaching:
    def test_cache_roundtrip(self, tmp_path):
        cache = tmp_path / "store.json"
        first = ExperimentSession(scale=TINY, cache_path=cache)
        figure1(first, ["crc32"])
        assert cache.exists()
        campaigns_before = len(first.store)

        second = ExperimentSession(scale=TINY, cache_path=cache)
        assert len(second.store) == campaigns_before
        # Re-running the same figure must not add campaigns (all cache hits).
        figure1(second, ["crc32"])
        assert len(second.store) == campaigns_before

    def test_checkpoint_only_session_resumes(self, tmp_path):
        """A session given only a checkpoint path loads the store back from it."""
        checkpoint = tmp_path / "checkpoint.json"
        first = ExperimentSession(scale=TINY, checkpoint_path=checkpoint)
        figure1(first, ["crc32"])
        assert checkpoint.exists()

        resumed = ExperimentSession(scale=TINY, checkpoint_path=checkpoint)
        assert len(resumed.store) == len(first.store) > 0

    def test_jobs_and_engine_are_mutually_exclusive(self):
        from repro.campaign import SerialEngine
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentSession(scale=TINY, jobs=4, engine=SerialEngine())
