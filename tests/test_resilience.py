"""Chaos tests for fault-tolerant campaign execution.

Covers the supervised dispatch layer (worker SIGKILL, hung workers, poisoned
experiments, degradation to serial), the durable chunk ledger (resume after
interrupt, torn appends, key mismatches) and the end-to-end guarantee that a
killed-and-resumed run produces byte-identical results to an uninterrupted
one.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    ChunkLedger,
    MultiprocessEngine,
    SerialEngine,
)
from repro.campaign.ledger import chunk_intervals, missing_intervals
from repro.campaign.supervisor import ChunkSupervisor, ChunkTask
from repro.errors import CampaignExecutionError, CampaignInterrupted, ConfigurationError
from repro.frontend import compile_program
from repro.injection import ExperimentRunner
from repro.injection.faultmodel import win_size_by_index
from repro.injection.outcome import Outcome, OutcomeCounts

TINY_PROGRAM = '''
def main() -> "i64":
    total = 0
    for i in range(12):
        scratch[i % 4] = i * 7
        total += scratch[i % 4]
    output(total)
    return total
'''


@pytest.fixture(scope="module")
def tiny_runner():
    program = compile_program("tiny", [TINY_PROGRAM], {"scratch": ("i32", [0, 0, 0, 0])})
    return ExperimentRunner(program)


@pytest.fixture(scope="module")
def tiny_provider(tiny_runner):
    def provider(name):
        assert name == "tiny"
        return tiny_runner

    return provider


def tiny_config(**overrides):
    defaults = dict(
        program="tiny",
        technique="inject-on-write",
        max_mbf=3,
        win_size=win_size_by_index("w4"),
        experiments=32,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def result_signature(result):
    return (
        result.resolved_win_size,
        result.outcome_counts.as_dict(),
        result.activated_histogram,
        [record.to_tuple() for record in result.records],
    )


class _FlakyRunner:
    """Wraps a real runner; raises on experiments whose spec seed is poisoned."""

    def __init__(self, runner, poison_seeds):
        self._runner = runner
        self._poison = frozenset(poison_seeds)

    def __getattr__(self, name):
        return getattr(self._runner, name)

    def run_spec(self, spec, **kwargs):
        if spec.seed in self._poison:
            raise RuntimeError("poisoned experiment")
        return self._runner.run_spec(spec, **kwargs)


def poison_seed_for(runner, config, index):
    """The derived spec seed of experiment ``index`` (what _FlakyRunner keys on)."""
    from repro.injection.techniques import technique_by_name

    spec = runner.seeded_spec(
        technique_by_name(config.technique),
        max_mbf=config.max_mbf,
        win_size=config.resolve_win_size(),
        seed=config.experiment_seed(index),
    )
    return spec.seed


# -- chunk-interval helpers ---------------------------------------------------------


class TestIntervals:
    def test_missing_intervals_complement(self):
        assert missing_intervals(10, []) == [(0, 10)]
        assert missing_intervals(10, [(0, 10)]) == []
        assert missing_intervals(10, [(0, 3), (7, 3)]) == [(3, 4)]
        assert missing_intervals(10, [(4, 2)]) == [(0, 4), (6, 4)]

    def test_missing_intervals_tolerates_overlap_and_disorder(self):
        assert missing_intervals(10, [(6, 4), (0, 2), (1, 3)]) == [(4, 2)]
        assert missing_intervals(5, [(0, 99)]) == []

    def test_chunk_intervals_splits_to_chunk_size(self):
        assert chunk_intervals([(0, 10)], 4) == [(0, 4), (4, 4), (8, 2)]
        assert chunk_intervals([(3, 2), (9, 1)], 4) == [(3, 2), (9, 1)]
        assert chunk_intervals([(0, 3)], 0) == [(0, 1), (1, 1), (2, 1)]


# -- the ledger ---------------------------------------------------------------------


class TestChunkLedger:
    def test_round_trip_resume(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=20, meta={"kind": "t"}) as ledger:
            ledger.record_grant(0, 8)
            ledger.record_done(0, 8, {"outcomes": ["benign"] * 8})
            ledger.record_done(8, 8, {"outcomes": ["sdc"] * 8})
        resumed = ChunkLedger.open(tmp_path, "k1", total=20, resume=True)
        assert resumed.loaded_units == 16
        assert sorted(resumed.completed) == [0, 8]
        assert resumed.completed[8]["outcomes"] == ["sdc"] * 8
        assert resumed.missing(8) == [(16, 4)]
        resumed.close()

    def test_open_without_resume_truncates(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=8) as ledger:
            ledger.record_done(0, 8, {"outcomes": []})
        with ChunkLedger.open(tmp_path, "k1", total=8) as fresh:
            assert fresh.completed == {}
            assert fresh.missing(8) == [(0, 8)]
        reread = ChunkLedger.open(tmp_path, "k1", total=8, resume=True)
        assert reread.completed == {}
        reread.close()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=16) as ledger:
            ledger.record_done(0, 8, {"outcomes": ["benign"] * 8})
        path = tmp_path / "k1.jsonl"
        with open(path, "a") as handle:
            handle.write('{"type": "done", "chunk": 8, "cou')  # killed mid-append
        resumed = ChunkLedger.open(tmp_path, "k1", total=16, resume=True)
        assert sorted(resumed.completed) == [0]
        assert resumed.missing(8) == [(8, 8)]
        resumed.close()

    def test_mid_file_corruption_discards_ledger(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=16) as ledger:
            ledger.record_done(0, 8, {"outcomes": ["benign"] * 8})
        path = tmp_path / "k1.jsonl"
        lines = path.read_text().splitlines()
        lines.insert(1, "garbage not json")
        path.write_text("\n".join(lines) + "\n")
        resumed = ChunkLedger.open(tmp_path, "k1", total=16, resume=True)
        assert resumed.completed == {}
        resumed.close()

    def test_key_or_total_mismatch_starts_fresh(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=16) as ledger:
            ledger.record_done(0, 16, {"outcomes": []})
        mismatched = ChunkLedger.open(tmp_path, "k1", total=32, resume=True)
        assert mismatched.completed == {}
        mismatched.close()
        # The fresh file was rewritten with the new header, so a matching
        # resume trusts it again.
        header = json.loads((tmp_path / "k1.jsonl").read_text().splitlines()[0])
        assert header["total"] == 32

    def test_compact_rewrites_to_merged_records_and_resumes(self, tmp_path):
        with ChunkLedger.open(tmp_path, "k1", total=16) as ledger:
            for chunk in range(0, 16, 2):
                ledger.record_grant(chunk, 2)
                ledger.record_done(chunk, 2, {"outcomes": ["benign"] * 2})
        before = (tmp_path / "k1.jsonl").stat().st_size
        assert ledger.compact([(0, 16, {"outcomes": ["benign"] * 16})])
        after = (tmp_path / "k1.jsonl").stat().st_size
        assert after < before
        lines = (tmp_path / "k1.jsonl").read_text().splitlines()
        assert json.loads(lines[-1]) == {"type": "finished"}
        assert len(lines) == 3  # header + one merged done + finished marker
        resumed = ChunkLedger.open(tmp_path, "k1", total=16, resume=True)
        assert resumed.loaded_units == 16
        assert resumed.missing(4) == []
        resumed.close()

    def test_sweeper_prunes_only_old_finished_ledgers(self, tmp_path):
        from repro.campaign.ledger import sweep_finished_ledgers

        def make(key, total, finish):
            with ChunkLedger.open(tmp_path, key, total=total) as ledger:
                ledger.record_done(0, total, {"outcomes": ["benign"] * total})
            if finish:
                ledger.compact([(0, total, {"outcomes": ["benign"] * total})])

        make("old-finished", 4, finish=True)
        make("young-finished", 4, finish=True)
        make("old-unfinished", 4, finish=False)
        stale = time.time() - 48 * 3600
        os.utime(tmp_path / "old-finished.jsonl", (stale, stale))
        os.utime(tmp_path / "old-unfinished.jsonl", (stale, stale))
        assert sweep_finished_ledgers(tmp_path) == 1
        assert not (tmp_path / "old-finished.jsonl").exists()
        assert (tmp_path / "young-finished.jsonl").exists()
        assert (tmp_path / "old-unfinished.jsonl").exists()

    def test_clean_engine_finish_leaves_compacted_ledger(
        self, tiny_provider, tmp_path
    ):
        config = tiny_config(experiments=16)
        ledger_dir = tmp_path / "ledger"
        engine = MultiprocessEngine(jobs=2, chunk_size=4, ledger_dir=str(ledger_dir))
        engine.run(config, provider=tiny_provider)
        ledger_path = Path(engine.supervision["ledger_path"])
        lines = ledger_path.read_text().splitlines()
        assert json.loads(lines[-1]) == {"type": "finished"}
        assert len(lines) == 3


# -- the supervisor -----------------------------------------------------------------


def _echo_init():
    return "state"


def _echo_chunk(state, payload):
    assert state == "state"
    if payload == "sleep":
        time.sleep(60.0)
    if payload == "raise":
        raise RuntimeError("chunk failure")
    return payload


class TestChunkSupervisor:
    def _supervisor(self, **overrides):
        options = dict(
            jobs=2,
            context=multiprocessing.get_context("fork"),
            initializer=_echo_init,
            max_retries=1,
            backoff_base=0.01,
        )
        options.update(overrides)
        return ChunkSupervisor(**options)

    def test_dispatches_and_merges_by_chunk_id(self):
        tasks = [ChunkTask(i * 4, _echo_chunk, f"payload-{i}", 4) for i in range(5)]
        run = self._supervisor().run(tasks)
        assert run.results == {i * 4: f"payload-{i}" for i in range(5)}
        assert not run.quarantined and not run.unfinished
        assert run.stats.chunks_completed == 5

    def test_hung_worker_is_killed_and_chunk_quarantined(self):
        tasks = [
            ChunkTask(0, _echo_chunk, "ok", 1),
            ChunkTask(1, _echo_chunk, "sleep", 1),
        ]
        run = self._supervisor(chunk_timeout=0.5, max_retries=1).run(tasks)
        assert run.results[0] == "ok"
        assert run.stats.timeouts >= 2  # initial attempt + retry both timed out
        assert run.stats.worker_restarts >= 2
        assert [q.task.chunk_id for q in run.quarantined] == [1]

    def test_failing_chunk_bisects_to_single_unit(self):
        calls = []
        tasks = [ChunkTask(0, _echo_chunk, "raise", 4)]

        def split(task):
            half = task.size // 2
            calls.append(task.size)
            return [
                ChunkTask(task.chunk_id, task.fn, "raise", half),
                ChunkTask(task.chunk_id + half, task.fn, "raise", task.size - half),
            ]

        run = self._supervisor(max_retries=0).run(tasks, split=split)
        assert calls == [4, 2, 2]
        assert sorted(q.task.chunk_id for q in run.quarantined) == [0, 1, 2, 3]
        assert run.stats.quarantined_units == 4

    def test_no_quarantine_raises(self):
        tasks = [ChunkTask(0, _echo_chunk, "raise", 1)]
        with pytest.raises(CampaignExecutionError):
            self._supervisor(max_retries=0, quarantine=False).run(tasks)


# -- supervised campaign engine: crashes, quarantine, degradation -------------------


class TestSupervisedCampaigns:
    def test_sigkilled_workers_lose_no_experiments(self, tiny_provider, monkeypatch):
        """Workers SIGKILL themselves every third chunk; the campaign still
        completes with every experiment accounted for, bit-identical to a
        serial run."""
        config = tiny_config(experiments=32)
        serial = SerialEngine().run(config, provider=tiny_provider)
        monkeypatch.setenv("REPRO_CHAOS_KILL_NTH_CHUNK", "3")
        engine = MultiprocessEngine(jobs=2, chunk_size=4)
        survived = engine.run(config, provider=tiny_provider)
        assert result_signature(survived) == result_signature(serial)
        assert survived.experiments == config.experiments
        assert engine.supervision["worker_restarts"] >= 1
        assert engine.supervision["quarantined_units"] == 0

    def test_total_worker_loss_degrades_to_serial(self, tiny_provider, monkeypatch):
        """Every worker dies on its first chunk: the pool degrades and the
        engine finishes the whole campaign serially in-process."""
        config = tiny_config(experiments=16)
        serial = SerialEngine().run(config, provider=tiny_provider)
        monkeypatch.setenv("REPRO_CHAOS_KILL_NTH_CHUNK", "1")
        engine = MultiprocessEngine(jobs=2, chunk_size=4, max_retries=1)
        with pytest.warns(RuntimeWarning, match="degraded"):
            survived = engine.run(config, provider=tiny_provider)
        assert result_signature(survived) == result_signature(serial)
        assert engine.supervision["degraded"] is True
        assert engine.supervision["serial_fallback_units"] == config.experiments

    def test_poisoned_experiment_is_bisected_and_quarantined(
        self, tiny_runner, tiny_provider
    ):
        config = tiny_config(experiments=16)
        serial = SerialEngine().run(config, provider=tiny_provider)
        poison = {poison_seed_for(tiny_runner, config, 7)}
        flaky_provider = lambda name: _FlakyRunner(tiny_runner, poison)  # noqa: E731
        engine = MultiprocessEngine(jobs=2, chunk_size=8, max_retries=0)
        result = engine.run(config, provider=flaky_provider)
        assert result.experiments == config.experiments
        assert result.outcome_counts.count(Outcome.CRASHED) == 1
        assert result.records[7].outcome is Outcome.CRASHED
        # The quarantined record still carries the real injection location.
        assert (
            result.records[7].first_dynamic_index
            == serial.records[7].first_dynamic_index
        )
        for index in range(16):
            if index != 7:
                assert result.records[index] == serial.records[index]
        assert engine.supervision["quarantined_units"] == 1
        assert engine.supervision["bisections"] >= 1

    def test_serial_engine_quarantines_identically(self, tiny_runner, tiny_provider):
        config = tiny_config(experiments=16)
        poison = {poison_seed_for(tiny_runner, config, 7)}
        flaky_provider = lambda name: _FlakyRunner(tiny_runner, poison)  # noqa: E731
        parallel = MultiprocessEngine(jobs=2, chunk_size=8, max_retries=0).run(
            config, provider=flaky_provider
        )
        serial_engine = SerialEngine()
        serial = serial_engine.run(config, provider=flaky_provider)
        assert result_signature(serial) == result_signature(parallel)
        assert serial_engine.supervision["quarantined_units"] == 1

    def test_no_quarantine_aborts_the_run(self, tiny_runner, tiny_provider):
        config = tiny_config(experiments=8)
        poison = {poison_seed_for(tiny_runner, config, 3)}
        flaky_provider = lambda name: _FlakyRunner(tiny_runner, poison)  # noqa: E731
        with pytest.raises(CampaignExecutionError):
            SerialEngine(quarantine=False).run(config, provider=flaky_provider)
        with pytest.raises(CampaignExecutionError):
            MultiprocessEngine(jobs=2, chunk_size=4, max_retries=0, quarantine=False).run(
                config, provider=flaky_provider
            )

    def test_crashed_outcome_stays_out_of_legacy_serialization(self):
        counts = OutcomeCounts()
        counts.add(Outcome.BENIGN, 3)
        assert "crashed" not in counts.as_dict()
        counts.add(Outcome.CRASHED)
        assert counts.as_dict()["crashed"] == 1

    def test_engine_knob_validation(self):
        with pytest.raises(ConfigurationError):
            MultiprocessEngine(jobs=2, max_retries=-1)
        with pytest.raises(ConfigurationError):
            MultiprocessEngine(jobs=2, chunk_timeout=0.0)
        with pytest.raises(ConfigurationError):
            MultiprocessEngine(jobs=2, resume=True)
        with pytest.raises(ConfigurationError):
            SerialEngine(resume=True)


# -- interrupt + resume -------------------------------------------------------------


class TestResume:
    def test_multiprocess_interrupt_then_resume_is_bit_identical(
        self, tiny_provider, tmp_path, monkeypatch
    ):
        config = tiny_config(experiments=32)
        serial = SerialEngine().run(config, provider=tiny_provider)
        ledger_dir = str(tmp_path / "ledger")

        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "2")
        first = MultiprocessEngine(jobs=2, chunk_size=4, ledger_dir=ledger_dir)
        with pytest.raises(CampaignInterrupted) as interrupted:
            first.run(config, provider=tiny_provider)
        assert interrupted.value.resumable
        assert 0 < interrupted.value.done < config.experiments
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")

        # Resume with a *different* chunk grid and job count: the ledger
        # stores intervals, not grids, so the merge is still byte-identical.
        second = MultiprocessEngine(
            jobs=3, chunk_size=5, ledger_dir=ledger_dir, resume=True
        )
        resumed = second.run(config, provider=tiny_provider)
        assert result_signature(resumed) == result_signature(serial)
        assert second.supervision["ledger_loaded_units"] == interrupted.value.done

    def test_serial_interrupt_then_resume_is_bit_identical(
        self, tiny_provider, tmp_path, monkeypatch
    ):
        config = tiny_config(experiments=30)
        baseline = SerialEngine(progress_interval=6).run(config, provider=tiny_provider)
        ledger_dir = str(tmp_path / "ledger")

        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "2")
        with pytest.raises(CampaignInterrupted) as interrupted:
            SerialEngine(progress_interval=6, ledger_dir=ledger_dir).run(
                config, provider=tiny_provider
            )
        assert interrupted.value.done == 12
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")

        engine = SerialEngine(progress_interval=6, ledger_dir=ledger_dir, resume=True)
        resumed = engine.run(config, provider=tiny_provider)
        assert result_signature(resumed) == result_signature(baseline)
        assert engine.supervision["ledger_loaded_units"] == 12

    def test_resume_with_completed_ledger_executes_nothing(
        self, tiny_runner, tiny_provider, tmp_path
    ):
        config = tiny_config(experiments=12)
        ledger_dir = str(tmp_path / "ledger")
        full = SerialEngine(progress_interval=4, ledger_dir=ledger_dir).run(
            config, provider=tiny_provider
        )

        class Exploding:
            def __getattr__(self, name):
                if name in ("program", "seeded_spec"):
                    return getattr(tiny_runner, name)
                raise AssertionError("resume of a complete run must not execute")

        engine = SerialEngine(progress_interval=4, ledger_dir=ledger_dir, resume=True)
        resumed = engine.run(config, provider=lambda name: Exploding())
        assert result_signature(resumed) == result_signature(full)
        assert engine.supervision["ledger_loaded_units"] == config.experiments

    def test_error_space_interrupt_then_resume(
        self, tiny_runner, tiny_provider, tmp_path, monkeypatch
    ):
        from repro.errorspace import enumerate_error_space

        space = enumerate_error_space(tiny_runner.golden, "inject-on-write")
        errors = [
            (e.dynamic_index, e.slot, e.bit)
            for e, _ in zip(space.iter_errors(), range(48))
        ]
        plain = MultiprocessEngine(jobs=2, chunk_size=16).run_errors(
            "tiny", "inject-on-write", errors, provider=tiny_provider
        )
        ledger_dir = str(tmp_path / "ledger")

        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "1")
        with pytest.raises(CampaignInterrupted) as interrupted:
            MultiprocessEngine(
                jobs=2, chunk_size=16, ledger_dir=ledger_dir
            ).run_errors("tiny", "inject-on-write", errors, provider=tiny_provider)
        assert interrupted.value.resumable
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")

        engine = MultiprocessEngine(
            jobs=2, chunk_size=12, ledger_dir=ledger_dir, resume=True
        )
        resumed = engine.run_errors(
            "tiny", "inject-on-write", errors, provider=tiny_provider
        )
        assert resumed == plain
        assert engine.supervision["ledger_loaded_units"] == interrupted.value.done


# -- end-to-end: session stores survive a kill byte-for-byte ------------------------


class TestSessionResume:
    @pytest.fixture(autouse=True)
    def reset_cache_config(self):
        from repro import artifacts

        yield
        artifacts.configure(None)

    @pytest.mark.parametrize("backend", ["decoded", "compiled"])
    def test_interrupted_session_resumes_to_identical_store_bytes(
        self, tmp_path, monkeypatch, backend
    ):
        from repro.campaign import ExperimentScale
        from repro.experiments import ExperimentSession

        config = CampaignConfig(
            program="crc32",
            technique="inject-on-write",
            max_mbf=3,
            win_size=win_size_by_index("w3"),
            experiments=12,
        )
        scale = ExperimentScale("test", experiments_per_campaign=12)
        ledger_dir = str(tmp_path / "ledger")

        def session(cache_name, **engine_kwargs):
            return ExperimentSession(
                scale=scale,
                cache_path=tmp_path / cache_name,
                cache_dir=tmp_path / "artifacts",
                backend=backend,
                engine=SerialEngine(progress_interval=4, **engine_kwargs),
            )

        session("baseline.json").ensure([config])
        baseline_bytes = (tmp_path / "baseline.json").read_bytes()

        monkeypatch.setenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS", "1")
        with pytest.raises(CampaignInterrupted):
            session("resumed.json", ledger_dir=ledger_dir).ensure([config])
        assert not (tmp_path / "resumed.json").exists()
        monkeypatch.delenv("REPRO_CHAOS_ABORT_AFTER_CHUNKS")

        session("resumed.json", ledger_dir=ledger_dir, resume=True).ensure([config])
        assert (tmp_path / "resumed.json").read_bytes() == baseline_bytes

    def test_session_resume_requires_a_ledger(self):
        from repro.experiments import ExperimentSession

        with pytest.raises(ConfigurationError):
            ExperimentSession(resume=True)
