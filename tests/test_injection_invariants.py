"""Property-style invariants of the fault-injection pipeline.

These tests drive many randomly-seeded experiments on one workload and check
invariants that must hold for *every* experiment regardless of outcome —
the kind of guarantees the analysis layer silently relies on.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_program
from repro.injection import (
    ExperimentRunner,
    INJECT_ON_READ,
    INJECT_ON_WRITE,
    Outcome,
)

WORKLOAD = '''
def mix(value: "i64", salt: "i64") -> "i64":
    hashed = value * 31 + salt
    hashed = hashed ^ (hashed >> 7)
    return hashed

def main() -> "i64":
    state = 1
    for i in range(25):
        state = mix(state, table[i % 6])
        buffer[i % 6] = state % 251
    total = 0
    for i in range(6):
        total += buffer[i]
    output(total)
    output(state)
    return total
'''


@pytest.fixture(scope="module")
def workload():
    program = compile_program(
        "invariants",
        [WORKLOAD],
        {"table": ("i32", [3, 17, 29, 41, 53, 67]), "buffer": ("i32", [0] * 6)},
    )
    return ExperimentRunner(program)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_mbf=st.sampled_from([1, 2, 3, 5, 10, 30]),
    win_size=st.sampled_from([0, 1, 4, 10, 100]),
    technique_index=st.integers(min_value=0, max_value=1),
)
def test_every_experiment_obeys_core_invariants(workload, seed, max_mbf, win_size, technique_index):
    technique = (INJECT_ON_READ, INJECT_ON_WRITE)[technique_index]
    rng = random.Random(seed)
    result = workload.run_sampled(technique, max_mbf=max_mbf, win_size=win_size, rng=rng)

    # 1. The outcome is always one of the five paper categories.
    assert isinstance(result.outcome, Outcome)

    # 2. Activated errors never exceed the plan, and every activation is recorded.
    assert 0 <= result.activated_errors <= max_mbf
    assert len(result.injections) == result.activated_errors

    # 3. Every recorded flip changed exactly one bit of the target register.
    for record in result.injections:
        assert bin(record.before_bits ^ record.after_bits).count("1") == 1
        assert record.access == technique.access

    # 4. Injection times are non-decreasing and respect the window when > 0.
    indices = [record.dynamic_index for record in result.injections]
    assert indices == sorted(indices)
    if win_size > 0:
        for earlier, later in zip(indices, indices[1:]):
            assert later - earlier >= win_size
    if win_size == 0 and result.injections:
        assert len(set(indices)) == 1

    # 5. A faulty run never executes more instructions than the watchdog allows.
    assert result.dynamic_instructions <= workload.limits.max_dynamic_instructions

    # 6. Outcome-specific consistency.
    if result.outcome is Outcome.DETECTED_HW_EXCEPTION:
        assert result.fault_category is not None
    if result.outcome is Outcome.BENIGN:
        assert result.fault_category is None


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_zero_activation_experiments_are_benign(workload, seed):
    """If no flip was performed the run must match the golden run exactly."""
    rng = random.Random(seed)
    result = workload.run_sampled(INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng)
    if result.activated_errors == 0:
        assert result.outcome is Outcome.BENIGN
        assert result.dynamic_instructions == workload.golden.dynamic_instruction_count


def test_single_bit_flip_of_unused_high_bit_can_be_benign(workload):
    """Sanity: benign outcomes actually occur (the program masks some bits)."""
    rng = random.Random(123)
    outcomes = [
        workload.run_sampled(INJECT_ON_WRITE, max_mbf=1, win_size=0, rng=rng).outcome
        for _ in range(60)
    ]
    assert Outcome.BENIGN in outcomes
    assert Outcome.SDC in outcomes
