"""repro — reproduction of "One Bit is (Not) Enough" (DSN 2017).

An LLFI-style fault-injection study of single versus multiple bit-flip
errors, rebuilt as a self-contained Python library:

* :mod:`repro.ir` — MiniIR, an LLVM-like typed SSA intermediate representation;
* :mod:`repro.frontend` — a restricted-Python to MiniIR compiler;
* :mod:`repro.vm` — the MiniIR interpreter with a hardware-exception memory
  model and the register read/write hooks the injector uses;
* :mod:`repro.injection` — the bit-flip fault model (max-MBF / win-size),
  the inject-on-read / inject-on-write techniques, and the experiment driver;
* :mod:`repro.campaign` — campaign grids, execution and result storage;
* :mod:`repro.errorspace` — exhaustive error-space enumeration, def-use
  equivalence pruning and static outcome inference (§IV-C executable);
* :mod:`repro.programs` — the 15 MiBench / Parboil workloads of Table II;
* :mod:`repro.analysis` — RQ1–RQ5 analyses and the three pruning layers;
* :mod:`repro.experiments` — one entry point per table and figure.

Quickstart::

    from repro.experiments import ExperimentSession, figure1
    from repro.campaign import SMOKE_SCALE

    session = ExperimentSession(scale=SMOKE_SCALE)
    print(figure1(session, programs=["crc32", "dijkstra"]).text)
"""

from repro.campaign import (
    BENCH_SCALE,
    CampaignConfig,
    CampaignRunner,
    EngineProgress,
    ExecutionEngine,
    ExperimentScale,
    MultiprocessEngine,
    PAPER_SCALE,
    ResultStore,
    SerialEngine,
    SMOKE_SCALE,
)
from repro.errors import (
    AnalysisError,
    CompilationError,
    ConfigurationError,
    ExecutionSetupError,
    ReproError,
)
from repro.injection import (
    INJECT_ON_READ,
    INJECT_ON_WRITE,
    ExperimentRunner,
    FaultInjector,
    FaultSpec,
    Outcome,
    OutcomeCounts,
    profile_program,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BENCH_SCALE",
    "CampaignConfig",
    "CampaignRunner",
    "CompilationError",
    "ConfigurationError",
    "EngineProgress",
    "ExecutionEngine",
    "ExecutionSetupError",
    "ExperimentRunner",
    "ExperimentScale",
    "FaultInjector",
    "FaultSpec",
    "INJECT_ON_READ",
    "INJECT_ON_WRITE",
    "MultiprocessEngine",
    "Outcome",
    "OutcomeCounts",
    "PAPER_SCALE",
    "profile_program",
    "ReproError",
    "ResultStore",
    "SerialEngine",
    "SMOKE_SCALE",
    "__version__",
]
