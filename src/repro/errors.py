"""Exception hierarchy shared across the repro library.

Two families of errors exist and must not be confused:

* :class:`ReproError` and subclasses — *host-level* problems in the library
  itself (bad configuration, compiler bugs, mis-used APIs).  These propagate
  to the caller like any Python exception.
* :class:`repro.vm.faults.HardwareFault` and subclasses — *simulated* faults
  raised by the virtual machine on behalf of the emulated hardware
  (segmentation faults, misaligned accesses, division by zero, aborts).
  These are caught by the experiment driver and classified as
  "Detected by Hardware Exception" outcomes, mirroring how LLFI's native runs
  are terminated by OS signals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all host-level errors raised by the library."""


class CompilationError(ReproError):
    """The frontend could not translate a program to MiniIR."""

    def __init__(self, message: str, *, location: str | None = None) -> None:
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.location = location


class ConfigurationError(ReproError):
    """A campaign, fault-model or program configuration is invalid."""


class ExecutionSetupError(ReproError):
    """The VM could not be set up to run a program (not a simulated fault)."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on incomplete or inconsistent results."""


class CampaignExecutionError(ReproError):
    """A campaign could not be completed even after retries.

    Raised by the fault-tolerant execution layer when a chunk keeps failing
    and quarantine is disabled (``--no-quarantine``), or when worker-pool
    supervision hits an unrecoverable condition.
    """


class CampaignInterrupted(ReproError):
    """A campaign run was stopped early by SIGINT/SIGTERM.

    The supervisor drains in-flight chunks and flushes the chunk ledger
    before raising, so a run started with a ledger can be resumed with
    ``--resume`` executing only the missing chunks.
    """

    def __init__(
        self,
        message: str,
        *,
        done: int = 0,
        total: int = 0,
        resumable: bool = False,
    ) -> None:
        super().__init__(message)
        self.done = done
        self.total = total
        self.resumable = resumable
