"""Pruned campaign plans over the exhaustive error space (§IV-C executable).

A :class:`PrunedPlan` partitions the full single-bit error space of one
technique into:

* **inferred errors** — statically settled by
  :class:`~repro.errorspace.inference.OutcomeInference`; they contribute
  exact outcome counts and cost zero executions;
* **equivalence classes** — groups of residual errors that read the same
  unredefined defining write at the same static read site with the same bit;
  one representative per class is executed and its outcome credited to every
  member (weight).  Inject-on-write candidates never share a defining write
  with another candidate, so their classes are singletons and the planned
  experiment count equals the Table II error space.

Two execution modes mirror the paper's §IV-C recommendation levels:
``exact`` runs every representative (full coverage, maximally pruned), and
``budgeted`` weight-samples representatives for a fixed experiment budget
(the spot-check mode).  Both are deterministic under a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.errorspace.defuse import DefUseIndex
from repro.errorspace.enumerate import ErrorSpace, SingleBitError
from repro.errorspace.inference import OutcomeInference
from repro.injection.outcome import Outcome, OutcomeCounts


@dataclass(frozen=True)
class PlannedExperiment:
    """One experiment of a pruned campaign: a representative plus its weight."""

    class_id: int
    error: SingleBitError
    weight: int


@dataclass
class EquivalenceClass:
    """Residual errors grouped by (defining write, static read site, bit)."""

    class_id: int
    key: Tuple
    bit: int
    representative: SingleBitError
    #: Non-representative members as (dynamic_index, slot) pairs; together
    #: with the representative they are the class's ``weight`` errors.
    members: Tuple[Tuple[int, Optional[int]], ...]

    @property
    def weight(self) -> int:
        return 1 + len(self.members)


@dataclass
class PrunedPlan:
    """An executable pruning of one technique's exhaustive error space."""

    technique: str
    #: Total number of single-bit errors in the space (candidates × widths).
    total_errors: int
    candidate_count: int
    classes: List[EquivalenceClass] = field(default_factory=list)
    #: Outcome counts of statically inferred errors (exact, zero executions).
    inferred_counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    #: (dynamic_index, slot, bit) -> inferred outcome, for validation lookups.
    inferred_outcomes: Dict[Tuple, Outcome] = field(default_factory=dict)

    # -- invariants --------------------------------------------------------------
    @property
    def inferred_errors(self) -> int:
        return self.inferred_counts.total

    @property
    def executed_experiments(self) -> int:
        """Experiments the exact mode runs (one per residual class)."""
        return len(self.classes)

    @property
    def covered_errors(self) -> int:
        """Errors accounted for by classes and inference (= total_errors)."""
        return self.inferred_errors + sum(cls.weight for cls in self.classes)

    @property
    def reduction_factor(self) -> float:
        """How many times fewer experiments the exact mode executes."""
        if not self.classes:
            return float(self.total_errors) if self.total_errors else 1.0
        return self.total_errors / len(self.classes)

    # -- execution modes ----------------------------------------------------------
    def exact_experiments(self) -> List[PlannedExperiment]:
        """All representatives — full-coverage pruned campaign."""
        return [
            PlannedExperiment(cls.class_id, cls.representative, cls.weight)
            for cls in self.classes
        ]

    def budgeted_experiments(self, budget: int, seed: int) -> List[PlannedExperiment]:
        """A weighted sample of ``budget`` representatives (with replacement).

        Classes are drawn proportionally to their weight, so the sampled
        outcome frequencies estimate the same proportions the exact mode
        reproduces; the draw is deterministic for a given seed.
        """
        if budget < 1:
            raise ConfigurationError("budgeted mode needs a positive experiment budget")
        if not self.classes:
            return []
        rng = random.Random(seed)
        weights = [cls.weight for cls in self.classes]
        drawn = rng.choices(range(len(self.classes)), weights=weights, k=budget)
        residual_weight = sum(weights)
        share, remainder = divmod(residual_weight, budget)
        experiments = []
        for position, class_index in enumerate(drawn):
            cls = self.classes[class_index]
            # Spread the residual weight over the draws so the estimated
            # counts still total the full error space.
            experiments.append(
                PlannedExperiment(
                    cls.class_id, cls.representative, share + (1 if position < remainder else 0)
                )
            )
        return experiments

    def experiments(
        self, mode: str = "exact", *, budget: Optional[int] = None, seed: int = 0
    ) -> List[PlannedExperiment]:
        if mode == "exact":
            return self.exact_experiments()
        if mode == "budgeted":
            if budget is None:
                raise ConfigurationError("budgeted mode requires a budget")
            return self.budgeted_experiments(budget, seed)
        raise ConfigurationError(f"unknown plan mode {mode!r}; expected exact|budgeted")

    # -- outcome expansion ---------------------------------------------------------
    def expand_counts(
        self, representative_outcomes: Dict[int, Outcome], experiments: Sequence[PlannedExperiment]
    ) -> OutcomeCounts:
        """Weighted counts for the full space from executed representatives."""
        counts = OutcomeCounts()
        for planned in experiments:
            counts.add(representative_outcomes[planned.class_id], planned.weight)
        return counts.merge(self.inferred_counts)

    def matches(self, other: "PrunedPlan") -> bool:
        """Field-by-field identity with another plan.

        The definition every "bit-identical plans" gate uses (differential
        tests, cache round-trips, the pruning benchmark) — one place to
        extend when plan structure grows.
        """
        return (
            (self.technique, self.total_errors, self.candidate_count)
            == (other.technique, other.total_errors, other.candidate_count)
            and [
                (cls.class_id, cls.key, cls.bit, cls.representative, cls.members)
                for cls in self.classes
            ]
            == [
                (cls.class_id, cls.key, cls.bit, cls.representative, cls.members)
                for cls in other.classes
            ]
            and self.inferred_outcomes == other.inferred_outcomes
            and self.inferred_counts == other.inferred_counts
        )

    def non_representative_members(self) -> List[Tuple[Tuple[int, Optional[int], int], int]]:
        """All inherited (non-executed, non-inferred) errors with their class.

        Returns ``((dynamic_index, slot, bit), class_id)`` pairs — the
        population the validation sampler draws from.
        """
        members = []
        for cls in self.classes:
            for dynamic_index, slot in cls.members:
                members.append(((dynamic_index, slot, cls.bit), cls.class_id))
        return members


#: Maps a list of :class:`SingleBitError` to their inferred outcomes (None
#: per error that must execute).  The multiprocess engine provides one that
#: fans chunks out to workers; the default runs one in-process engine.
InferMap = Callable[[List[SingleBitError]], List[Optional[Outcome]]]


def build_pruned_plan(
    space: ErrorSpace,
    index: Optional[DefUseIndex] = None,
    *,
    infer: bool = True,
    infer_map: Optional[InferMap] = None,
) -> PrunedPlan:
    """Partition an error space into inferred errors and equivalence classes.

    ``index`` (the def-use structure) enables both grouping and inference
    for inject-on-read; without it — and always for inject-on-write — every
    class is a singleton and the plan degenerates to the full exhaustive
    campaign.

    Inference is a pure per-error map, so the plan is assembled in two
    deterministic passes: enumerate every error of the space in (class, bit,
    candidate) order, infer their outcomes (serially, or through
    ``infer_map`` — e.g. chunk-dispatched to a worker pool), then fold the
    outcomes back into classes.  The assembled plan is bit-identical
    regardless of how (or where) the inference pass ran.
    """
    technique = space.technique.name
    plan = PrunedPlan(
        technique=technique,
        total_errors=space.size,
        candidate_count=space.candidate_count,
    )
    use_inference = index is not None and infer

    # Group candidates (not yet bits) by their def-use class key.
    groups: Dict[Tuple, List[SingleBitError]] = {}
    order: List[Tuple] = []
    for error in space.iter_candidate_errors():
        if index is not None and technique == "inject-on-read":
            key = index.class_key(error.dynamic_index, error.slot)
        else:
            key = ("singleton", error.dynamic_index, error.slot)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(error)

    # Pass 1: materialise the full error stream in plan-assembly order.
    errors: List[SingleBitError] = []
    for key in order:
        members = groups[key]
        bits = members[0].register_bits
        for bit in range(bits):
            for candidate in members:
                errors.append(
                    SingleBitError(
                        ordinal=candidate.ordinal + bit,
                        dynamic_index=candidate.dynamic_index,
                        slot=candidate.slot,
                        bit=bit,
                        register_bits=candidate.register_bits,
                        opcode=candidate.opcode,
                    )
                )

    # Pass 2: infer outcomes (the only expensive step; parallelisable).
    if not use_inference:
        outcomes: List[Optional[Outcome]] = [None] * len(errors)
    elif infer_map is not None:
        outcomes = infer_map(errors)
    else:
        engine = OutcomeInference(index)
        engine_infer = engine.infer
        outcomes = [engine_infer(error) for error in errors]

    # Pass 3: fold outcomes back into inferred counts and residual classes.
    cursor = 0
    class_id = 0
    for key in order:
        members = groups[key]
        bits = members[0].register_bits
        for bit in range(bits):
            residual: List[SingleBitError] = []
            for _candidate in members:
                error = errors[cursor]
                outcome = outcomes[cursor]
                cursor += 1
                if outcome is not None:
                    plan.inferred_counts.add(outcome)
                    plan.inferred_outcomes[error.key] = outcome
                else:
                    residual.append(error)
            if residual:
                plan.classes.append(
                    EquivalenceClass(
                        class_id=class_id,
                        key=key,
                        bit=bit,
                        representative=residual[0],
                        members=tuple(
                            (error.dynamic_index, error.slot) for error in residual[1:]
                        ),
                    )
                )
                class_id += 1
    return plan
