"""Exhaustive enumeration of the single-bit error space (§III-A).

A *single-bit error* is one element of the space the paper's single bit-flip
campaigns sample from: a candidate fault location (a dynamic instruction
plus, for inject-on-read, a source-operand slot) combined with one bit of the
targeted register.  :class:`ErrorSpace` streams that full space — every
candidate × every register bit — from a golden trace in a deterministic
order (dynamic index, then slot, then bit), chunked so campaigns can be
dispatched to worker pools, checkpointed and resumed without materialising
hundreds of thousands of specs at once.

The enumeration shares :meth:`repro.vm.trace.GoldenTrace.iter_register_accesses`
with the injection techniques, so the exhaustive space is *by construction*
the same space :meth:`InjectionTechnique.sample_candidate` draws from and the
same counts Table II reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.injection.faultmodel import FaultSpec, SINGLE_BIT_MAX_MBF
from repro.injection.techniques import InjectionTechnique, technique_by_name
from repro.vm.trace import GoldenTrace


@dataclass(frozen=True)
class SingleBitError:
    """One element of the exhaustive single-bit error space.

    ``(dynamic_index, slot, bit)`` fully identifies the error; ``ordinal``
    is its position in the deterministic enumeration order (used for chunk
    bookkeeping and seeded sampling).
    """

    ordinal: int
    dynamic_index: int
    #: Source-operand slot (inject-on-read) or ``None`` (inject-on-write).
    slot: Optional[int]
    bit: int
    register_bits: int
    opcode: str

    def spec(self, technique: str, *, seed: int = 0) -> FaultSpec:
        """The fully deterministic fault spec this error expands to.

        Single-bit exhaustive experiments draw nothing from the RNG — the
        bit is pinned via ``first_bit`` — so the seed only matters if the
        spec is reused for multi-bit follow-ups.
        """
        return FaultSpec(
            technique=technique,
            first_dynamic_index=self.dynamic_index,
            first_slot=self.slot,
            max_mbf=SINGLE_BIT_MAX_MBF,
            win_size=0,
            seed=seed,
            first_bit=self.bit,
        )

    @property
    def key(self):
        """Stable identity used to cross-reference plans and validations."""
        return (self.dynamic_index, self.slot, self.bit)


class ErrorSpace:
    """The full single-bit error space of one technique over one golden trace."""

    def __init__(self, technique: InjectionTechnique, trace: GoldenTrace) -> None:
        self.technique = technique
        self.trace = trace
        kind = technique.access
        self._accesses = [
            access for access in trace.iter_register_accesses() if access.kind == kind
        ]

    @property
    def candidate_count(self) -> int:
        """Number of candidate locations (Table II granularity × slots)."""
        return len(self._accesses)

    @property
    def size(self) -> int:
        """Total number of distinct single-bit errors (candidates × widths)."""
        return sum(access.bits for access in self._accesses)

    def __len__(self) -> int:
        return self.size

    def iter_errors(self) -> Iterator[SingleBitError]:
        """Stream the space in deterministic (tick, slot, bit) order."""
        ordinal = 0
        for access in self._accesses:
            for bit in range(access.bits):
                yield SingleBitError(
                    ordinal=ordinal,
                    dynamic_index=access.dynamic_index,
                    slot=access.slot,
                    bit=bit,
                    register_bits=access.bits,
                    opcode=access.opcode,
                )
                ordinal += 1

    def iter_candidate_errors(self) -> Iterator[SingleBitError]:
        """Stream one bit-0 error per candidate location.

        The planner groups candidates (bits expand uniformly within a
        class), so iterating one error per location avoids materialising
        the full ``candidates × widths`` product.
        """
        ordinal = 0
        for access in self._accesses:
            yield SingleBitError(
                ordinal=ordinal,
                dynamic_index=access.dynamic_index,
                slot=access.slot,
                bit=0,
                register_bits=access.bits,
                opcode=access.opcode,
            )
            ordinal += access.bits

    def chunks(self, chunk_size: int) -> Iterator[List[SingleBitError]]:
        """Stream the space as deterministic, contiguous chunks.

        Chunking is purely positional, so the same ``chunk_size`` always
        yields the same partition — the property resumable exhaustive
        campaigns and worker pools rely on.
        """
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be positive")
        chunk: List[SingleBitError] = []
        for error in self.iter_errors():
            chunk.append(error)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def enumerate_error_space(trace: GoldenTrace, technique) -> ErrorSpace:
    """The exhaustive single-bit error space for a technique (by name or object)."""
    if isinstance(technique, str):
        technique = technique_by_name(technique)
    return ErrorSpace(technique, trace)
