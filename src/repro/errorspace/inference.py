"""Static outcome inference: prove an error's outcome without executing it.

A single-bit inject-on-read error corrupts exactly one value consumption;
until the corruption reaches memory, control flow or output, the faulty run
is the golden run with a handful of known register deltas.  This module
replays that *dataflow slice* over the def-use index — using the decoded
program's own operation bindings, so the semantics are the VM's by
construction — and classifies the error when the slice terminates provably:

* the corruption is **masked** (every consumption produces a bit-identical
  result, e.g. ``and``-ed out, shifted out, truncated, a comparison that
  does not cross its boundary) → **Benign**;
* the corrupted value reaches a memory access whose address provably traps
  (misaligned, or outside the static segment map) or an operation that
  provably raises (division by zero, a failing ``assert``) → **Detected by
  hardware exception**;
* the corruption lands only in provably dead stores → **Benign**;
* the corruption reaches ``output`` (and nothing else) → **SDC**.

Anything else — a diverging branch, a live store, a load through a corrupted
but mapped address — returns ``None``: the error must be executed.  The
inferred outcomes are exact by construction; ``tests/test_errorspace.py``
cross-checks them against real executions, and the validation sampler here
measures the (heuristic) class-representative inheritance on top.
"""

from __future__ import annotations

import heapq
import math
import random
import struct
from typing import Dict, List, Optional, Tuple

from repro.errorspace.defuse import DefUseIndex, register_slot_position
from repro.errorspace.enumerate import SingleBitError
from repro.injection.outcome import Outcome
from repro.ir.instructions import Call, Phi
from repro.ir.types import FloatType
from repro.ir.values import Constant, GlobalVariable
from repro.vm import bitops
from repro.vm.faults import HardwareFault

#: Sentinel: the slice reached an effect we cannot model statically.
_GIVE_UP = object()


class _FakeVM:
    """Minimal stand-in passed to decoded operation bindings.

    The bindings only touch ``dynamic_index`` (to stamp the faults they
    raise); anything else they might reach for is deliberately absent so an
    unexpected dependency fails loudly instead of inferring nonsense.
    """

    __slots__ = ("dynamic_index",)

    def __init__(self, dynamic_index: int) -> None:
        self.dynamic_index = dynamic_index


class OutcomeInference:
    """Forward slice replay over one workload's def-use index."""

    def __init__(self, index: DefUseIndex) -> None:
        self.index = index
        self._dins = self._decoded_table()
        # def tick -> def id for instruction-produced defs.  Parameter
        # bindings share their call's tick but are reached through
        # call_params, so they are excluded; every remaining tick carries at
        # most one def (call results are keyed by their ret tick).
        from repro.errorspace.defuse import PARAM_SITE

        self._def_at_tick: Dict[int, int] = {}
        for event in index.defs:
            if event.tick >= 0 and PARAM_SITE not in event.site:
                self._def_at_tick[event.tick] = event.def_id

    def _decoded_table(self) -> Dict[Tuple[str, int], object]:
        table: Dict[Tuple[str, int], object] = {}
        for name, dfunc in self.index.decoded.functions.items():
            for block in dfunc.blocks:
                for din in block.code:
                    table[(name, din.meta.static_index)] = din
                for moves, _failure in block.phi_edges.values():
                    for _op, phi_din in moves:
                        table[(name, phi_din.meta.static_index)] = phi_din
        return table

    def _din(self, instruction):
        function = instruction.parent.parent.name
        return self._dins.get((function, instruction.static_index))

    # -- public API -----------------------------------------------------------------
    def infer(self, error: SingleBitError) -> Optional[Outcome]:
        """The provable outcome of one error, or ``None`` (must execute)."""
        index = self.index
        key = (error.dynamic_index, error.slot)
        if error.slot is None or key in index.deferred_reads:
            return None
        def_id = index.read_def.get(key)
        if def_id is None:
            return None
        event = index.defs[def_id]
        if event.value is None:
            return None
        register = event.register
        try:
            width = bitops.bit_width(register.type)
            if error.bit >= width:
                return None
            corrupted = bitops.canonicalize(
                bitops.flip_bit(event.value, register.type, error.bit), register.type
            )
            if bitops.value_to_bits(corrupted, register.type) == bitops.value_to_bits(
                event.value, register.type
            ):
                # The flip is collapsed by value canonicalization (e.g. a NaN
                # payload): the consumed value is bit-identical to golden.
                return Outcome.BENIGN
        except (TypeError, ValueError):
            return None
        return self._replay(error.dynamic_index, error.slot, corrupted)

    # -- slice replay ----------------------------------------------------------------

    #: Bail out of slices whose corruption cone keeps growing — the error is
    #: executed instead.  Keeps worst-case inference cost bounded: measured
    #: on crc32, every productive slice (masked flip, trapping address, dead
    #: store, short output chain) settles within ~10 steps, while cones that
    #: keep spreading through hot memory essentially never conclude.
    MAX_STEPS = 48

    def _replay(self, tick: int, slot: int, corrupted) -> Optional[Outcome]:
        index = self.index
        instruction = index.instructions[tick]
        position = register_slot_position(instruction, slot)
        if position is None:
            return None
        injected: Dict[int, object] = {position: corrupted}
        self._dirty_map: Dict[int, object] = {}
        #: byte address -> (faulty value, valid-until golden-write tick).
        self._dirty_mem: Dict[int, Tuple[int, float]] = {}
        self._heap: List[int] = [tick]
        self._scheduled = {tick}
        output_corrupted = False
        steps = 0
        while self._heap:
            steps += 1
            if steps > self.MAX_STEPS:
                return None
            current = heapq.heappop(self._heap)
            instr = index.instructions[current]
            overrides = injected if current == tick else None
            self._newly_dirty: List[int] = []
            result = self._step(current, instr, self._dirty_map, overrides)
            if result is _GIVE_UP:
                return None
            if isinstance(result, Outcome):
                return result
            if result is True:
                output_corrupted = True
            # schedule uses of any defs newly dirtied by this step
            for def_id in self._newly_dirty:
                for use_tick in index.defs[def_id].use_ticks:
                    self._schedule(use_tick)
        return Outcome.SDC if output_corrupted else Outcome.BENIGN

    def _schedule(self, tick: int) -> None:
        if tick not in self._scheduled:
            self._scheduled.add(tick)
            heapq.heappush(self._heap, tick)

    def _operand_values(self, current: int, instr, dirty, overrides):
        """(values, dirty_positions) of every operand at this instance.

        Returns ``None`` when any needed golden value is unknown.
        """
        index = self.index
        operand_defs = index.operand_defs[current]
        values: List = []
        dirty_positions: List[int] = []
        for pos, operand in enumerate(instr.operands):
            if overrides and pos in overrides:
                values.append(overrides[pos])
                dirty_positions.append(pos)
                continue
            def_id = operand_defs[pos] if pos < len(operand_defs) else None
            if def_id is not None and def_id in dirty:
                values.append(dirty[def_id])
                dirty_positions.append(pos)
                continue
            values.append(self._golden_operand(current, instr, pos))
        return values, dirty_positions

    def _golden_operand(self, current: int, instr, pos: int):
        operand = instr.operands[pos]
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, GlobalVariable):
            return self.index.global_addresses.get(operand.name)
        def_id = self.index.operand_defs[current][pos]
        if def_id is not None:
            return self.index.defs[def_id].value
        return None

    def _mark_dirty(self, current: int, value) -> bool:
        """Record the instruction-at-``current``'s result as corrupted.

        Returns False when the result def cannot be identified (give up).
        """
        def_id = self._def_at_tick.get(current)
        if def_id is None:
            return False
        if self.index.defs[def_id].value is None:
            return False
        return self._mark_dirty_def(def_id, value)

    def _step(self, current: int, instr, dirty, overrides):
        """Evaluate one dynamic instruction with corrupted inputs.

        Returns ``_GIVE_UP``, an :class:`Outcome` (the run provably ends in
        it), ``True`` (output corrupted, run continues) or ``None``.
        """
        index = self.index
        opcode = instr.opcode

        if isinstance(instr, Phi):
            return self._step_phi(current, instr, dirty)

        gathered = self._operand_values(current, instr, dirty, overrides)
        values, dirty_positions = gathered
        if not dirty_positions and opcode != "load":
            return None  # corruption did not reach this instance after all
        if any(values[pos] is None for pos in range(len(values))):
            return _GIVE_UP

        din = self._din(instr)
        if din is None:
            return _GIVE_UP
        vm = _FakeVM(current + 1)

        if opcode == "store":
            return self._step_store(current, din, values, dirty_positions)
        if opcode == "load":
            return self._step_load(current, din, values, dirty_positions)
        if isinstance(instr, Call):
            return self._step_call(current, instr, din, values, dirty_positions, vm)
        if opcode == "ret":
            return self._step_ret(current, din, values)
        if opcode == "br.cond":
            golden = self._golden_operand(current, instr, 0)
            if golden is None:
                return _GIVE_UP
            return None if bool(values[0]) == bool(golden) else _GIVE_UP
        if opcode == "select":
            return self._step_select(current, instr, din, values)
        if opcode == "getelementptr":
            address = (int(values[0]) + int(values[1]) * din.stride) & ((1 << 64) - 1)
            return None if self._mark_dirty(current, address) else _GIVE_UP
        if opcode.startswith("icmp") or opcode.startswith("fcmp"):
            lhs, rhs = values[0], values[1]
            to_unsigned = din.to_unsigned
            if to_unsigned is not None:
                lhs = to_unsigned(int(lhs))
                rhs = to_unsigned(int(rhs))
            if (isinstance(lhs, float) and math.isnan(lhs)) or (
                isinstance(rhs, float) and math.isnan(rhs)
            ):
                result = din.nan_flag
            else:
                result = din.compare_fn(lhs, rhs)
            return None if self._mark_dirty(current, 1 if result else 0) else _GIVE_UP
        if din.operation is not None and len(values) == 1:  # casts
            try:
                result = din.canon(din.operation(values[0]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        if din.operation is not None and len(values) == 2:  # binops
            result_type = instr.destination().type if instr.destination() else None
            try:
                if isinstance(result_type, FloatType):
                    result = din.canon(din.operation(float(values[0]), float(values[1])))
                else:
                    result = din.operation(vm, int(values[0]), int(values[1]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError, ZeroDivisionError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        return _GIVE_UP

    def _step_phi(self, current: int, instr, dirty):
        index = self.index
        operand_defs = index.operand_defs[current]
        incoming_value = None
        for pos, def_id in enumerate(operand_defs):
            if def_id is not None and def_id in dirty:
                incoming_value = dirty[def_id]
                break
        if incoming_value is None:
            return None
        try:
            value = bitops.canonicalize(incoming_value, instr.type)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _step_store(self, current: int, din, values, dirty_positions):
        index = self.index
        # The decoded store binds value_type + storer but not mem_size.
        size = din.value_type.size_bytes() if din.value_type is not None else 0
        if din.storer is None or size == 0:
            return _GIVE_UP
        span = index.store_span.get(current)
        if span is None:
            return _GIVE_UP
        golden_address = span[0]
        faulty_address = int(values[1])
        if 1 in dirty_positions and index.address_fault(
            faulty_address, din.mem_align, size
        ):
            return Outcome.DETECTED_HW_EXCEPTION
        if 1 not in dirty_positions and index.store_is_dead(current):
            # Fast path: the corrupted value lands only in dead bytes.
            return None
        try:
            payload = din.storer(values[0])
        except (TypeError, ValueError, OverflowError):
            return _GIVE_UP
        # The faulty run writes `payload` at faulty_address; the bytes of the
        # golden store that the faulty one does not cover keep their
        # pre-store content (the "missing write").
        for offset in range(size):
            if not self._mark_dirty_byte(
                current, faulty_address + offset, payload[offset]
            ):
                return _GIVE_UP
        if faulty_address != golden_address:
            for offset in range(size):
                byte = golden_address + offset
                if faulty_address <= byte < faulty_address + size:
                    continue
                # The golden store covered this byte but the faulty one does
                # not: the byte keeps the *faulty run's* pre-store content —
                # an earlier dirty value if one is still live, else golden.
                entry = self._dirty_mem.get(byte)
                if entry is not None and current < entry[1]:
                    stale = entry[0]
                else:
                    stale = index.golden_content(byte, current)
                if stale is None or not self._mark_dirty_byte(current, byte, stale):
                    return _GIVE_UP
        return None

    def _mark_dirty_byte(self, current: int, byte: int, faulty_value: int) -> bool:
        """Record one faulty memory byte; schedule the golden reads of it."""
        index = self.index
        golden_after = index.golden_content(byte, current + 1)
        if golden_after is None:
            return False
        valid_until = index.next_write_after(byte, current)
        if faulty_value == golden_after:
            self._dirty_mem.pop(byte, None)
            return True
        self._dirty_mem[byte] = (faulty_value, valid_until)
        for read_tick in index.read_ticks_between(byte, current, valid_until):
            self._schedule(read_tick)
        return True

    def _step_load(self, current: int, din, values, dirty_positions):
        index = self.index
        size = din.mem_size
        if din.loader is None or size == 0:
            return _GIVE_UP
        address = int(values[0])
        if 0 in dirty_positions and index.address_fault(address, din.mem_align, size):
            return Outcome.DETECTED_HW_EXCEPTION
        raw = bytearray(size)
        for offset in range(size):
            byte = address + offset
            entry = self._dirty_mem.get(byte)
            if entry is not None and current < entry[1]:
                raw[offset] = entry[0]
            else:
                content = index.golden_content(byte, current)
                if content is None:
                    return _GIVE_UP
                raw[offset] = content
        try:
            value = din.loader(bytes(raw))
        except (struct.error, TypeError, ValueError, OverflowError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _step_call(self, current: int, instr, din, values, dirty_positions, vm):
        index = self.index
        if instr.is_intrinsic or din.callee is None:
            name = instr.callee_name
            if name == "__output":
                return True
            if name == "__assert":
                golden = self._golden_operand(current, instr, 0)
                if golden is None:
                    return _GIVE_UP
                if bool(values[0]) and bool(golden):
                    return None
                return Outcome.DETECTED_HW_EXCEPTION
            if name == "__exit":
                try:
                    int(values[0]) if values else 0
                except (TypeError, ValueError, OverflowError):
                    return _GIVE_UP
                return None
            if din.intrinsic_fn is not None and name not in ("__malloc", "__abort"):
                try:
                    result = din.intrinsic_fn(vm, values)
                    if instr.destination() is not None:
                        result = din.canon(result if result is not None else 0)
                except HardwareFault:
                    return Outcome.DETECTED_HW_EXCEPTION
                except (TypeError, ValueError, OverflowError, AttributeError):
                    return _GIVE_UP
                if instr.destination() is None:
                    return _GIVE_UP  # unknown side effects
                return None if self._mark_dirty(current, result) else _GIVE_UP
            return _GIVE_UP
        # direct call into the module: corrupted arguments become corrupted
        # parameter bindings of the callee activation
        params = index.call_params.get(current)
        if params is None:
            return _GIVE_UP
        for pos in dirty_positions:
            if pos >= len(params):
                return _GIVE_UP
            event = index.defs[params[pos]]
            if event.value is None:
                return _GIVE_UP
            try:
                value = bitops.canonicalize(values[pos], event.register.type)
                same = bitops.value_to_bits(value, event.register.type) == bitops.value_to_bits(
                    event.value, event.register.type
                )
            except (TypeError, ValueError):
                return _GIVE_UP
            if not same:
                self._dirty_map[params[pos]] = value
                self._newly_dirty.append(params[pos])
        return None

    def _step_ret(self, current: int, din, values):
        index = self.index
        target = index.ret_target.get(current)
        if target is None:
            # Top-level return (or a call whose result is discarded): the
            # return value is not part of the compared program output.
            return None
        event = index.defs[target]
        if event.value is None or not values:
            return _GIVE_UP
        try:
            value = bitops.canonicalize(values[0], din.ret_type)
            value = bitops.canonicalize(value, event.register.type)
        except (TypeError, ValueError):
            return _GIVE_UP
        if not self._mark_dirty_def(target, value):
            return _GIVE_UP
        return None

    def _mark_dirty_def(self, def_id: int, value) -> bool:
        event = self.index.defs[def_id]
        try:
            same = bitops.value_to_bits(value, event.register.type) == bitops.value_to_bits(
                event.value, event.register.type
            )
        except (TypeError, ValueError):
            return False
        if not same:
            self._dirty_map[def_id] = value
            self._newly_dirty.append(def_id)
        return True

    def _step_select(self, current: int, instr, din, values):
        condition = values[0]
        chosen = values[1] if condition else values[2]
        if chosen is None:
            return _GIVE_UP
        try:
            result = din.canon(chosen)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, result) else _GIVE_UP


def infer_outcome(index: DefUseIndex, error: SingleBitError) -> Optional[Outcome]:
    """Convenience wrapper: infer one error against a fresh engine."""
    return OutcomeInference(index).infer(error)


def validation_sample(
    population: List,
    fraction: float,
    seed: int,
    *,
    max_samples: int = 2000,
) -> List:
    """Deterministic sample of non-representative members to re-execute."""
    if not population or fraction <= 0.0:
        return []
    count = min(max(1, int(len(population) * fraction)), max_samples, len(population))
    rng = random.Random(seed)
    return rng.sample(population, count)
