"""Static outcome inference: prove an error's outcome without executing it.

A single-bit inject-on-read error corrupts exactly one value consumption;
until the corruption reaches memory, control flow or output, the faulty run
is the golden run with a handful of known register deltas.  This module
replays that *dataflow slice* over the def-use index — using the decoded
program's own operation bindings, so the semantics are the VM's by
construction — and classifies the error when the slice terminates provably:

* the corruption is **masked** (every consumption produces a bit-identical
  result, e.g. ``and``-ed out, shifted out, truncated, a comparison that
  does not cross its boundary) → **Benign**;
* the corrupted value reaches a memory access whose address provably traps
  (misaligned, or outside the static segment map) or an operation that
  provably raises (division by zero, a failing ``assert``) → **Detected by
  hardware exception**;
* the corruption lands only in provably dead stores → **Benign**;
* the corruption reaches ``output`` (and nothing else) → **SDC**.

Anything else — a diverging branch, a live store, a load through a corrupted
but mapped address — returns ``None``: the error must be executed.  The
inferred outcomes are exact by construction; ``tests/test_errorspace.py``
cross-checks them against real executions, and
``tests/test_columnar_differential.py`` proves this engine bit-identical to
the frozen object-based reference in :mod:`repro.errorspace.reference`.

The engine is the hot loop of campaign planning (hundreds of thousands of
``infer`` calls per workload), so everything derivable from the golden run
alone is settled up front into flat per-tick columns: a dispatch-kind byte
per tick, the decoded instruction per tick, the golden operand values per
tick, the instruction-def id per tick, and per-def bit patterns.  The
per-step work left is index arithmetic, one dict probe per dirty operand,
and single bisects into the def-use index's per-byte memory columns.
"""

from __future__ import annotations

import heapq
import math
import random
import struct
from array import array
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.errorspace.defuse import DefUseIndex, PARAM_SITE, register_slot_position
from repro.errorspace.enumerate import SingleBitError
from repro.injection.outcome import Outcome
from repro.ir.instructions import Call, Phi
from repro.ir.types import FloatType, IntType, PointerType
from repro.ir.values import Constant, GlobalVariable
from repro.vm import bitops
from repro.vm.faults import HardwareFault

#: Sentinel: the slice reached an effect we cannot model statically.
_GIVE_UP = object()

_INF = float("inf")
_MASK64 = (1 << 64) - 1

# Per-tick dispatch kinds (precomputed once per engine).
_K_GIVEUP = 0
_K_PHI = 1
_K_STORE = 2
_K_LOAD = 3
_K_CALL = 4
_K_RET = 5
_K_BRCOND = 6
_K_SELECT = 7
_K_GEP = 8
_K_CMP = 9
_K_CAST = 10
_K_BINOP_INT = 11
_K_BINOP_FLOAT = 12

# Per-def value modes for the flip/compare fast paths.
_MODE_INT = 1
_MODE_PTR = 2
_MODE_FLOAT = 3


class _FakeVM:
    """Minimal stand-in passed to decoded operation bindings.

    The bindings only touch ``dynamic_index`` (to stamp the faults they
    raise); anything else they might reach for is deliberately absent so an
    unexpected dependency fails loudly instead of inferring nonsense.
    """

    __slots__ = ("dynamic_index",)

    def __init__(self, dynamic_index: int) -> None:
        self.dynamic_index = dynamic_index


class OutcomeInference:
    """Forward slice replay over one workload's def-use index."""

    def __init__(self, index: DefUseIndex) -> None:
        self.index = index
        self._dins = self._decoded_table()
        instructions = index.instructions
        n = len(instructions)
        # tick -> def id of the instruction-produced def (-1 when none).
        # Parameter bindings share their call's tick but are reached through
        # call_params, so they are excluded; every remaining tick carries at
        # most one def (call results are keyed by their ret tick).
        def_at_tick = array("q", [-1]) * n
        def_site = index.def_site
        def_tick = index.def_tick
        for def_id in range(len(def_site)):
            tick = def_tick[def_id]
            if tick >= 0 and PARAM_SITE not in def_site[def_id]:
                def_at_tick[tick] = def_id
        self._def_at_tick = def_at_tick
        # Per-tick columns: decoded instruction, dispatch kind, golden
        # operand values (a tuple aligned with instruction.operands).
        din_by_tick: List = [None] * n
        kind_by_tick = bytearray(n)
        golden_ops: List[Tuple] = [None] * n
        operand_defs = index.operand_defs
        def_value = index.def_value
        global_addresses = index.global_addresses
        for tick in range(n):
            instr = instructions[tick]
            din = self._din(instr)
            din_by_tick[tick] = din
            kind_by_tick[tick] = self._classify(instr, din)
            od = operand_defs[tick]
            values = []
            for pos, operand in enumerate(instr.operands):
                if isinstance(operand, Constant):
                    values.append(operand.value)
                elif isinstance(operand, GlobalVariable):
                    values.append(global_addresses.get(operand.name))
                else:
                    def_id = od[pos] if pos < len(od) else None
                    values.append(def_value[def_id] if def_id is not None else None)
            golden_ops[tick] = tuple(values)
        self._din_by_tick = din_by_tick
        self._kind_by_tick = kind_by_tick
        self._golden_ops = golden_ops
        # Per-def flip info, computed lazily: (width, golden_bits, mode) or
        # None when the def's value cannot be bit-addressed.
        self._def_info: List = [False] * len(def_site)
        # Per-def compare mode: 0 unknown, 1 canonical-int fast path, 2 slow.
        self._def_cmp = bytearray(len(def_site))
        self._vm = _FakeVM(0)
        # Lazy per-tick golden-memory caches (see _store_fast/_load_fast):
        # everything the byte log says about a store's or load's golden span
        # is a pure function of the tick, so it is bisected once and reused
        # by every error whose slice crosses that tick.
        self._store_fast: Dict[int, Optional[Tuple]] = {}
        self._load_fast: Dict[int, Optional[bytes]] = {}

    @staticmethod
    def _classify(instr, din) -> int:
        if din is None:
            return _K_GIVEUP
        if isinstance(instr, Phi):
            return _K_PHI
        opcode = instr.opcode
        if opcode == "store":
            return _K_STORE
        if opcode == "load":
            return _K_LOAD
        if isinstance(instr, Call):
            return _K_CALL
        if opcode == "ret":
            return _K_RET
        if opcode == "br.cond":
            return _K_BRCOND
        if opcode == "select":
            return _K_SELECT
        if opcode == "getelementptr":
            return _K_GEP
        if opcode.startswith("icmp") or opcode.startswith("fcmp"):
            return _K_CMP
        if din.operation is not None and len(instr.operands) == 1:
            return _K_CAST
        if din.operation is not None and len(instr.operands) == 2:
            destination = instr.destination()
            if destination is not None and isinstance(destination.type, FloatType):
                return _K_BINOP_FLOAT
            return _K_BINOP_INT
        return _K_GIVEUP

    def _decoded_table(self) -> Dict[Tuple[str, int], object]:
        table: Dict[Tuple[str, int], object] = {}
        for name, dfunc in self.index.decoded.functions.items():
            for block in dfunc.blocks:
                for din in block.code:
                    table[(name, din.meta.static_index)] = din
                for moves, _failure in block.phi_edges.values():
                    for _op, phi_din in moves:
                        table[(name, phi_din.meta.static_index)] = phi_din
        return table

    def _din(self, instruction):
        function = instruction.parent.parent.name
        return self._dins.get((function, instruction.static_index))

    # -- per-def precomputation -------------------------------------------------------
    def _flip_info(self, def_id: int):
        """(width, golden bit pattern, mode) of one def's value, or None."""
        info = self._def_info[def_id]
        if info is not False:
            return info
        value = self.index.def_value[def_id]
        info = None
        if value is not None:
            rtype = self.index.def_register[def_id].type
            try:
                width = bitops.bit_width(rtype)
                golden_bits = bitops.value_to_bits(value, rtype)
                if isinstance(rtype, IntType):
                    mode = _MODE_INT
                elif isinstance(rtype, PointerType):
                    mode = _MODE_PTR
                else:
                    mode = _MODE_FLOAT
                info = (width, golden_bits, mode, rtype)
            except (TypeError, ValueError):
                info = None
        self._def_info[def_id] = info
        return info

    def _cmp_mode(self, def_id: int) -> int:
        """1 when plain ``==`` of canonical ints equals bit comparison."""
        mode = self._def_cmp[def_id]
        if mode:
            return mode
        golden = self.index.def_value[def_id]
        rtype = self.index.def_register[def_id].type
        mode = 2
        if type(golden) is int and isinstance(rtype, (IntType, PointerType)):
            try:
                # Canonical iff the bit pattern round-trips to the same int;
                # then equality of canonical ints == equality of patterns.
                if bitops.bits_to_value(bitops.value_to_bits(golden, rtype), rtype) == golden:
                    mode = 1
            except (TypeError, ValueError):
                mode = 2
        self._def_cmp[def_id] = mode
        return mode

    # -- public API -----------------------------------------------------------------
    def infer(self, error: SingleBitError) -> Optional[Outcome]:
        """The provable outcome of one error, or ``None`` (must execute)."""
        index = self.index
        slot = error.slot
        key = (error.dynamic_index, slot)
        if slot is None or key in index.deferred_reads:
            return None
        def_id = index.read_def.get(key)
        if def_id is None:
            return None
        info = self._flip_info(def_id)
        if info is None:
            return None
        width, golden_bits, mode, rtype = info
        bit = error.bit
        if bit >= width:
            return None
        flipped = golden_bits ^ (1 << bit)
        if mode == _MODE_INT:
            corrupted = rtype.wrap(flipped)
        elif mode == _MODE_PTR:
            corrupted = flipped & _MASK64
        else:
            try:
                corrupted = bitops.canonicalize(
                    bitops.bits_to_float(flipped, width), rtype
                )
                if bitops.float_to_bits(corrupted, width) == golden_bits:
                    # The flip is collapsed by value canonicalization (e.g. a
                    # NaN payload): the consumed value is bit-identical to
                    # golden.
                    return Outcome.BENIGN
            except (TypeError, ValueError):
                return None
        return self._replay(error.dynamic_index, slot, corrupted)

    # -- slice replay ----------------------------------------------------------------

    #: Bail out of slices whose corruption cone keeps growing — the error is
    #: executed instead.  Keeps worst-case inference cost bounded: measured
    #: on crc32, every productive slice (masked flip, trapping address, dead
    #: store, short output chain) settles within ~10 steps, while cones that
    #: keep spreading through hot memory essentially never conclude.
    MAX_STEPS = 48

    def _replay(self, tick: int, slot: int, corrupted) -> Optional[Outcome]:
        index = self.index
        position = register_slot_position(index.instructions[tick], slot)
        if position is None:
            return None
        dirty: Dict[int, object] = {}
        self._dirty_map = dirty
        #: byte address -> (faulty value, valid-until golden-write tick).
        self._dirty_mem: Dict[int, Tuple[int, float]] = {}
        heap: List[int] = [tick]
        self._heap = heap
        self._scheduled = {tick}
        output_corrupted = False
        steps = 0
        max_steps = self.MAX_STEPS
        kinds = self._kind_by_tick
        dins = self._din_by_tick
        golden_ops = self._golden_ops
        operand_defs = index.operand_defs
        use_offsets = index.use_offsets
        use_ticks = index.use_ticks_flat
        heappop = heapq.heappop
        heappush = heapq.heappush
        scheduled = self._scheduled
        def_at_tick = self._def_at_tick
        def_value = index.def_value
        def_cmp = self._def_cmp
        vm = self._vm
        while heap:
            steps += 1
            if steps > max_steps:
                return None
            current = heappop(heap)
            kind = kinds[current]
            newly_dirty: List[int] = []
            self._newly_dirty = newly_dirty

            if kind == _K_PHI:
                result = self._step_phi(current, dirty)
            else:
                # Gather operand values: golden columns overlaid with dirty
                # defs and (at the injection tick) the corrupted operand —
                # ascending position order, matching the reference engine.
                values = list(golden_ops[current])
                dirty_positions: List[int] = []
                od = operand_defs[current]
                ov_pos = position if current == tick else -1
                for pos in range(len(values)):
                    if pos == ov_pos:
                        values[pos] = corrupted
                        dirty_positions.append(pos)
                        continue
                    def_id = od[pos]
                    if def_id is not None and def_id in dirty:
                        values[pos] = dirty[def_id]
                        dirty_positions.append(pos)
                if not dirty_positions and kind != _K_LOAD:
                    result = None  # corruption did not reach this instance
                elif None in values:
                    return None
                elif kind == _K_GIVEUP:
                    return None
                elif kind == _K_BINOP_INT:
                    # Inlined hot arm: integer binop + canonical-int compare.
                    din = dins[current]
                    vm.dynamic_index = current + 1
                    try:
                        value = din.operation(vm, int(values[0]), int(values[1]))
                    except HardwareFault:
                        return Outcome.DETECTED_HW_EXCEPTION
                    except (TypeError, ValueError, OverflowError, ZeroDivisionError):
                        return None
                    def_id = def_at_tick[current]
                    if def_id < 0:
                        return None
                    golden = def_value[def_id]
                    if golden is None:
                        return None
                    if type(value) is int and (
                        def_cmp[def_id] or self._cmp_mode(def_id)
                    ) == 1:
                        if value != golden:
                            dirty[def_id] = value
                            newly_dirty.append(def_id)
                    elif not self._mark_dirty_def(def_id, value):
                        return None
                    result = None
                elif kind == _K_CMP:
                    # Inlined hot arm: compares produce 0/1 into an i1 def.
                    din = dins[current]
                    lhs, rhs = values[0], values[1]
                    to_unsigned = din.to_unsigned
                    if to_unsigned is not None:
                        lhs = to_unsigned(int(lhs))
                        rhs = to_unsigned(int(rhs))
                    if (isinstance(lhs, float) and math.isnan(lhs)) or (
                        isinstance(rhs, float) and math.isnan(rhs)
                    ):
                        flag = din.nan_flag
                    else:
                        flag = din.compare_fn(lhs, rhs)
                    value = 1 if flag else 0
                    def_id = def_at_tick[current]
                    if def_id < 0:
                        return None
                    golden = def_value[def_id]
                    if golden is None:
                        return None
                    if (def_cmp[def_id] or self._cmp_mode(def_id)) == 1:
                        if value != golden:
                            dirty[def_id] = value
                            newly_dirty.append(def_id)
                    elif not self._mark_dirty_def(def_id, value):
                        return None
                    result = None
                else:
                    result = self._dispatch(
                        kind, current, dins[current], values, dirty_positions
                    )
            if result is _GIVE_UP:
                return None
            if result is not None:
                if result is True:
                    output_corrupted = True
                else:
                    return result
            # schedule uses of any defs newly dirtied by this step
            for def_id in newly_dirty:
                for use_tick in use_ticks[use_offsets[def_id] : use_offsets[def_id + 1]]:
                    if use_tick not in scheduled:
                        scheduled.add(use_tick)
                        heappush(heap, use_tick)
        return Outcome.SDC if output_corrupted else Outcome.BENIGN

    def _schedule(self, tick: int) -> None:
        scheduled = self._scheduled
        if tick not in scheduled:
            scheduled.add(tick)
            heapq.heappush(self._heap, tick)

    def _dispatch(self, kind, current, din, values, dirty_positions):
        """Evaluate one dynamic instruction with corrupted inputs.

        Returns ``_GIVE_UP``, an :class:`Outcome` (the run provably ends in
        it), ``True`` (output corrupted, run continues) or ``None``.
        """
        if kind == _K_BINOP_INT:
            vm = self._vm
            vm.dynamic_index = current + 1
            try:
                result = din.operation(vm, int(values[0]), int(values[1]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError, ZeroDivisionError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        if kind == _K_CMP:
            lhs, rhs = values[0], values[1]
            to_unsigned = din.to_unsigned
            if to_unsigned is not None:
                lhs = to_unsigned(int(lhs))
                rhs = to_unsigned(int(rhs))
            if (isinstance(lhs, float) and math.isnan(lhs)) or (
                isinstance(rhs, float) and math.isnan(rhs)
            ):
                result = din.nan_flag
            else:
                result = din.compare_fn(lhs, rhs)
            return None if self._mark_dirty(current, 1 if result else 0) else _GIVE_UP
        if kind == _K_STORE:
            return self._step_store(current, din, values, dirty_positions)
        if kind == _K_LOAD:
            return self._step_load(current, din, values, dirty_positions)
        if kind == _K_GEP:
            address = (int(values[0]) + int(values[1]) * din.stride) & _MASK64
            return None if self._mark_dirty(current, address) else _GIVE_UP
        if kind == _K_CALL:
            return self._step_call(current, din, values, dirty_positions)
        if kind == _K_RET:
            return self._step_ret(current, din, values)
        if kind == _K_BRCOND:
            golden = self._golden_ops[current][0]
            if golden is None:
                return _GIVE_UP
            return None if bool(values[0]) == bool(golden) else _GIVE_UP
        if kind == _K_SELECT:
            return self._step_select(current, din, values)
        if kind == _K_CAST:
            try:
                result = din.canon(din.operation(values[0]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        # _K_BINOP_FLOAT
        try:
            result = din.canon(din.operation(float(values[0]), float(values[1])))
        except HardwareFault:
            return Outcome.DETECTED_HW_EXCEPTION
        except (TypeError, ValueError, OverflowError, ZeroDivisionError):
            return _GIVE_UP
        return None if self._mark_dirty(current, result) else _GIVE_UP

    def _mark_dirty(self, current: int, value) -> bool:
        """Record the instruction-at-``current``'s result as corrupted.

        Returns False when the result def cannot be identified (give up).
        """
        def_id = self._def_at_tick[current]
        if def_id < 0:
            return False
        if self.index.def_value[def_id] is None:
            return False
        return self._mark_dirty_def(def_id, value)

    def _mark_dirty_def(self, def_id: int, value) -> bool:
        golden = self.index.def_value[def_id]
        if type(value) is int and self._cmp_mode(def_id) == 1:
            same = value == golden
        else:
            rtype = self.index.def_register[def_id].type
            try:
                same = bitops.value_to_bits(value, rtype) == bitops.value_to_bits(
                    golden, rtype
                )
            except (TypeError, ValueError):
                return False
        if not same:
            self._dirty_map[def_id] = value
            self._newly_dirty.append(def_id)
        return True

    def _step_phi(self, current: int, dirty):
        index = self.index
        operand_defs = index.operand_defs[current]
        incoming_value = None
        for def_id in operand_defs:
            if def_id is not None and def_id in dirty:
                incoming_value = dirty[def_id]
                break
        if incoming_value is None:
            return None
        instr = index.instructions[current]
        try:
            value = bitops.canonicalize(incoming_value, instr.type)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _build_store_fast(self, current: int, din):
        """Per-store-tick cache: (storer, align, size, address, spans, dead).

        ``spans`` holds, per stored byte, everything the generic
        :meth:`_mark_dirty_byte` would bisect out of the byte log at this
        tick: ``(byte, golden byte after the store, tick of the next golden
        write, read ticks until then)``.  None caches "this store cannot be
        fast-pathed" (missing span/storer — the generic path gives up).
        """
        index = self.index
        size = din.value_type.size_bytes() if din.value_type is not None else 0
        span = index.store_span.get(current)
        fast: Optional[Tuple] = None
        if din.storer is not None and size and span is not None:
            golden_address = span[0]
            spans = []
            for offset in range(size):
                byte = golden_address + offset
                log = index._byte_logs.get(byte)
                if log is None:
                    spans = None
                    break
                write_ticks = log.write_ticks
                pos = bisect_right(write_ticks, current)
                if pos == 0:
                    spans = None
                    break
                golden_after = log.write_values[pos - 1]
                valid_until = (
                    write_ticks[pos] if pos < len(write_ticks) else _INF
                )
                reads = log.read_ticks
                lo = bisect_right(reads, current)
                pending = []
                for read_position in range(lo, len(reads)):
                    read_tick = reads[read_position]
                    if read_tick >= valid_until:
                        break
                    pending.append(read_tick)
                spans.append((byte, golden_after, valid_until, tuple(pending)))
            if spans is not None:
                fast = (
                    din.storer,
                    din.mem_align,
                    size,
                    golden_address,
                    tuple(spans),
                    current in index.dead_stores,
                )
        self._store_fast[current] = fast
        return fast

    def _step_store(self, current: int, din, values, dirty_positions):
        fast = self._store_fast.get(current, False)
        if fast is False:
            fast = self._build_store_fast(current, din)
        if fast is None:
            return self._step_store_slow(current, din, values, dirty_positions)
        storer, align, size, golden_address, spans, is_dead = fast
        if 1 in dirty_positions:
            # Corrupted address: fall back to the generic byte-log walk
            # (fault check, arbitrary target bytes, missing-write handling).
            return self._step_store_slow(current, din, values, dirty_positions)
        if is_dead:
            # Fast path: the corrupted value lands only in dead bytes.
            return None
        try:
            payload = storer(values[0])
        except (TypeError, ValueError, OverflowError):
            return _GIVE_UP
        dirty_mem = self._dirty_mem
        heap = self._heap
        scheduled = self._scheduled
        heappush = heapq.heappush
        for offset in range(size):
            byte, golden_after, valid_until, reads = spans[offset]
            faulty_value = payload[offset]
            if faulty_value == golden_after:
                dirty_mem.pop(byte, None)
                continue
            dirty_mem[byte] = (faulty_value, valid_until)
            for read_tick in reads:
                if read_tick not in scheduled:
                    scheduled.add(read_tick)
                    heappush(heap, read_tick)
        return None

    def _step_store_slow(self, current: int, din, values, dirty_positions):
        index = self.index
        # The decoded store binds value_type + storer but not mem_size.
        size = din.value_type.size_bytes() if din.value_type is not None else 0
        if din.storer is None or size == 0:
            return _GIVE_UP
        span = index.store_span.get(current)
        if span is None:
            return _GIVE_UP
        golden_address = span[0]
        faulty_address = int(values[1])
        address_dirty = 1 in dirty_positions
        if address_dirty and index.address_fault(faulty_address, din.mem_align, size):
            return Outcome.DETECTED_HW_EXCEPTION
        if not address_dirty and current in index.dead_stores:
            # Fast path: the corrupted value lands only in dead bytes.
            return None
        try:
            payload = din.storer(values[0])
        except (TypeError, ValueError, OverflowError):
            return _GIVE_UP
        # The faulty run writes `payload` at faulty_address; the bytes of the
        # golden store that the faulty one does not cover keep their
        # pre-store content (the "missing write").
        mark = self._mark_dirty_byte
        for offset in range(size):
            if not mark(current, faulty_address + offset, payload[offset]):
                return _GIVE_UP
        if faulty_address != golden_address:
            dirty_mem = self._dirty_mem
            for offset in range(size):
                byte = golden_address + offset
                if faulty_address <= byte < faulty_address + size:
                    continue
                # The golden store covered this byte but the faulty one does
                # not: the byte keeps the *faulty run's* pre-store content —
                # an earlier dirty value if one is still live, else golden.
                entry = dirty_mem.get(byte)
                if entry is not None and current < entry[1]:
                    stale = entry[0]
                else:
                    stale = index.golden_content(byte, current)
                if stale is None or not mark(current, byte, stale):
                    return _GIVE_UP
        return None

    def _mark_dirty_byte(self, current: int, byte: int, faulty_value: int) -> bool:
        """Record one faulty memory byte; schedule the golden reads of it.

        One bisect into the byte's write column yields both the golden
        content the faulty value is compared against and the tick of the
        next golden write (when the faulty byte stops mattering).
        """
        index = self.index
        log = index._byte_logs.get(byte)
        if log is None:
            golden_after = index.initial_byte(byte)
            if golden_after is None:
                return False
            if faulty_value == golden_after:
                self._dirty_mem.pop(byte, None)
            else:
                self._dirty_mem[byte] = (faulty_value, _INF)
            return True
        write_ticks = log.write_ticks
        position = bisect_right(write_ticks, current)
        if position > 0:
            golden_after = log.write_values[position - 1]
        else:
            golden_after = index.initial_byte(byte)
            if golden_after is None:
                return False
        valid_until = (
            write_ticks[position] if position < len(write_ticks) else _INF
        )
        if faulty_value == golden_after:
            self._dirty_mem.pop(byte, None)
            return True
        self._dirty_mem[byte] = (faulty_value, valid_until)
        read_ticks = log.read_ticks
        schedule = self._schedule
        for read_position in range(bisect_right(read_ticks, current), len(read_ticks)):
            read_tick = read_ticks[read_position]
            if read_tick >= valid_until:
                break
            schedule(read_tick)
        return True

    def _build_load_fast(self, current: int, address: int, size: int):
        """Per-load-tick cache: the golden bytes this load reads, or None.

        Valid only for the load's *golden* address (the corrupted-address
        case walks the byte log generically), where the loaded span is a
        pure function of the tick.
        """
        index = self.index
        raw = bytearray(size)
        byte_logs = index._byte_logs
        fast: Optional[bytes] = None
        for offset in range(size):
            byte = address + offset
            log = byte_logs.get(byte)
            if log is not None:
                position = bisect_right(log.write_ticks, current - 1)
                if position > 0:
                    raw[offset] = log.write_values[position - 1]
                    continue
            content = index.initial_byte(byte)
            if content is None:
                break
            raw[offset] = content
        else:
            fast = bytes(raw)
        self._load_fast[current] = fast
        return fast

    def _step_load(self, current: int, din, values, dirty_positions):
        index = self.index
        size = din.mem_size
        if din.loader is None or size == 0:
            return _GIVE_UP
        address = int(values[0])
        if 0 in dirty_positions:
            if index.address_fault(address, din.mem_align, size):
                return Outcome.DETECTED_HW_EXCEPTION
        else:
            # Golden address: overlay live dirty bytes onto the cached
            # golden span instead of bisecting the byte log per byte.
            fast = self._load_fast.get(current, False)
            if fast is False:
                fast = self._build_load_fast(current, address, size)
            if fast is not None:
                dirty_mem = self._dirty_mem
                raw = None
                if dirty_mem:
                    # Overlay live dirty bytes; walk whichever side is
                    # smaller (the dirty map is usually a handful of bytes).
                    if len(dirty_mem) < size:
                        end = address + size
                        for byte, entry in dirty_mem.items():
                            if address <= byte < end and current < entry[1]:
                                if raw is None:
                                    raw = bytearray(fast)
                                raw[byte - address] = entry[0]
                    else:
                        for offset in range(size):
                            entry = dirty_mem.get(address + offset)
                            if entry is not None and current < entry[1]:
                                if raw is None:
                                    raw = bytearray(fast)
                                raw[offset] = entry[0]
                if raw is None:
                    # No live dirty byte in the span: the load reproduces its
                    # golden value exactly (same loader, same bytes), so the
                    # compare can only conclude "unchanged" — provided the
                    # result def is identifiable, as the generic path demands.
                    def_id = self._def_at_tick[current]
                    if def_id < 0 or self.index.def_value[def_id] is None:
                        return _GIVE_UP
                    return None
                try:
                    value = din.loader(bytes(raw))
                except (struct.error, TypeError, ValueError, OverflowError):
                    return _GIVE_UP
                return None if self._mark_dirty(current, value) else _GIVE_UP
        raw = bytearray(size)
        dirty_mem = self._dirty_mem
        byte_logs = index._byte_logs
        initial_byte = index.initial_byte
        for offset in range(size):
            byte = address + offset
            entry = dirty_mem.get(byte)
            if entry is not None and current < entry[1]:
                raw[offset] = entry[0]
                continue
            log = byte_logs.get(byte)
            if log is not None:
                position = bisect_right(log.write_ticks, current - 1)
                if position > 0:
                    raw[offset] = log.write_values[position - 1]
                    continue
            content = initial_byte(byte)
            if content is None:
                return _GIVE_UP
            raw[offset] = content
        try:
            value = din.loader(bytes(raw))
        except (struct.error, TypeError, ValueError, OverflowError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _step_call(self, current: int, din, values, dirty_positions):
        index = self.index
        instr = index.instructions[current]
        if instr.is_intrinsic or din.callee is None:
            name = instr.callee_name
            if name == "__output":
                return True
            if name == "__assert":
                golden = self._golden_ops[current][0]
                if golden is None:
                    return _GIVE_UP
                if bool(values[0]) and bool(golden):
                    return None
                return Outcome.DETECTED_HW_EXCEPTION
            if name == "__exit":
                try:
                    int(values[0]) if values else 0
                except (TypeError, ValueError, OverflowError):
                    return _GIVE_UP
                return None
            if din.intrinsic_fn is not None and name not in ("__malloc", "__abort"):
                vm = self._vm
                vm.dynamic_index = current + 1
                try:
                    result = din.intrinsic_fn(vm, values)
                    if instr.destination() is not None:
                        result = din.canon(result if result is not None else 0)
                except HardwareFault:
                    return Outcome.DETECTED_HW_EXCEPTION
                except (TypeError, ValueError, OverflowError, AttributeError):
                    return _GIVE_UP
                if instr.destination() is None:
                    return _GIVE_UP  # unknown side effects
                return None if self._mark_dirty(current, result) else _GIVE_UP
            return _GIVE_UP
        # direct call into the module: corrupted arguments become corrupted
        # parameter bindings of the callee activation
        params = index.call_params.get(current)
        if params is None:
            return _GIVE_UP
        def_value = index.def_value
        def_register = index.def_register
        for pos in dirty_positions:
            if pos >= len(params):
                return _GIVE_UP
            param_id = params[pos]
            golden = def_value[param_id]
            if golden is None:
                return _GIVE_UP
            rtype = def_register[param_id].type
            try:
                value = bitops.canonicalize(values[pos], rtype)
            except (TypeError, ValueError):
                return _GIVE_UP
            if type(value) is int and self._cmp_mode(param_id) == 1:
                same = value == golden
            else:
                try:
                    same = bitops.value_to_bits(value, rtype) == bitops.value_to_bits(
                        golden, rtype
                    )
                except (TypeError, ValueError):
                    return _GIVE_UP
            if not same:
                self._dirty_map[param_id] = value
                self._newly_dirty.append(param_id)
        return None

    def _step_ret(self, current: int, din, values):
        index = self.index
        target = index.ret_target.get(current)
        if target is None:
            # Top-level return (or a call whose result is discarded): the
            # return value is not part of the compared program output.
            return None
        if index.def_value[target] is None or not values:
            return _GIVE_UP
        try:
            value = bitops.canonicalize(values[0], din.ret_type)
            value = bitops.canonicalize(value, index.def_register[target].type)
        except (TypeError, ValueError):
            return _GIVE_UP
        if not self._mark_dirty_def(target, value):
            return _GIVE_UP
        return None

    def _step_select(self, current: int, din, values):
        condition = values[0]
        chosen = values[1] if condition else values[2]
        if chosen is None:
            return _GIVE_UP
        try:
            result = din.canon(chosen)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, result) else _GIVE_UP


def infer_outcome(index: DefUseIndex, error: SingleBitError) -> Optional[Outcome]:
    """Convenience wrapper: infer one error against a fresh engine."""
    return OutcomeInference(index).infer(error)


def validation_sample(
    population: List,
    fraction: float,
    seed: int,
    *,
    max_samples: int = 2000,
) -> List:
    """Deterministic sample of non-representative members to re-execute."""
    if not population or fraction <= 0.0:
        return []
    count = min(max(1, int(len(population) * fraction)), max_samples, len(population))
    rng = random.Random(seed)
    return rng.sample(population, count)
