"""Frozen object-based reference pipeline (differential oracle).

This module is a verbatim snapshot of the *object-based* def-use /
inference / planning pipeline as it existed before the columnar rewrite
(PR 5).  It is not used by production code: the differential test suite
(`tests/test_columnar_differential.py`) builds every artifact through both
pipelines and asserts they are bit-identical — def events, read
attribution, class keys, inferred outcomes and the assembled pruned plans.

Do not optimise or "fix" this file; it is the semantic baseline the
columnar pipeline is measured against.  The only edits relative to the
original modules are renames (``reference_*`` prefixes) and imports of the
shared result dataclasses from :mod:`repro.errorspace.planner`.
"""

from __future__ import annotations




from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.frontend.compiler import CompiledProgram
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.values import Constant, VirtualRegister
from repro.vm import bitops
from repro.vm.interpreter import ExecutionLimits, Interpreter
from repro.vm.memory import NULL_GUARD_LIMIT
from repro.vm.program import DecodedProgram, decode_module
from repro.vm.trace import GoldenTrace

#: Def-site marker for values that enter an activation as arguments.
PARAM_SITE = "<param>"


@dataclass
class DefEvent:
    """One dynamic defining write (or argument binding) of the golden run."""

    def_id: int
    #: Dynamic index of the defining write, or -1 for argument bindings.
    tick: int
    register: VirtualRegister
    #: Static identity of the write: ``(function, static_index)`` for
    #: instruction writes, ``(function, PARAM_SITE, register)`` for arguments.
    site: Tuple
    #: Golden value the write produced (None when unknown — never inferred).
    value: object = None
    #: Dynamic indices of the records that consume this def, in order.
    use_ticks: List[int] = field(default_factory=list)


class ReferenceDefUseIndex:
    """Def-use structure of one golden run, queryable by the error space.

    Built by :func:`build_defuse_index`; see the module docstring for what
    it contains.  All lookups are O(1) dict/array accesses so planning and
    inference over a few hundred thousand errors stay cheap.
    """

    def __init__(self, program: CompiledProgram, golden: GoldenTrace, decoded: DecodedProgram) -> None:
        self.program = program
        self.golden = golden
        self.decoded = decoded
        #: DefEvent per def id.
        self.defs: List[DefEvent] = []
        #: (dynamic_index, slot) -> def id, for every inject-on-read candidate
        #: whose read the VM actually performs at that location.
        self.read_def: Dict[Tuple[int, int], int] = {}
        #: Candidates whose hook never fires at the named location (the
        #: unchosen select operand): the experiment injects at the next
        #: eligible access instead, so they are never grouped or inferred.
        self.deferred_reads: set = set()
        #: record tick -> IR instruction executed at that tick.
        self.instructions: List[Instruction] = []
        #: record tick -> tuple of def ids aligned with instruction.operands
        #: (None for constants/globals/unread operands).
        self.operand_defs: List[Tuple[Optional[int], ...]] = []
        #: call tick -> param def ids of the callee activation (arg order).
        self.call_params: Dict[int, Tuple[int, ...]] = {}
        #: ret tick -> def id of the caller's call-result register (None at
        #: top level or for value-discarding calls).
        self.ret_target: Dict[int, Optional[int]] = {}
        #: store tick -> (address, size) of the golden store.
        self.store_span: Dict[int, Tuple[int, int]] = {}
        #: Memory segments (base, size) mapped during execution; the segment
        #: map is fixed at interpreter construction, so address validity is a
        #: static property.
        self.segments: List[Tuple[int, int]] = []
        #: Global variable name -> materialised address (deterministic).
        self.global_addresses: Dict[str, int] = {}
        # Per-byte memory events in tick order: (tick, payload) with payload
        # -1 for reads and the written byte value for writes.
        self._byte_events: Dict[int, List[Tuple[int, int]]] = {}
        # Initial memory image (post global materialisation, pre execution):
        # (base, bytes) per segment, base-sorted.
        self._initial_memory: List[Tuple[int, bytes]] = []
        # Per-byte (write ticks, written values) bisect index, built lazily.
        self._write_index: Dict[int, Tuple[List[int], List[int]]] = {}

    # -- queries -------------------------------------------------------------------
    def def_of_read(self, dynamic_index: int, slot: int) -> Optional[DefEvent]:
        """The def event consumed by an inject-on-read candidate, if attributed."""
        def_id = self.read_def.get((dynamic_index, slot))
        return self.defs[def_id] if def_id is not None else None

    def class_key(self, dynamic_index: int, slot: int) -> Tuple:
        """Equivalence-class key of an inject-on-read candidate.

        Candidates are grouped when they consume a value produced by the
        *same static defining write*, carry the *same golden value* and are
        read at the *same static read site*: their faulty runs differ only
        in which dynamic instance of the def-use edge the flip lands on.
        (Grouping by the dynamic def event alone would be strictly sounder
        but collapses almost nothing once static inference has settled the
        easy errors; the value+site refinement is what the validation
        sampler exists to audit.)  Unattributable candidates form singleton
        classes.
        """
        if (dynamic_index, slot) in self.deferred_reads:
            return ("deferred", dynamic_index, slot)
        def_id = self.read_def.get((dynamic_index, slot))
        if def_id is None:
            return ("unattributed", dynamic_index, slot)
        event = self.defs[def_id]
        if event.value is None:
            return ("unvalued", def_id, dynamic_index, slot)
        try:
            value_bits = bitops.value_to_bits(event.value, event.register.type)
        except (TypeError, ValueError):
            return ("unvalued", def_id, dynamic_index, slot)
        instr = self.instructions[dynamic_index]
        site = (instr.parent.parent.name, instr.static_index, slot)
        return (event.site, site, value_bits)

    def address_fault(self, address: int, align: int, size: int) -> bool:
        """True when an access at ``address`` provably raises a hardware fault.

        Mirrors the VM's checks: natural alignment first, then the null
        guard page and the (static) segment map.
        """
        if align > 1 and address % align:
            return True
        if address < NULL_GUARD_LIMIT:
            return True
        for base, seg_size in self.segments:
            if base <= address and address + size <= base + seg_size:
                return False
        return True

    def store_is_dead(self, tick: int) -> bool:
        """True when bytes stored at ``tick`` are provably never observed.

        A corrupted store value is benign iff every stored byte is
        overwritten before (or instead of) being read again — byte-granular,
        using the golden run's memory access log.  Conservative: any
        subsequent read of a byte before a covering write counts as live.
        """
        span = self.store_span.get(tick)
        if span is None:
            return False
        address, size = span
        for byte in range(address, address + size):
            for event_tick, payload in self._byte_events.get(byte, ()):
                if event_tick <= tick:
                    continue
                if payload < 0:
                    return False
                break  # overwritten before any read: this byte is dead
        return True

    def _initial_byte(self, byte: int) -> Optional[int]:
        for base, payload in self._initial_memory:
            if base <= byte < base + len(payload):
                return payload[byte - base]
        for base, size in self.segments:
            if base <= byte < base + size:
                return 0  # mapped but beyond the captured image: still zero
        return None

    def _write_events(self, byte: int) -> Tuple[List[int], List[int]]:
        """(ticks, values) of the golden writes to one byte (cached, sorted)."""
        cached = self._write_index.get(byte)
        if cached is None:
            ticks: List[int] = []
            values: List[int] = []
            for event_tick, payload in self._byte_events.get(byte, ()):
                if payload >= 0:
                    ticks.append(event_tick)
                    values.append(payload)
            cached = self._write_index[byte] = (ticks, values)
        return cached

    def golden_content(self, byte: int, tick: int) -> Optional[int]:
        """Golden value of one memory byte just before ``tick``.

        Derived from the initial memory image plus the run's write log;
        None when the byte was never mapped.
        """
        ticks, values = self._write_events(byte)
        position = bisect_right(ticks, tick - 1)
        if position > 0:
            return values[position - 1]
        return self._initial_byte(byte)

    def next_write_after(self, byte: int, tick: int) -> float:
        """Tick of the first golden write to ``byte`` strictly after ``tick``."""
        ticks, _values = self._write_events(byte)
        position = bisect_right(ticks, tick)
        return ticks[position] if position < len(ticks) else float("inf")

    def read_ticks_between(self, byte: int, start: int, end: float) -> List[int]:
        """Golden read ticks of ``byte`` in the open interval (start, end)."""
        ticks: List[int] = []
        for event_tick, payload in self._byte_events.get(byte, ()):
            if event_tick <= start:
                continue
            if event_tick >= end:
                break
            if payload < 0:
                ticks.append(event_tick)
        return ticks

    # -- construction helpers (used by build_defuse_index) ---------------------------
    def _new_def(self, tick: int, register: VirtualRegister, site: Tuple, value) -> int:
        def_id = len(self.defs)
        self.defs.append(DefEvent(def_id, tick, register, site, value))
        return def_id

    def _log_read(self, tick: int, address: int, length: int) -> None:
        for byte in range(address, address + length):
            self._byte_events.setdefault(byte, []).append((tick, -1))

    def _log_write(self, tick: int, address: int, payload) -> None:
        for offset, value in enumerate(payload):
            self._byte_events.setdefault(address + offset, []).append((tick, value))


class _Activation:
    """One reconstructed call frame during trace replay."""

    __slots__ = ("function", "defs", "pending_result", "previous_block")

    def __init__(self, function_name: str) -> None:
        self.function = function_name
        #: register name -> def id (current reaching definition).
        self.defs: Dict[str, int] = {}
        #: Caller-side result register to define when this frame returns.
        self.pending_result: Optional[VirtualRegister] = None
        #: Name of the block whose terminator we last executed (phi edges).
        self.previous_block: Optional[str] = None


class _WriteLog:
    """Ordered write-hook values of the instrumented golden execution.

    The write hook fires exactly once per defining write, in an order the
    replay reproduces (phi groups write after their reads, call results
    write when the callee returns), so consuming the stream positionally
    attaches a golden value to every def event.
    """

    def __init__(self) -> None:
        self.values: List = []
        self._cursor = 0

    def hook(self, dynamic_index, instruction, register, value):
        self.values.append(value)
        return value

    def next_value(self):
        if self._cursor >= len(self.values):
            raise AnalysisError("write-value stream shorter than the replayed defs")
        value = self.values[self._cursor]
        self._cursor += 1
        return value


def _instrumented_run(
    program: CompiledProgram,
    decoded: DecodedProgram,
    args: Sequence,
    golden: GoldenTrace,
    index: DefUseIndex,
) -> _WriteLog:
    """Re-execute the golden run once, logging write values and memory accesses."""
    log = _WriteLog()
    limits = ExecutionLimits.for_golden_length(golden.dynamic_instruction_count, 12)
    interpreter = Interpreter(
        decoded, entry=program.entry, limits=limits, write_hook=log.hook
    )
    memory = interpreter.memory
    real_read_bytes = memory.read_bytes
    real_write_bytes = memory.write_bytes

    def read_bytes_logged(address: int, length: int) -> bytes:
        index._log_read(interpreter.dynamic_index - 1, address, length)
        return real_read_bytes(address, length)

    def write_bytes_logged(address: int, payload) -> None:
        index._log_write(interpreter.dynamic_index - 1, address, payload)
        return real_write_bytes(address, payload)

    # The initial image (globals materialised, stack/heap untouched) plus
    # the write log determine the golden content of any byte at any tick.
    # Only the touched prefix is copied; mapped bytes beyond it are zero.
    index._initial_memory = [
        (segment.base, bytes(segment.data[: max(segment.high_water, segment.cursor)]))
        for segment in memory.segments.values()
    ]
    memory.read_bytes = read_bytes_logged
    memory.write_bytes = write_bytes_logged
    result = interpreter.run(list(args))
    memory.read_bytes = real_read_bytes
    memory.write_bytes = real_write_bytes
    if not result.completed:
        raise AnalysisError("instrumented golden re-execution did not complete")
    if result.output != golden.output:
        raise AnalysisError("instrumented golden re-execution diverged from the trace")
    index.segments = [
        (segment.base, segment.size) for segment in interpreter.memory.segments.values()
    ]
    index.global_addresses = {
        name: interpreter.global_address(name) for name in program.module.globals
    }
    return log


def _static_instruction_table(program: CompiledProgram) -> Dict[str, Dict[int, Instruction]]:
    table: Dict[str, Dict[int, Instruction]] = {}
    for name, function in program.module.functions.items():
        entries: Dict[int, Instruction] = {}
        for block in function.blocks:
            for instruction in block.instructions:
                entries[instruction.static_index] = instruction
        table[name] = entries
    return table


def reference_build_defuse_index(
    program: CompiledProgram,
    golden: GoldenTrace,
    *,
    args: Sequence = (),
    decoded: Optional[DecodedProgram] = None,
) -> DefUseIndex:
    """Extract the dynamic def-use structure of one golden run.

    ``args`` must be the same workload input the golden trace was profiled
    with; the instrumented value-collection run asserts it reproduces the
    golden output bit-exactly before any of its values are trusted.
    """
    decoded = decoded if decoded is not None else decode_module(program.module)
    index = ReferenceDefUseIndex(program, golden, decoded)
    write_log = _instrumented_run(program, decoded, args, golden, index)
    statics = _static_instruction_table(program)
    module = program.module

    entry_function = module.get_function(program.entry)
    stack: List[_Activation] = [_Activation(program.entry)]
    for position, argument in enumerate(entry_function.arguments):
        value = None
        if position < len(args):
            try:
                value = bitops.canonicalize(args[position], argument.type)
            except (TypeError, ValueError):
                value = args[position]
        stack[0].defs[argument.name] = index._new_def(
            -1, argument, (program.entry, PARAM_SITE, argument.name), value
        )

    # Phi moves on one edge have parallel-assignment semantics: all incoming
    # values are read before any phi result is written.  Consecutive phi
    # records therefore resolve their incoming defs against the defs map as
    # it stood *before* the group, and commit their own defs only when the
    # group ends (the first non-phi record that follows).
    pending_phi_defs: List[Tuple[_Activation, str, int]] = []

    def flush_phi_group() -> None:
        while pending_phi_defs:
            frame, register_name, def_id = pending_phi_defs.pop()
            frame.defs[register_name] = def_id

    for record in golden.records:
        tick = record.dynamic_index
        activation = stack[-1]
        instruction = statics[record.function_name][record.static_index]
        index.instructions.append(instruction)

        if isinstance(instruction, Phi):
            incoming_def: Optional[int] = None
            previous = activation.previous_block
            incoming = instruction.incoming.get(previous) if previous else None
            operand_ids: List[Optional[int]] = [None] * len(instruction.operands)
            if isinstance(incoming, VirtualRegister):
                incoming_def = activation.defs.get(incoming.name)
                if incoming_def is not None:
                    index.defs[incoming_def].use_ticks.append(tick)
                    for position, op in enumerate(instruction.operands):
                        if op is incoming:
                            operand_ids[position] = incoming_def
            def_id = index._new_def(
                tick,
                instruction.destination(),
                (record.function_name, record.static_index),
                write_log.next_value(),
            )
            pending_phi_defs.append(
                (activation, instruction.destination().name, def_id)
            )
            index.operand_defs.append(tuple(operand_ids))
            continue
        flush_phi_group()

        # Attribute the register reads this instruction actually performs.
        source_registers = instruction.source_registers()
        unread_slots: set = set()
        if instruction.opcode == "select" and len(instruction.operands) == 3:
            condition = instruction.operands[0]
            chosen = None
            if isinstance(condition, Constant):
                chosen = 1 if condition.value else 2
            elif isinstance(condition, VirtualRegister):
                cond_def = activation.defs.get(condition.name)
                cond_value = index.defs[cond_def].value if cond_def is not None else None
                if cond_value is not None:
                    chosen = 1 if cond_value else 2
            for slot, register in enumerate(source_registers):
                position = _register_slot_position(instruction, slot)
                if chosen is not None and position == (2 if chosen == 1 else 1):
                    unread_slots.add(slot)
                elif chosen is None and position in (1, 2):
                    unread_slots.add(slot)

        operand_ids = [None] * len(instruction.operands)
        for slot, register in enumerate(source_registers):
            if slot in unread_slots:
                index.deferred_reads.add((tick, slot))
                continue
            def_id = activation.defs.get(register.name)
            if def_id is None:
                # Read of a register this replay never saw defined (cannot
                # happen for runs the VM completed); leave unattributed.
                continue
            index.read_def[(tick, slot)] = def_id
            index.defs[def_id].use_ticks.append(tick)
            operand_ids[_register_slot_position(instruction, slot)] = def_id
        index.operand_defs.append(tuple(operand_ids))

        if instruction.opcode == "store":
            pointer = instruction.operands[1]
            address = _operand_value(index, activation, pointer)
            if address is not None:
                size = instruction.operands[0].type.size_bytes()
                index.store_span[tick] = (int(address), size)

        destination = instruction.destination()
        is_function_call = (
            isinstance(instruction, Call)
            and not instruction.is_intrinsic
            and module.has_function(instruction.callee_name)
        )
        if is_function_call:
            callee = module.get_function(instruction.callee_name)
            frame = _Activation(instruction.callee_name)
            param_ids: List[int] = []
            for position, parameter in enumerate(callee.arguments):
                value = None
                if position < len(instruction.operands):
                    value = _operand_value(index, activation, instruction.operands[position])
                    if value is not None:
                        try:
                            value = bitops.canonicalize(value, parameter.type)
                        except (TypeError, ValueError):
                            pass
                param_id = index._new_def(
                    tick, parameter, (instruction.callee_name, PARAM_SITE, parameter.name), value
                )
                frame.defs[parameter.name] = param_id
                param_ids.append(param_id)
            index.call_params[tick] = tuple(param_ids)
            if destination is not None:
                activation.pending_result = destination
            stack.append(frame)
        elif destination is not None:
            def_id = index._new_def(
                tick,
                destination,
                (record.function_name, record.static_index),
                write_log.next_value(),
            )
            activation.defs[destination.name] = def_id

        if instruction.opcode == "ret":
            stack.pop()
            target: Optional[int] = None
            if stack:
                caller = stack[-1]
                if caller.pending_result is not None:
                    target = index._new_def(
                        tick,
                        caller.pending_result,
                        (caller.function, "<call-result>", caller.pending_result.name),
                        write_log.next_value(),
                    )
                    caller.defs[caller.pending_result.name] = target
                    caller.pending_result = None
            index.ret_target[tick] = target
        elif instruction.parent is not None and instruction is instruction.parent.terminator:
            activation.previous_block = instruction.parent.name

    return index


def register_slot_position(instruction: Instruction, slot: int) -> Optional[int]:
    """Operand-list position of the ``slot``-th register operand, or None.

    The slot numbering is the inject-on-read convention shared by the
    injector hooks, the def-use attribution here and the slice replay's
    corrupted-operand override — all three must agree, so they all call this
    one helper.
    """
    seen = -1
    for position, operand in enumerate(instruction.operands):
        if isinstance(operand, VirtualRegister):
            seen += 1
            if seen == slot:
                return position
    return None


def _register_slot_position(instruction: Instruction, slot: int) -> int:
    position = register_slot_position(instruction, slot)
    if position is None:
        raise AnalysisError(
            f"instruction {instruction.opcode} has no register operand slot {slot}"
        )
    return position


def _operand_value(index: DefUseIndex, activation: _Activation, operand) -> object:
    """Golden value of an operand during replay (None when unknown)."""
    if isinstance(operand, Constant):
        return operand.value
    if isinstance(operand, VirtualRegister):
        def_id = activation.defs.get(operand.name)
        if def_id is not None:
            return index.defs[def_id].value
    return None


# --- frozen inference engine -------------------------------------------------



import heapq
import math
import random
import struct
from typing import Dict, List, Optional, Tuple

from repro.errorspace.enumerate import ErrorSpace, SingleBitError
from repro.injection.outcome import Outcome
from repro.ir.instructions import Call, Phi
from repro.ir.types import FloatType
from repro.ir.values import Constant, GlobalVariable
from repro.vm import bitops
from repro.vm.faults import HardwareFault

#: Sentinel: the slice reached an effect we cannot model statically.
_GIVE_UP = object()


class _FakeVM:
    """Minimal stand-in passed to decoded operation bindings.

    The bindings only touch ``dynamic_index`` (to stamp the faults they
    raise); anything else they might reach for is deliberately absent so an
    unexpected dependency fails loudly instead of inferring nonsense.
    """

    __slots__ = ("dynamic_index",)

    def __init__(self, dynamic_index: int) -> None:
        self.dynamic_index = dynamic_index


class ReferenceOutcomeInference:
    """Forward slice replay over one workload's def-use index."""

    def __init__(self, index: DefUseIndex) -> None:
        self.index = index
        self._dins = self._decoded_table()
        # def tick -> def id for instruction-produced defs.  Parameter
        # bindings share their call's tick but are reached through
        # call_params, so they are excluded; every remaining tick carries at
        # most one def (call results are keyed by their ret tick).
        from repro.errorspace.defuse import PARAM_SITE

        self._def_at_tick: Dict[int, int] = {}
        for event in index.defs:
            if event.tick >= 0 and PARAM_SITE not in event.site:
                self._def_at_tick[event.tick] = event.def_id

    def _decoded_table(self) -> Dict[Tuple[str, int], object]:
        table: Dict[Tuple[str, int], object] = {}
        for name, dfunc in self.index.decoded.functions.items():
            for block in dfunc.blocks:
                for din in block.code:
                    table[(name, din.meta.static_index)] = din
                for moves, _failure in block.phi_edges.values():
                    for _op, phi_din in moves:
                        table[(name, phi_din.meta.static_index)] = phi_din
        return table

    def _din(self, instruction):
        function = instruction.parent.parent.name
        return self._dins.get((function, instruction.static_index))

    # -- public API -----------------------------------------------------------------
    def infer(self, error: SingleBitError) -> Optional[Outcome]:
        """The provable outcome of one error, or ``None`` (must execute)."""
        index = self.index
        key = (error.dynamic_index, error.slot)
        if error.slot is None or key in index.deferred_reads:
            return None
        def_id = index.read_def.get(key)
        if def_id is None:
            return None
        event = index.defs[def_id]
        if event.value is None:
            return None
        register = event.register
        try:
            width = bitops.bit_width(register.type)
            if error.bit >= width:
                return None
            corrupted = bitops.canonicalize(
                bitops.flip_bit(event.value, register.type, error.bit), register.type
            )
            if bitops.value_to_bits(corrupted, register.type) == bitops.value_to_bits(
                event.value, register.type
            ):
                # The flip is collapsed by value canonicalization (e.g. a NaN
                # payload): the consumed value is bit-identical to golden.
                return Outcome.BENIGN
        except (TypeError, ValueError):
            return None
        return self._replay(error.dynamic_index, error.slot, corrupted)

    # -- slice replay ----------------------------------------------------------------

    #: Bail out of slices whose corruption cone keeps growing — the error is
    #: executed instead.  Keeps worst-case inference cost bounded: measured
    #: on crc32, every productive slice (masked flip, trapping address, dead
    #: store, short output chain) settles within ~10 steps, while cones that
    #: keep spreading through hot memory essentially never conclude.
    MAX_STEPS = 48

    def _replay(self, tick: int, slot: int, corrupted) -> Optional[Outcome]:
        index = self.index
        instruction = index.instructions[tick]
        position = register_slot_position(instruction, slot)
        if position is None:
            return None
        injected: Dict[int, object] = {position: corrupted}
        self._dirty_map: Dict[int, object] = {}
        #: byte address -> (faulty value, valid-until golden-write tick).
        self._dirty_mem: Dict[int, Tuple[int, float]] = {}
        self._heap: List[int] = [tick]
        self._scheduled = {tick}
        output_corrupted = False
        steps = 0
        while self._heap:
            steps += 1
            if steps > self.MAX_STEPS:
                return None
            current = heapq.heappop(self._heap)
            instr = index.instructions[current]
            overrides = injected if current == tick else None
            self._newly_dirty: List[int] = []
            result = self._step(current, instr, self._dirty_map, overrides)
            if result is _GIVE_UP:
                return None
            if isinstance(result, Outcome):
                return result
            if result is True:
                output_corrupted = True
            # schedule uses of any defs newly dirtied by this step
            for def_id in self._newly_dirty:
                for use_tick in index.defs[def_id].use_ticks:
                    self._schedule(use_tick)
        return Outcome.SDC if output_corrupted else Outcome.BENIGN

    def _schedule(self, tick: int) -> None:
        if tick not in self._scheduled:
            self._scheduled.add(tick)
            heapq.heappush(self._heap, tick)

    def _operand_values(self, current: int, instr, dirty, overrides):
        """(values, dirty_positions) of every operand at this instance.

        Returns ``None`` when any needed golden value is unknown.
        """
        index = self.index
        operand_defs = index.operand_defs[current]
        values: List = []
        dirty_positions: List[int] = []
        for pos, operand in enumerate(instr.operands):
            if overrides and pos in overrides:
                values.append(overrides[pos])
                dirty_positions.append(pos)
                continue
            def_id = operand_defs[pos] if pos < len(operand_defs) else None
            if def_id is not None and def_id in dirty:
                values.append(dirty[def_id])
                dirty_positions.append(pos)
                continue
            values.append(self._golden_operand(current, instr, pos))
        return values, dirty_positions

    def _golden_operand(self, current: int, instr, pos: int):
        operand = instr.operands[pos]
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, GlobalVariable):
            return self.index.global_addresses.get(operand.name)
        def_id = self.index.operand_defs[current][pos]
        if def_id is not None:
            return self.index.defs[def_id].value
        return None

    def _mark_dirty(self, current: int, value) -> bool:
        """Record the instruction-at-``current``'s result as corrupted.

        Returns False when the result def cannot be identified (give up).
        """
        def_id = self._def_at_tick.get(current)
        if def_id is None:
            return False
        if self.index.defs[def_id].value is None:
            return False
        return self._mark_dirty_def(def_id, value)

    def _step(self, current: int, instr, dirty, overrides):
        """Evaluate one dynamic instruction with corrupted inputs.

        Returns ``_GIVE_UP``, an :class:`Outcome` (the run provably ends in
        it), ``True`` (output corrupted, run continues) or ``None``.
        """
        index = self.index
        opcode = instr.opcode

        if isinstance(instr, Phi):
            return self._step_phi(current, instr, dirty)

        gathered = self._operand_values(current, instr, dirty, overrides)
        values, dirty_positions = gathered
        if not dirty_positions and opcode != "load":
            return None  # corruption did not reach this instance after all
        if any(values[pos] is None for pos in range(len(values))):
            return _GIVE_UP

        din = self._din(instr)
        if din is None:
            return _GIVE_UP
        vm = _FakeVM(current + 1)

        if opcode == "store":
            return self._step_store(current, din, values, dirty_positions)
        if opcode == "load":
            return self._step_load(current, din, values, dirty_positions)
        if isinstance(instr, Call):
            return self._step_call(current, instr, din, values, dirty_positions, vm)
        if opcode == "ret":
            return self._step_ret(current, din, values)
        if opcode == "br.cond":
            golden = self._golden_operand(current, instr, 0)
            if golden is None:
                return _GIVE_UP
            return None if bool(values[0]) == bool(golden) else _GIVE_UP
        if opcode == "select":
            return self._step_select(current, instr, din, values)
        if opcode == "getelementptr":
            address = (int(values[0]) + int(values[1]) * din.stride) & ((1 << 64) - 1)
            return None if self._mark_dirty(current, address) else _GIVE_UP
        if opcode.startswith("icmp") or opcode.startswith("fcmp"):
            lhs, rhs = values[0], values[1]
            to_unsigned = din.to_unsigned
            if to_unsigned is not None:
                lhs = to_unsigned(int(lhs))
                rhs = to_unsigned(int(rhs))
            if (isinstance(lhs, float) and math.isnan(lhs)) or (
                isinstance(rhs, float) and math.isnan(rhs)
            ):
                result = din.nan_flag
            else:
                result = din.compare_fn(lhs, rhs)
            return None if self._mark_dirty(current, 1 if result else 0) else _GIVE_UP
        if din.operation is not None and len(values) == 1:  # casts
            try:
                result = din.canon(din.operation(values[0]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        if din.operation is not None and len(values) == 2:  # binops
            result_type = instr.destination().type if instr.destination() else None
            try:
                if isinstance(result_type, FloatType):
                    result = din.canon(din.operation(float(values[0]), float(values[1])))
                else:
                    result = din.operation(vm, int(values[0]), int(values[1]))
            except HardwareFault:
                return Outcome.DETECTED_HW_EXCEPTION
            except (TypeError, ValueError, OverflowError, ZeroDivisionError):
                return _GIVE_UP
            return None if self._mark_dirty(current, result) else _GIVE_UP
        return _GIVE_UP

    def _step_phi(self, current: int, instr, dirty):
        index = self.index
        operand_defs = index.operand_defs[current]
        incoming_value = None
        for pos, def_id in enumerate(operand_defs):
            if def_id is not None and def_id in dirty:
                incoming_value = dirty[def_id]
                break
        if incoming_value is None:
            return None
        try:
            value = bitops.canonicalize(incoming_value, instr.type)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _step_store(self, current: int, din, values, dirty_positions):
        index = self.index
        # The decoded store binds value_type + storer but not mem_size.
        size = din.value_type.size_bytes() if din.value_type is not None else 0
        if din.storer is None or size == 0:
            return _GIVE_UP
        span = index.store_span.get(current)
        if span is None:
            return _GIVE_UP
        golden_address = span[0]
        faulty_address = int(values[1])
        if 1 in dirty_positions and index.address_fault(
            faulty_address, din.mem_align, size
        ):
            return Outcome.DETECTED_HW_EXCEPTION
        if 1 not in dirty_positions and index.store_is_dead(current):
            # Fast path: the corrupted value lands only in dead bytes.
            return None
        try:
            payload = din.storer(values[0])
        except (TypeError, ValueError, OverflowError):
            return _GIVE_UP
        # The faulty run writes `payload` at faulty_address; the bytes of the
        # golden store that the faulty one does not cover keep their
        # pre-store content (the "missing write").
        for offset in range(size):
            if not self._mark_dirty_byte(
                current, faulty_address + offset, payload[offset]
            ):
                return _GIVE_UP
        if faulty_address != golden_address:
            for offset in range(size):
                byte = golden_address + offset
                if faulty_address <= byte < faulty_address + size:
                    continue
                # The golden store covered this byte but the faulty one does
                # not: the byte keeps the *faulty run's* pre-store content —
                # an earlier dirty value if one is still live, else golden.
                entry = self._dirty_mem.get(byte)
                if entry is not None and current < entry[1]:
                    stale = entry[0]
                else:
                    stale = index.golden_content(byte, current)
                if stale is None or not self._mark_dirty_byte(current, byte, stale):
                    return _GIVE_UP
        return None

    def _mark_dirty_byte(self, current: int, byte: int, faulty_value: int) -> bool:
        """Record one faulty memory byte; schedule the golden reads of it."""
        index = self.index
        golden_after = index.golden_content(byte, current + 1)
        if golden_after is None:
            return False
        valid_until = index.next_write_after(byte, current)
        if faulty_value == golden_after:
            self._dirty_mem.pop(byte, None)
            return True
        self._dirty_mem[byte] = (faulty_value, valid_until)
        for read_tick in index.read_ticks_between(byte, current, valid_until):
            self._schedule(read_tick)
        return True

    def _step_load(self, current: int, din, values, dirty_positions):
        index = self.index
        size = din.mem_size
        if din.loader is None or size == 0:
            return _GIVE_UP
        address = int(values[0])
        if 0 in dirty_positions and index.address_fault(address, din.mem_align, size):
            return Outcome.DETECTED_HW_EXCEPTION
        raw = bytearray(size)
        for offset in range(size):
            byte = address + offset
            entry = self._dirty_mem.get(byte)
            if entry is not None and current < entry[1]:
                raw[offset] = entry[0]
            else:
                content = index.golden_content(byte, current)
                if content is None:
                    return _GIVE_UP
                raw[offset] = content
        try:
            value = din.loader(bytes(raw))
        except (struct.error, TypeError, ValueError, OverflowError):
            return _GIVE_UP
        return None if self._mark_dirty(current, value) else _GIVE_UP

    def _step_call(self, current: int, instr, din, values, dirty_positions, vm):
        index = self.index
        if instr.is_intrinsic or din.callee is None:
            name = instr.callee_name
            if name == "__output":
                return True
            if name == "__assert":
                golden = self._golden_operand(current, instr, 0)
                if golden is None:
                    return _GIVE_UP
                if bool(values[0]) and bool(golden):
                    return None
                return Outcome.DETECTED_HW_EXCEPTION
            if name == "__exit":
                try:
                    int(values[0]) if values else 0
                except (TypeError, ValueError, OverflowError):
                    return _GIVE_UP
                return None
            if din.intrinsic_fn is not None and name not in ("__malloc", "__abort"):
                try:
                    result = din.intrinsic_fn(vm, values)
                    if instr.destination() is not None:
                        result = din.canon(result if result is not None else 0)
                except HardwareFault:
                    return Outcome.DETECTED_HW_EXCEPTION
                except (TypeError, ValueError, OverflowError, AttributeError):
                    return _GIVE_UP
                if instr.destination() is None:
                    return _GIVE_UP  # unknown side effects
                return None if self._mark_dirty(current, result) else _GIVE_UP
            return _GIVE_UP
        # direct call into the module: corrupted arguments become corrupted
        # parameter bindings of the callee activation
        params = index.call_params.get(current)
        if params is None:
            return _GIVE_UP
        for pos in dirty_positions:
            if pos >= len(params):
                return _GIVE_UP
            event = index.defs[params[pos]]
            if event.value is None:
                return _GIVE_UP
            try:
                value = bitops.canonicalize(values[pos], event.register.type)
                same = bitops.value_to_bits(value, event.register.type) == bitops.value_to_bits(
                    event.value, event.register.type
                )
            except (TypeError, ValueError):
                return _GIVE_UP
            if not same:
                self._dirty_map[params[pos]] = value
                self._newly_dirty.append(params[pos])
        return None

    def _step_ret(self, current: int, din, values):
        index = self.index
        target = index.ret_target.get(current)
        if target is None:
            # Top-level return (or a call whose result is discarded): the
            # return value is not part of the compared program output.
            return None
        event = index.defs[target]
        if event.value is None or not values:
            return _GIVE_UP
        try:
            value = bitops.canonicalize(values[0], din.ret_type)
            value = bitops.canonicalize(value, event.register.type)
        except (TypeError, ValueError):
            return _GIVE_UP
        if not self._mark_dirty_def(target, value):
            return _GIVE_UP
        return None

    def _mark_dirty_def(self, def_id: int, value) -> bool:
        event = self.index.defs[def_id]
        try:
            same = bitops.value_to_bits(value, event.register.type) == bitops.value_to_bits(
                event.value, event.register.type
            )
        except (TypeError, ValueError):
            return False
        if not same:
            self._dirty_map[def_id] = value
            self._newly_dirty.append(def_id)
        return True

    def _step_select(self, current: int, instr, din, values):
        condition = values[0]
        chosen = values[1] if condition else values[2]
        if chosen is None:
            return _GIVE_UP
        try:
            result = din.canon(chosen)
        except (TypeError, ValueError):
            return _GIVE_UP
        return None if self._mark_dirty(current, result) else _GIVE_UP


def infer_outcome(index: DefUseIndex, error: SingleBitError) -> Optional[Outcome]:
    """Convenience wrapper: infer one error against a fresh engine."""
    return OutcomeInference(index).infer(error)


def validation_sample(
    population: List,
    fraction: float,
    seed: int,
    *,
    max_samples: int = 2000,
) -> List:
    """Deterministic sample of non-representative members to re-execute."""
    if not population or fraction <= 0.0:
        return []
    count = min(max(1, int(len(population) * fraction)), max_samples, len(population))
    rng = random.Random(seed)
    return rng.sample(population, count)


# --- frozen planner ----------------------------------------------------------
from repro.errorspace.planner import EquivalenceClass, PrunedPlan


def reference_build_pruned_plan(
    space: ErrorSpace,
    index: Optional[DefUseIndex] = None,
    *,
    infer: bool = True,
) -> PrunedPlan:
    """Partition an error space into inferred errors and equivalence classes.

    ``index`` (the def-use structure) enables both grouping and inference
    for inject-on-read; without it — and always for inject-on-write — every
    class is a singleton and the plan degenerates to the full exhaustive
    campaign.
    """
    technique = space.technique.name
    plan = PrunedPlan(
        technique=technique,
        total_errors=space.size,
        candidate_count=space.candidate_count,
    )
    engine = ReferenceOutcomeInference(index) if (index is not None and infer) else None

    # Group candidates (not yet bits) by their def-use class key.
    groups: Dict[Tuple, List[SingleBitError]] = {}
    order: List[Tuple] = []
    for error in space.iter_candidate_errors():
        if index is not None and technique == "inject-on-read":
            key = index.class_key(error.dynamic_index, error.slot)
        else:
            key = ("singleton", error.dynamic_index, error.slot)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(error)

    class_id = 0
    for key in order:
        members = groups[key]
        bits = members[0].register_bits
        for bit in range(bits):
            residual: List[SingleBitError] = []
            for candidate in members:
                error = SingleBitError(
                    ordinal=candidate.ordinal + bit,
                    dynamic_index=candidate.dynamic_index,
                    slot=candidate.slot,
                    bit=bit,
                    register_bits=candidate.register_bits,
                    opcode=candidate.opcode,
                )
                outcome = engine.infer(error) if engine is not None else None
                if outcome is not None:
                    plan.inferred_counts.add(outcome)
                    plan.inferred_outcomes[error.key] = outcome
                else:
                    residual.append(error)
            if residual:
                plan.classes.append(
                    EquivalenceClass(
                        class_id=class_id,
                        key=key,
                        bit=bit,
                        representative=residual[0],
                        members=tuple(
                            (error.dynamic_index, error.slot) for error in residual[1:]
                        ),
                    )
                )
                class_id += 1
    return plan
