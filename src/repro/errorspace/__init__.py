"""The executable error-space subsystem (§III-A / §IV-C made operational).

The paper's scalability argument rests on the error space being *structured*:
inject-on-read collapses every fault between a register's last write and a
read into one equivalence class, and the outcome of a whole class can be
inferred from one representative (or, for provably masked or provably
trapping flips, from no execution at all).  The seed repo only *recommended*
pruning after a campaign (``analysis/pruning.py``); this package makes the
error space a first-class object the campaign layer can execute:

* :mod:`repro.errorspace.enumerate` — streams the full per-technique
  single-bit error space (every candidate × every register bit) from a
  golden trace in deterministic chunks;
* :mod:`repro.errorspace.defuse` — reconstructs dynamic def-use intervals
  from the golden trace and groups inject-on-read candidates that read the
  same unredefined defining write into equivalence classes;
* :mod:`repro.errorspace.inference` — statically infers the outcome of
  errors whose effect is provable from the golden run alone (masked flips,
  trapping addresses, dead stores, direct output corruption), and expands
  representative outcomes into weighted campaign counts;
* :mod:`repro.errorspace.planner` — builds a :class:`PrunedPlan` (one
  representative experiment per class plus its weight) with ``exact`` and
  ``budgeted`` modes, plus a seeded validation sampler that measures the
  misprediction rate of class-representative inheritance;
* :mod:`repro.errorspace.reference` — the frozen pre-columnar object-based
  pipeline, kept verbatim as the differential oracle for
  ``tests/test_columnar_differential.py``.

The def-use index and the inference engine are *columnar* (flat int-indexed
arrays, CSR adjacency, per-byte sorted memory-log columns) and every
artifact round-trips through the persistent content-addressed cache in
:mod:`repro.artifacts`, so planning an exhaustive campaign is an amortised
near-free lookup after the first derivation on a host.
"""

from repro.errorspace.enumerate import (
    ErrorSpace,
    SingleBitError,
    enumerate_error_space,
)
from repro.errorspace.defuse import DefUseIndex, build_defuse_index
from repro.errorspace.inference import (
    OutcomeInference,
    infer_outcome,
    validation_sample,
)
from repro.errorspace.planner import (
    EquivalenceClass,
    PlannedExperiment,
    PrunedPlan,
    build_pruned_plan,
)

__all__ = [
    "DefUseIndex",
    "EquivalenceClass",
    "ErrorSpace",
    "OutcomeInference",
    "PlannedExperiment",
    "PrunedPlan",
    "SingleBitError",
    "build_defuse_index",
    "build_pruned_plan",
    "enumerate_error_space",
    "infer_outcome",
    "validation_sample",
]
