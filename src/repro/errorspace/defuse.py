"""Dynamic def-use extraction from the golden trace (§III-A), stored columnar.

The paper's inject-on-read technique is justified by a def-use argument:
every fault that corrupts a register between its last write (the *defining
write*) and a read collapses into the same equivalence class as a flip
injected immediately before that read.  This module makes the def-use
structure of a golden run explicit so the rest of the error-space subsystem
can exploit it:

* every dynamic *defining write* of the run becomes one row of the def
  table (tick, static site, golden value, register), exposed through the
  legacy :class:`DefEvent` views on demand;
* every inject-on-read candidate ``(dynamic index, slot)`` is attributed to
  the def it consumes, giving the *def-use intervals* the equivalence
  classes are built from;
* every consumption (including phi moves, call argument passing and return
  values, which are not injection candidates but *do* propagate values) is
  recorded so outcome inference can replay the dataflow slice of a corrupted
  value;
* the run's memory accesses are logged byte-granularly so inference can
  prove a corrupted store dead.

The index is *columnar*: the def table is parallel flat arrays, the use
adjacency is a CSR-style ``(offsets, ticks)`` pair, and the memory log is
appended to three flat arrays (tick, byte offset, payload) during the
instrumented run and finalised into per-byte sorted tick/value columns —
every query the inference hot loop issues (``golden_content``,
``next_write_after``, ``read_ticks_between``, ``store_is_dead``) is a
single bisect over those columns, and dead stores are settled once for the
whole run instead of per inference step.

The extraction *replays* the recorded dynamic instruction stream against the
module — reconstructing the call stack from call/ret records — rather than
instrumenting every register access during execution, so the golden trace
stays as compact as before.  One extra instrumented execution (write hook +
memory log) supplies the golden values; its cost is one run per workload,
amortised over hundreds of thousands of enumerated errors.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.frontend.compiler import CompiledProgram
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.values import Constant, VirtualRegister
from repro.vm import bitops
from repro.vm.interpreter import ExecutionLimits, Interpreter
from repro.vm.memory import NULL_GUARD_LIMIT
from repro.vm.program import DecodedProgram, decode_module
from repro.vm.trace import GoldenTrace

#: Def-site marker for values that enter an activation as arguments.
PARAM_SITE = "<param>"


@dataclass
class DefEvent:
    """One dynamic defining write (or argument binding) of the golden run.

    A thin view over one row of the columnar def table, materialised lazily
    through :attr:`DefUseIndex.defs` for API compatibility; the inference
    hot path reads the arrays directly.
    """

    def_id: int
    #: Dynamic index of the defining write, or -1 for argument bindings.
    tick: int
    register: VirtualRegister
    #: Static identity of the write: ``(function, static_index)`` for
    #: instruction writes, ``(function, PARAM_SITE, register)`` for arguments.
    site: Tuple
    #: Golden value the write produced (None when unknown — never inferred).
    value: object = None
    #: Dynamic indices of the records that consume this def, in order.
    use_ticks: List[int] = field(default_factory=list)


class ByteLog(NamedTuple):
    """The golden run's accesses to one memory byte, as sorted columns.

    The merged read+write event stream only matters for the dead-store
    precompute, which runs once inside :meth:`DefUseIndex._finalize`; it is
    not retained here (or in cached payloads) — every later query bisects
    these three columns.
    """

    #: Ticks of the writes to this byte, ascending.
    write_ticks: array
    #: Value written at the matching tick.
    write_values: bytearray
    #: Ticks of the reads of this byte, ascending.
    read_ticks: array


_EMPTY_BYTE_LOG = ByteLog(array("q"), bytearray(), array("q"))


class DefUseIndex:
    """Def-use structure of one golden run, queryable by the error space.

    Built by :func:`build_defuse_index`; see the module docstring for what
    it contains.  All lookups are O(1) array/dict accesses or single bisects
    so planning and inference over a few hundred thousand errors stay cheap.
    """

    def __init__(self, program: CompiledProgram, golden: GoldenTrace, decoded: DecodedProgram) -> None:
        self.program = program
        self.golden = golden
        self.decoded = decoded
        # -- columnar def table --------------------------------------------------
        #: Dynamic tick of each defining write (-1 for argument bindings).
        self.def_tick: array = array("q")
        #: Static site tuple per def.
        self.def_site: List[Tuple] = []
        #: Golden value per def (None when unknown).
        self.def_value: List[object] = []
        #: Defined register per def (only ``.type``/``.name`` are consumed).
        self.def_register: List[VirtualRegister] = []
        #: Per-def use lists while building; folded into CSR by _finalize().
        self._use_lists: List[List[int]] = []
        #: CSR use adjacency: uses of def *d* are
        #: ``use_ticks_flat[use_offsets[d]:use_offsets[d+1]]``.
        self.use_offsets: array = array("q", [0])
        self.use_ticks_flat: array = array("q")
        #: Lazily materialised DefEvent views (legacy API).
        self._def_views: Optional[List[DefEvent]] = None
        #: (dynamic_index, slot) -> def id, for every inject-on-read candidate
        #: whose read the VM actually performs at that location.
        self.read_def: Dict[Tuple[int, int], int] = {}
        #: Candidates whose hook never fires at the named location (the
        #: unchosen select operand): the experiment injects at the next
        #: eligible access instead, so they are never grouped or inferred.
        self.deferred_reads: set = set()
        #: record tick -> IR instruction executed at that tick.
        self.instructions: List[Instruction] = []
        #: record tick -> tuple of def ids aligned with instruction.operands
        #: (None for constants/globals/unread operands).
        self.operand_defs: List[Tuple[Optional[int], ...]] = []
        #: call tick -> param def ids of the callee activation (arg order).
        self.call_params: Dict[int, Tuple[int, ...]] = {}
        #: ret tick -> def id of the caller's call-result register (None at
        #: top level or for value-discarding calls).
        self.ret_target: Dict[int, Optional[int]] = {}
        #: store tick -> (address, size) of the golden store.
        self.store_span: Dict[int, Tuple[int, int]] = {}
        #: Store ticks whose bytes are provably never observed (precomputed
        #: once for the whole run by _finalize()).
        self.dead_stores: frozenset = frozenset()
        #: Memory segments (base, size) mapped during execution; the segment
        #: map is fixed at interpreter construction, so address validity is a
        #: static property.
        self.segments: List[Tuple[int, int]] = []
        #: Global variable name -> materialised address (deterministic).
        self.global_addresses: Dict[str, int] = {}
        # Flat memory-log columns appended during the instrumented run:
        # (tick, byte address, payload) with payload -1 for reads.
        self._mem_tick: array = array("q")
        self._mem_addr: array = array("q")
        self._mem_payload: array = array("h")
        #: byte address -> ByteLog, built by _finalize().
        self._byte_logs: Dict[int, ByteLog] = {}
        # Initial memory image (post global materialisation, pre execution):
        # (base, bytes) per segment, base-sorted.
        self._initial_memory: List[Tuple[int, bytes]] = []
        #: byte address -> initial content (None if unmapped), memoised.
        self._initial_cache: Dict[int, Optional[int]] = {}

    # -- legacy def views --------------------------------------------------------------
    @property
    def defs(self) -> List[DefEvent]:
        """DefEvent views over the columnar def table (materialised lazily)."""
        if self._def_views is None:
            offsets = self.use_offsets
            flat = self.use_ticks_flat
            self._def_views = [
                DefEvent(
                    def_id,
                    self.def_tick[def_id],
                    self.def_register[def_id],
                    self.def_site[def_id],
                    self.def_value[def_id],
                    list(flat[offsets[def_id] : offsets[def_id + 1]]),
                )
                for def_id in range(len(self.def_site))
            ]
        return self._def_views

    @property
    def def_count(self) -> int:
        return len(self.def_site)

    def def_uses(self, def_id: int) -> array:
        """The use ticks of one def as a CSR slice (no per-def objects)."""
        return self.use_ticks_flat[self.use_offsets[def_id] : self.use_offsets[def_id + 1]]

    # -- queries -------------------------------------------------------------------
    def def_of_read(self, dynamic_index: int, slot: int) -> Optional[DefEvent]:
        """The def event consumed by an inject-on-read candidate, if attributed."""
        def_id = self.read_def.get((dynamic_index, slot))
        return self.defs[def_id] if def_id is not None else None

    def class_key(self, dynamic_index: int, slot: int) -> Tuple:
        """Equivalence-class key of an inject-on-read candidate.

        Candidates are grouped when they consume a value produced by the
        *same static defining write*, carry the *same golden value* and are
        read at the *same static read site*: their faulty runs differ only
        in which dynamic instance of the def-use edge the flip lands on.
        (Grouping by the dynamic def event alone would be strictly sounder
        but collapses almost nothing once static inference has settled the
        easy errors; the value+site refinement is what the validation
        sampler exists to audit.)  Unattributable candidates form singleton
        classes.
        """
        if (dynamic_index, slot) in self.deferred_reads:
            return ("deferred", dynamic_index, slot)
        def_id = self.read_def.get((dynamic_index, slot))
        if def_id is None:
            return ("unattributed", dynamic_index, slot)
        value = self.def_value[def_id]
        if value is None:
            return ("unvalued", def_id, dynamic_index, slot)
        try:
            value_bits = bitops.value_to_bits(value, self.def_register[def_id].type)
        except (TypeError, ValueError):
            return ("unvalued", def_id, dynamic_index, slot)
        instr = self.instructions[dynamic_index]
        site = (instr.parent.parent.name, instr.static_index, slot)
        return (self.def_site[def_id], site, value_bits)

    def address_fault(self, address: int, align: int, size: int) -> bool:
        """True when an access at ``address`` provably raises a hardware fault.

        Mirrors the VM's checks: natural alignment first, then the null
        guard page and the (static) segment map.
        """
        if align > 1 and address % align:
            return True
        if address < NULL_GUARD_LIMIT:
            return True
        for base, seg_size in self.segments:
            if base <= address and address + size <= base + seg_size:
                return False
        return True

    def store_is_dead(self, tick: int) -> bool:
        """True when bytes stored at ``tick`` are provably never observed.

        A corrupted store value is benign iff every stored byte is
        overwritten before (or instead of) being read again — byte-granular,
        using the golden run's memory access log.  Precomputed for every
        store of the run by :meth:`_finalize`.
        """
        return tick in self.dead_stores

    def byte_log(self, byte: int) -> ByteLog:
        """The sorted access columns of one byte (shared empty when untouched)."""
        return self._byte_logs.get(byte, _EMPTY_BYTE_LOG)

    def initial_byte(self, byte: int) -> Optional[int]:
        """Pre-execution content of one byte; None when unmapped (memoised)."""
        cached = self._initial_cache.get(byte, _MISSING)
        if cached is not _MISSING:
            return cached
        value: Optional[int] = None
        for base, payload in self._initial_memory:
            if base <= byte < base + len(payload):
                value = payload[byte - base]
                break
        else:
            for base, size in self.segments:
                if base <= byte < base + size:
                    value = 0  # mapped but beyond the captured image: still zero
                    break
        self._initial_cache[byte] = value
        return value

    def golden_content(self, byte: int, tick: int) -> Optional[int]:
        """Golden value of one memory byte just before ``tick``.

        Derived from the initial memory image plus the run's write log;
        None when the byte was never mapped.
        """
        log = self._byte_logs.get(byte)
        if log is not None:
            position = bisect_right(log.write_ticks, tick - 1)
            if position > 0:
                return log.write_values[position - 1]
        return self.initial_byte(byte)

    def next_write_after(self, byte: int, tick: int) -> float:
        """Tick of the first golden write to ``byte`` strictly after ``tick``."""
        log = self._byte_logs.get(byte)
        if log is None:
            return float("inf")
        ticks = log.write_ticks
        position = bisect_right(ticks, tick)
        return ticks[position] if position < len(ticks) else float("inf")

    def read_ticks_between(self, byte: int, start: int, end: float) -> List[int]:
        """Golden read ticks of ``byte`` in the open interval (start, end)."""
        log = self._byte_logs.get(byte)
        if log is None:
            return []
        reads = log.read_ticks
        lo = bisect_right(reads, start)
        result: List[int] = []
        for position in range(lo, len(reads)):
            tick = reads[position]
            if tick >= end:
                break
            result.append(tick)
        return result

    # -- artifact-cache round-trip ---------------------------------------------------
    def to_payload(self) -> dict:
        """Flatten the finalised index into a plain, picklable payload.

        Registers are reduced to ``(name, type)`` — only the type drives the
        class keys and inference — and the tick→instruction column is dropped
        entirely: it is rebuilt from the golden trace's meta columns against
        the loading process's module in :meth:`from_payload`.
        """
        return {
            "def_tick": self.def_tick.tobytes(),
            "def_site": list(self.def_site),
            "def_value": list(self.def_value),
            "def_register": [
                (register.name, register.type) for register in self.def_register
            ],
            "use_offsets": self.use_offsets.tobytes(),
            "use_ticks_flat": self.use_ticks_flat.tobytes(),
            "read_def": dict(self.read_def),
            "deferred_reads": frozenset(self.deferred_reads),
            "operand_defs": list(self.operand_defs),
            "call_params": dict(self.call_params),
            "ret_target": dict(self.ret_target),
            "store_span": dict(self.store_span),
            "dead_stores": self.dead_stores,
            "segments": list(self.segments),
            "global_addresses": dict(self.global_addresses),
            "byte_logs": {
                byte: (
                    log.write_ticks.tobytes(),
                    bytes(log.write_values),
                    log.read_ticks.tobytes(),
                )
                for byte, log in self._byte_logs.items()
            },
            "initial_memory": list(self._initial_memory),
        }

    @classmethod
    def from_payload(
        cls,
        program: CompiledProgram,
        golden: GoldenTrace,
        decoded: DecodedProgram,
        payload: dict,
    ) -> "DefUseIndex":
        """Rebuild an index from a payload, re-bound to the current module."""

        def column(typecode: str, data: bytes) -> array:
            values = array(typecode)
            values.frombytes(data)
            return values

        index = cls(program, golden, decoded)
        index.def_tick = column("q", payload["def_tick"])
        index.def_site = list(payload["def_site"])
        index.def_value = list(payload["def_value"])
        index.def_register = [
            VirtualRegister(register_type, name)
            for name, register_type in payload["def_register"]
        ]
        index.use_offsets = column("q", payload["use_offsets"])
        index.use_ticks_flat = column("q", payload["use_ticks_flat"])
        index._use_lists = []
        index.read_def = dict(payload["read_def"])
        index.deferred_reads = set(payload["deferred_reads"])
        index.operand_defs = list(payload["operand_defs"])
        index.call_params = dict(payload["call_params"])
        index.ret_target = dict(payload["ret_target"])
        index.store_span = dict(payload["store_span"])
        index.dead_stores = frozenset(payload["dead_stores"])
        index.segments = list(payload["segments"])
        index.global_addresses = dict(payload["global_addresses"])
        index._byte_logs = {
            byte: ByteLog(
                column("q", write_ticks),
                bytearray(write_values),
                column("q", read_ticks),
            )
            for byte, (write_ticks, write_values, read_ticks) in payload[
                "byte_logs"
            ].items()
        }
        index._initial_memory = list(payload["initial_memory"])
        statics = _static_instruction_table(program)
        index.instructions = [
            statics[meta.function_name][meta.static_index]
            for meta in golden.iter_metas()
        ]
        return index

    # -- construction helpers (used by build_defuse_index) ---------------------------
    def _new_def(self, tick: int, register: VirtualRegister, site: Tuple, value) -> int:
        def_id = len(self.def_site)
        self.def_tick.append(tick)
        self.def_register.append(register)
        self.def_site.append(site)
        self.def_value.append(value)
        self._use_lists.append([])
        return def_id

    def _add_use(self, def_id: int, tick: int) -> None:
        self._use_lists[def_id].append(tick)

    def _log_read(self, tick: int, address: int, length: int) -> None:
        for byte in range(address, address + length):
            self._mem_tick.append(tick)
            self._mem_addr.append(byte)
            self._mem_payload.append(-1)

    def _log_write(self, tick: int, address: int, payload) -> None:
        for offset, value in enumerate(payload):
            self._mem_tick.append(tick)
            self._mem_addr.append(address + offset)
            self._mem_payload.append(value)

    def _finalize(self) -> None:
        """Fold build-time streams into the queryable columnar structures."""
        # CSR use adjacency.
        offsets = array("q", [0])
        flat = array("q")
        total = 0
        for uses in self._use_lists:
            flat.extend(uses)
            total += len(uses)
            offsets.append(total)
        self.use_offsets = offsets
        self.use_ticks_flat = flat
        self._use_lists = []
        # Per-byte sorted access columns.  Appends happened in execution
        # order (ticks non-decreasing), so a stable group-by-byte keeps each
        # byte's columns chronologically sorted — including the within-tick
        # event order store_is_dead's tie-breaking depends on.
        logs: Dict[int, List[Tuple[int, int]]] = {}
        for tick, byte, payload in zip(self._mem_tick, self._mem_addr, self._mem_payload):
            events = logs.get(byte)
            if events is None:
                events = logs[byte] = []
            events.append((tick, payload))
        byte_logs: Dict[int, ByteLog] = {}
        # The merged chronological event stream (reads + writes, payload -1
        # for reads) exists only during this pass — queries never need it.
        event_columns: Dict[int, Tuple[array, array]] = {}
        for byte, events in logs.items():
            write_ticks = array("q")
            write_values = bytearray()
            read_ticks = array("q")
            event_ticks = array("q")
            event_payloads = array("h")
            for tick, payload in events:
                event_ticks.append(tick)
                event_payloads.append(payload)
                if payload < 0:
                    read_ticks.append(tick)
                else:
                    write_ticks.append(tick)
                    write_values.append(payload)
            byte_logs[byte] = ByteLog(write_ticks, write_values, read_ticks)
            event_columns[byte] = (event_ticks, event_payloads)
        self._byte_logs = byte_logs
        self._mem_tick = array("q")
        self._mem_addr = array("q")
        self._mem_payload = array("h")
        # Settle every store's deadness once: a store is dead iff, for every
        # stored byte, the first logged event strictly after the store tick
        # is a write (or there is no later event).
        dead = set()
        for tick, (address, size) in self.store_span.items():
            for byte in range(address, address + size):
                columns = event_columns.get(byte)
                if columns is None:
                    break
                event_ticks, event_payloads = columns
                position = bisect_right(event_ticks, tick)
                if position < len(event_ticks) and event_payloads[position] < 0:
                    break  # next event is a read: the byte is live
            else:
                dead.add(tick)
        self.dead_stores = frozenset(dead)


_MISSING = object()


class _Activation:
    """One reconstructed call frame during trace replay."""

    __slots__ = ("function", "defs", "pending_result", "previous_block")

    def __init__(self, function_name: str) -> None:
        self.function = function_name
        #: register name -> def id (current reaching definition).
        self.defs: Dict[str, int] = {}
        #: Caller-side result register to define when this frame returns.
        self.pending_result: Optional[VirtualRegister] = None
        #: Name of the block whose terminator we last executed (phi edges).
        self.previous_block: Optional[str] = None


class _WriteLog:
    """Ordered write-hook values of the instrumented golden execution.

    The write hook fires exactly once per defining write, in an order the
    replay reproduces (phi groups write after their reads, call results
    write when the callee returns), so consuming the stream positionally
    attaches a golden value to every def event.
    """

    def __init__(self) -> None:
        self.values: List = []
        self._cursor = 0

    def hook(self, dynamic_index, instruction, register, value):
        self.values.append(value)
        return value

    def next_value(self):
        if self._cursor >= len(self.values):
            raise AnalysisError("write-value stream shorter than the replayed defs")
        value = self.values[self._cursor]
        self._cursor += 1
        return value


def _instrumented_run(
    program: CompiledProgram,
    decoded: DecodedProgram,
    args: Sequence,
    golden: GoldenTrace,
    index: DefUseIndex,
) -> _WriteLog:
    """Re-execute the golden run once, logging write values and memory accesses."""
    log = _WriteLog()
    limits = ExecutionLimits.for_golden_length(golden.dynamic_instruction_count, 12)
    interpreter = Interpreter(
        decoded, entry=program.entry, limits=limits, write_hook=log.hook
    )
    memory = interpreter.memory
    real_read_bytes = memory.read_bytes
    real_write_bytes = memory.write_bytes

    def read_bytes_logged(address: int, length: int) -> bytes:
        index._log_read(interpreter.dynamic_index - 1, address, length)
        return real_read_bytes(address, length)

    def write_bytes_logged(address: int, payload) -> None:
        index._log_write(interpreter.dynamic_index - 1, address, payload)
        return real_write_bytes(address, payload)

    # The initial image (globals materialised, stack/heap untouched) plus
    # the write log determine the golden content of any byte at any tick.
    # Only the touched prefix is copied; mapped bytes beyond it are zero.
    index._initial_memory = [
        (segment.base, bytes(segment.data[: max(segment.high_water, segment.cursor)]))
        for segment in memory.segments.values()
    ]
    memory.read_bytes = read_bytes_logged
    memory.write_bytes = write_bytes_logged
    result = interpreter.run(list(args))
    memory.read_bytes = real_read_bytes
    memory.write_bytes = real_write_bytes
    if not result.completed:
        raise AnalysisError("instrumented golden re-execution did not complete")
    if result.output != golden.output:
        raise AnalysisError("instrumented golden re-execution diverged from the trace")
    index.segments = [
        (segment.base, segment.size) for segment in interpreter.memory.segments.values()
    ]
    index.global_addresses = {
        name: interpreter.global_address(name) for name in program.module.globals
    }
    return log


def _static_instruction_table(program: CompiledProgram) -> Dict[str, Dict[int, Instruction]]:
    table: Dict[str, Dict[int, Instruction]] = {}
    for name, function in program.module.functions.items():
        entries: Dict[int, Instruction] = {}
        for block in function.blocks:
            for instruction in block.instructions:
                entries[instruction.static_index] = instruction
        table[name] = entries
    return table


def build_defuse_index(
    program: CompiledProgram,
    golden: GoldenTrace,
    *,
    args: Sequence = (),
    decoded: Optional[DecodedProgram] = None,
) -> DefUseIndex:
    """Extract the dynamic def-use structure of one golden run.

    ``args`` must be the same workload input the golden trace was profiled
    with; the instrumented value-collection run asserts it reproduces the
    golden output bit-exactly before any of its values are trusted.
    """
    decoded = decoded if decoded is not None else decode_module(program.module)
    index = DefUseIndex(program, golden, decoded)
    write_log = _instrumented_run(program, decoded, args, golden, index)
    statics = _static_instruction_table(program)
    module = program.module

    entry_function = module.get_function(program.entry)
    stack: List[_Activation] = [_Activation(program.entry)]
    for position, argument in enumerate(entry_function.arguments):
        value = None
        if position < len(args):
            try:
                value = bitops.canonicalize(args[position], argument.type)
            except (TypeError, ValueError):
                value = args[position]
        stack[0].defs[argument.name] = index._new_def(
            -1, argument, (program.entry, PARAM_SITE, argument.name), value
        )

    # Phi moves on one edge have parallel-assignment semantics: all incoming
    # values are read before any phi result is written.  Consecutive phi
    # records therefore resolve their incoming defs against the defs map as
    # it stood *before* the group, and commit their own defs only when the
    # group ends (the first non-phi record that follows).
    pending_phi_defs: List[Tuple[_Activation, str, int]] = []

    def flush_phi_group() -> None:
        while pending_phi_defs:
            frame, register_name, def_id = pending_phi_defs.pop()
            frame.defs[register_name] = def_id

    for tick, meta in enumerate(golden.iter_metas()):
        activation = stack[-1]
        instruction = statics[meta.function_name][meta.static_index]
        index.instructions.append(instruction)

        if isinstance(instruction, Phi):
            incoming_def: Optional[int] = None
            previous = activation.previous_block
            incoming = instruction.incoming.get(previous) if previous else None
            operand_ids: List[Optional[int]] = [None] * len(instruction.operands)
            if isinstance(incoming, VirtualRegister):
                incoming_def = activation.defs.get(incoming.name)
                if incoming_def is not None:
                    index._add_use(incoming_def, tick)
                    for position, op in enumerate(instruction.operands):
                        if op is incoming:
                            operand_ids[position] = incoming_def
            def_id = index._new_def(
                tick,
                instruction.destination(),
                (meta.function_name, meta.static_index),
                write_log.next_value(),
            )
            pending_phi_defs.append(
                (activation, instruction.destination().name, def_id)
            )
            index.operand_defs.append(tuple(operand_ids))
            continue
        flush_phi_group()

        # Attribute the register reads this instruction actually performs.
        source_registers = instruction.source_registers()
        unread_slots: set = set()
        if instruction.opcode == "select" and len(instruction.operands) == 3:
            condition = instruction.operands[0]
            chosen = None
            if isinstance(condition, Constant):
                chosen = 1 if condition.value else 2
            elif isinstance(condition, VirtualRegister):
                cond_def = activation.defs.get(condition.name)
                cond_value = index.def_value[cond_def] if cond_def is not None else None
                if cond_value is not None:
                    chosen = 1 if cond_value else 2
            for slot, register in enumerate(source_registers):
                position = _register_slot_position(instruction, slot)
                if chosen is not None and position == (2 if chosen == 1 else 1):
                    unread_slots.add(slot)
                elif chosen is None and position in (1, 2):
                    unread_slots.add(slot)

        operand_ids = [None] * len(instruction.operands)
        for slot, register in enumerate(source_registers):
            if slot in unread_slots:
                index.deferred_reads.add((tick, slot))
                continue
            def_id = activation.defs.get(register.name)
            if def_id is None:
                # Read of a register this replay never saw defined (cannot
                # happen for runs the VM completed); leave unattributed.
                continue
            index.read_def[(tick, slot)] = def_id
            index._add_use(def_id, tick)
            operand_ids[_register_slot_position(instruction, slot)] = def_id
        index.operand_defs.append(tuple(operand_ids))

        if instruction.opcode == "store":
            pointer = instruction.operands[1]
            address = _operand_value(index, activation, pointer)
            if address is not None:
                size = instruction.operands[0].type.size_bytes()
                index.store_span[tick] = (int(address), size)

        destination = instruction.destination()
        is_function_call = (
            isinstance(instruction, Call)
            and not instruction.is_intrinsic
            and module.has_function(instruction.callee_name)
        )
        if is_function_call:
            callee = module.get_function(instruction.callee_name)
            frame = _Activation(instruction.callee_name)
            param_ids: List[int] = []
            for position, parameter in enumerate(callee.arguments):
                value = None
                if position < len(instruction.operands):
                    value = _operand_value(index, activation, instruction.operands[position])
                    if value is not None:
                        try:
                            value = bitops.canonicalize(value, parameter.type)
                        except (TypeError, ValueError):
                            pass
                param_id = index._new_def(
                    tick, parameter, (instruction.callee_name, PARAM_SITE, parameter.name), value
                )
                frame.defs[parameter.name] = param_id
                param_ids.append(param_id)
            index.call_params[tick] = tuple(param_ids)
            if destination is not None:
                activation.pending_result = destination
            stack.append(frame)
        elif destination is not None:
            def_id = index._new_def(
                tick,
                destination,
                (meta.function_name, meta.static_index),
                write_log.next_value(),
            )
            activation.defs[destination.name] = def_id

        if instruction.opcode == "ret":
            stack.pop()
            target: Optional[int] = None
            if stack:
                caller = stack[-1]
                if caller.pending_result is not None:
                    target = index._new_def(
                        tick,
                        caller.pending_result,
                        (caller.function, "<call-result>", caller.pending_result.name),
                        write_log.next_value(),
                    )
                    caller.defs[caller.pending_result.name] = target
                    caller.pending_result = None
            index.ret_target[tick] = target
        elif instruction.parent is not None and instruction is instruction.parent.terminator:
            activation.previous_block = instruction.parent.name

    index._finalize()
    return index


def register_slot_position(instruction: Instruction, slot: int) -> Optional[int]:
    """Operand-list position of the ``slot``-th register operand, or None.

    The slot numbering is the inject-on-read convention shared by the
    injector hooks, the def-use attribution here and the slice replay's
    corrupted-operand override — all three must agree, so they all call this
    one helper.  The per-instruction expansion is cached on the instruction
    (invalidated with the static numbering, like the trace meta cache).
    """
    positions = slot_positions(instruction)
    return positions[slot] if slot < len(positions) else None


def slot_positions(instruction: Instruction) -> Tuple[int, ...]:
    """Operand positions of all register operands of one instruction (cached)."""
    cached = getattr(instruction, "_slot_positions", None)
    if cached is None or cached[0] != instruction.static_index:
        positions = tuple(
            position
            for position, operand in enumerate(instruction.operands)
            if isinstance(operand, VirtualRegister)
        )
        cached = (instruction.static_index, positions)
        instruction._slot_positions = cached
    return cached[1]


def _register_slot_position(instruction: Instruction, slot: int) -> int:
    position = register_slot_position(instruction, slot)
    if position is None:
        raise AnalysisError(
            f"instruction {instruction.opcode} has no register operand slot {slot}"
        )
    return position


def _operand_value(index: DefUseIndex, activation: _Activation, operand) -> object:
    """Golden value of an operand during replay (None when unknown)."""
    if isinstance(operand, Constant):
        return operand.value
    if isinstance(operand, VirtualRegister):
        def_id = activation.defs.get(operand.name)
        if def_id is not None:
            return index.def_value[def_id]
    return None
