"""Functions: arguments, basic blocks and static instruction numbering."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import IRType, VOID
from repro.ir.values import VirtualRegister

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.module import Module


class Argument(VirtualRegister):
    """A function argument; behaves like a virtual register with no definer."""

    def __init__(self, type_: IRType, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Argument({self.type}, %{self.name}, #{self.index})"


class Function:
    """A MiniIR function: a named list of basic blocks plus typed arguments."""

    def __init__(
        self,
        name: str,
        return_type: IRType = VOID,
        arg_types: Sequence[IRType] = (),
        arg_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.return_type = return_type
        if arg_names is None:
            arg_names = [f"arg{i}" for i in range(len(arg_types))]
        if len(arg_names) != len(arg_types):
            raise ValueError("arg_names and arg_types must have the same length")
        self.arguments: List[Argument] = [
            Argument(type_, name, index)
            for index, (type_, name) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        self.parent: Optional["Module"] = None
        self._blocks_by_name: Dict[str, BasicBlock] = {}
        self._register_counter = 0
        self._block_counter = 0
        self._finalized = False

    # -- construction ------------------------------------------------------
    def add_block(self, name: Optional[str] = None) -> BasicBlock:
        """Create and append a new basic block with a unique name."""
        if name is None:
            name = f"bb{self._block_counter}"
        base = name
        while name in self._blocks_by_name:
            self._block_counter += 1
            name = f"{base}.{self._block_counter}"
        self._block_counter += 1
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        self._blocks_by_name[name] = block
        self._finalized = False
        return block

    def new_register(self, type_: IRType, hint: str = "t") -> VirtualRegister:
        """Create a fresh, uniquely-named virtual register."""
        name = f"{hint}{self._register_counter}"
        self._register_counter += 1
        return VirtualRegister(type_, name)

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        return self._blocks_by_name[name]

    # -- queries -----------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def finalize(self) -> None:
        """Assign static indices to every instruction (idempotent)."""
        index = 0
        for block in self.blocks:
            for instruction in block.instructions:
                instruction.static_index = index
                index += 1
        self._finalized = True

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Function @{self.name}({len(self.arguments)} args, "
            f"{len(self.blocks)} blocks, {self.instruction_count()} instructions)>"
        )
