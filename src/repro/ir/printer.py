"""LLVM-like textual printing of MiniIR.

The textual form is used for debugging, error reporting and golden tests of
the frontend compiler.  It is intentionally close to LLVM assembly so that
modules are easy to eyeball, but it is not designed to be re-parsed.
"""

from __future__ import annotations

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.values import Constant, GlobalVariable, Value


def _operand(value: Value) -> str:
    """Render an operand with its type, LLVM style."""
    if isinstance(value, Constant):
        return f"{value.type} {value.value}"
    if isinstance(value, GlobalVariable):
        return f"{value.type} @{value.name}"
    return f"{value.type} %{value.name}"


def print_instruction(instruction: Instruction) -> str:
    """Render a single instruction as one line of LLVM-like text."""
    result = instruction.result
    prefix = f"%{result.name} = " if result is not None else ""

    if isinstance(instruction, BinaryOp):
        return f"{prefix}{instruction.opcode} {_operand(instruction.lhs)}, {_operand(instruction.rhs)}"
    if isinstance(instruction, Compare):
        kind = "fcmp" if instruction.is_float else "icmp"
        return (
            f"{prefix}{kind} {instruction.predicate} "
            f"{_operand(instruction.lhs)}, {_operand(instruction.rhs)}"
        )
    if isinstance(instruction, Cast):
        return f"{prefix}{instruction.opcode} {_operand(instruction.value)} to {instruction.to_type}"
    if isinstance(instruction, Alloca):
        return f"{prefix}alloca {instruction.allocated_type}, count {_operand(instruction.count)}"
    if isinstance(instruction, Load):
        return f"{prefix}load {_operand(instruction.pointer)}"
    if isinstance(instruction, Store):
        return f"store {_operand(instruction.value)}, {_operand(instruction.pointer)}"
    if isinstance(instruction, GetElementPtr):
        return (
            f"{prefix}getelementptr {instruction.element_type}, "
            f"{_operand(instruction.base)}, {_operand(instruction.index)}"
        )
    if isinstance(instruction, Branch):
        return f"br label %{instruction.target.name}"
    if isinstance(instruction, CondBranch):
        return (
            f"br {_operand(instruction.condition)}, "
            f"label %{instruction.if_true.name}, label %{instruction.if_false.name}"
        )
    if isinstance(instruction, Phi):
        pairs = ", ".join(
            f"[ {value.short_name()}, %{name} ]"
            for name, value in instruction.incoming.items()
        )
        return f"{prefix}phi {instruction.type} {pairs}"
    if isinstance(instruction, Select):
        return (
            f"{prefix}select {_operand(instruction.condition)}, "
            f"{_operand(instruction.if_true)}, {_operand(instruction.if_false)}"
        )
    if isinstance(instruction, Call):
        args = ", ".join(_operand(op) for op in instruction.operands)
        return f"{prefix}call @{instruction.callee_name}({args})"
    if isinstance(instruction, Return):
        if instruction.value is not None:
            return f"ret {_operand(instruction.value)}"
        return "ret void"
    if isinstance(instruction, Unreachable):
        return "unreachable"
    return instruction.describe()


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for instruction in block.instructions:
        lines.append(f"  {print_instruction(instruction)}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    args = ", ".join(f"{arg.type} %{arg.name}" for arg in function.arguments)
    lines: List[str] = [f"define {function.return_type} @{function.name}({args}) {{"]
    for block in function.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_global(variable: GlobalVariable) -> str:
    kind = "constant" if variable.constant else "global"
    init = ""
    if variable.initializer:
        init = " [" + ", ".join(str(v) for v in variable.initializer) + "]"
    return f"@{variable.name} = {kind} {variable.value_type}{init}"


def print_module(module: Module) -> str:
    """Render a whole module (globals first, then functions)."""
    lines: List[str] = [f"; module {module.name}"]
    for variable in module.globals.values():
        lines.append(print_global(variable))
    if module.globals:
        lines.append("")
    for function in module.functions.values():
        lines.append(print_function(function))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
