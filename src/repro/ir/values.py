"""SSA values of MiniIR: constants, virtual registers and globals.

Every instruction operand is a :class:`Value`.  Two kinds matter to the fault
injector:

* :class:`VirtualRegister` — an SSA name produced by exactly one instruction
  (or a function argument).  These are the *locations* bit flips target.
* :class:`Constant` — immediate operands; they are never injection targets,
  matching LLFI which only flips register operands.

:class:`GlobalVariable` represents module-level data; the VM materialises it
as a memory segment and the value itself behaves like a pointer constant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.ir.types import ArrayType, FloatType, IntType, IRType, PointerType


class Value:
    """Base class for everything an instruction can use as an operand."""

    def __init__(self, type_: IRType) -> None:
        self.type = type_

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_register(self) -> bool:
        return isinstance(self, VirtualRegister)

    def short_name(self) -> str:
        raise NotImplementedError


class Constant(Value):
    """An immediate constant of integer or floating-point type."""

    def __init__(self, type_: IRType, value: Union[int, float]) -> None:
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            value = float(value)
        elif isinstance(type_, PointerType):
            value = int(value)
        else:
            raise TypeError(f"cannot build a constant of type {type_}")
        self.value = value

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.type}, {self.value})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class VirtualRegister(Value):
    """An SSA virtual register (``%name``).

    A register is defined either by an instruction (``definer``) or by being
    a function argument.  Registers are the locations targeted by bit flips.
    """

    def __init__(self, type_: IRType, name: str) -> None:
        super().__init__(type_)
        self.name = name
        #: The instruction that defines this register, or ``None`` for
        #: function arguments.  Set by the instruction constructor.
        self.definer = None

    def short_name(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"VirtualRegister({self.type}, %{self.name})"


class GlobalVariable(Value):
    """A module-level variable.

    The value of a global, when used as an operand, is the address of its
    storage; hence its type is a pointer to ``value_type``.
    """

    def __init__(
        self,
        name: str,
        value_type: IRType,
        initializer: Optional[Sequence[Union[int, float]]] = None,
        *,
        constant: bool = False,
    ) -> None:
        super().__init__(PointerType(value_type))
        self.name = name
        self.value_type = value_type
        self.constant = constant
        self.initializer: List[Union[int, float]] = list(initializer or [])
        if isinstance(value_type, ArrayType):
            expected = value_type.count
        else:
            expected = 1
        if self.initializer and len(self.initializer) not in (0, expected):
            raise ValueError(
                f"global @{name}: initializer length {len(self.initializer)} "
                f"does not match type {value_type} (expected {expected})"
            )

    def element_type(self) -> IRType:
        """The scalar element type stored in this global."""
        if isinstance(self.value_type, ArrayType):
            return self.value_type.element
        return self.value_type

    def element_count(self) -> int:
        if isinstance(self.value_type, ArrayType):
            return self.value_type.count
        return 1

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"GlobalVariable(@{self.name}: {self.value_type})"


def constant_int(value: int, type_: IntType) -> Constant:
    """Convenience constructor for integer constants."""
    return Constant(type_, value)


def constant_float(value: float, type_: FloatType) -> Constant:
    """Convenience constructor for floating-point constants."""
    return Constant(type_, value)
