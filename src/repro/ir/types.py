"""Type system for MiniIR.

MiniIR types mirror the subset of LLVM types the paper's benchmarks exercise:

* integer types of explicit bit width (``i1``, ``i8``, ``i16``, ``i32``,
  ``i64``) — both signed arithmetic and bitwise views are provided by the VM;
* IEEE-754 floating point (``f32``, ``f64``);
* pointers (a pointee type plus a 64-bit address representation);
* arrays (used for globals and stack allocations);
* ``void`` (function return type only).

Types are immutable value objects: equality and hashing are structural so
they can be used as dictionary keys (for example by the interpreter's
bit-manipulation tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class IRType:
    """Base class for all MiniIR types."""

    #: Number of bits an SSA value of this type occupies.  ``None`` for void.
    bits: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, ArrayType)

    def size_bytes(self) -> int:
        """Size of an in-memory object of this type, in bytes."""
        if self.bits is None:
            raise TypeError(f"type {self} has no storage size")
        return max(1, self.bits // 8)

    def alignment(self) -> int:
        """Natural alignment used by the VM's misaligned-access checks."""
        return self.size_bytes()


@dataclass(frozen=True)
class IntType(IRType):
    """An integer type with an explicit bit width (``i1`` … ``i64``)."""

    width: int

    def __post_init__(self) -> None:
        if self.width not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.width}")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.width

    def size_bytes(self) -> int:
        return max(1, self.width // 8)

    def min_value(self) -> int:
        """Smallest representable signed value."""
        return -(1 << (self.width - 1)) if self.width > 1 else 0

    def max_value(self) -> int:
        """Largest representable signed value (i1 is treated as 0/1)."""
        return (1 << (self.width - 1)) - 1 if self.width > 1 else 1

    def unsigned_max(self) -> int:
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` into this type's signed range (two's complement)."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.width > 1 and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value

    def to_unsigned(self, value: int) -> int:
        """Reinterpret a signed value as its unsigned bit pattern."""
        return value & ((1 << self.width) - 1)

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(IRType):
    """IEEE-754 float (``f32``) or double (``f64``)."""

    width: int

    def __post_init__(self) -> None:
        if self.width not in (32, 64):
            raise ValueError(f"unsupported float width: {self.width}")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.width

    def size_bytes(self) -> int:
        return self.width // 8

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class PointerType(IRType):
    """A pointer to a pointee type.  Pointers are 64-bit addresses."""

    pointee: IRType

    @property
    def bits(self) -> int:  # type: ignore[override]
        return 64

    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(IRType):
    """A fixed-length array, used for globals and ``alloca`` of buffers."""

    element: IRType
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("array count must be non-negative")
        if self.element.is_void:
            raise ValueError("array of void is not a valid type")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return self.element.size_bytes() * self.count * 8

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def alignment(self) -> int:
        return self.element.alignment()

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass(frozen=True)
class VoidType(IRType):
    """The void type — only valid as a function return type."""

    @property
    def bits(self) -> None:  # type: ignore[override]
        return None

    def __str__(self) -> str:
        return "void"


# Canonical singletons used across the code base.
BOOL = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
VOID = VoidType()

_SCALAR_BY_NAME = {
    "i1": BOOL,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "f32": F32,
    "f64": F64,
    "void": VOID,
}


def parse_type(text: str) -> IRType:
    """Parse a textual type name (``"i32"``, ``"f64*"``, ``"[4 x i32]"``)."""
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        count_text, _, element_text = inner.partition(" x ")
        return ArrayType(parse_type(element_text), int(count_text))
    try:
        return _SCALAR_BY_NAME[text]
    except KeyError:
        raise ValueError(f"unknown type name: {text!r}") from None


def common_int_type(a: IntType, b: IntType) -> IntType:
    """The wider of two integer types (used by the frontend for promotion)."""
    return a if a.width >= b.width else b


def scalar_types() -> Tuple[IRType, ...]:
    """All scalar (register-storable) types, useful for property tests."""
    return (BOOL, I8, I16, I32, I64, F32, F64)
