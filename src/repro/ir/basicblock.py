"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.ir.instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.function import Function


class BasicBlock:
    """A labelled list of instructions with a single terminator at the end."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, instruction: Instruction) -> Instruction:
        """Append an instruction and set its parent link."""
        if self.is_terminated:
            raise ValueError(
                f"block %{self.name} already has terminator "
                f"{self.terminator.describe()!r}; cannot append "
                f"{instruction.describe()!r}"
            )
        instruction.parent = self
        self.instructions.append(instruction)
        if self.parent is not None:
            # Static numbering (and any decoded form) is stale now.
            self.parent._finalized = False
        return instruction

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def phis(self) -> List[Phi]:
        """The phi nodes at the start of the block."""
        result: List[Phi] = []
        for instruction in self.instructions:
            if isinstance(instruction, Phi):
                result.append(instruction)
            else:
                break
        return result

    def successors(self) -> List["BasicBlock"]:
        """Blocks this block can branch to."""
        from repro.ir.instructions import Branch, CondBranch

        term = self.terminator
        if isinstance(term, Branch):
            return [term.target]
        if isinstance(term, CondBranch):
            return [term.if_true, term.if_false]
        return []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock %{self.name} ({len(self.instructions)} instructions)>"
