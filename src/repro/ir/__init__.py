"""MiniIR: a small SSA-style typed intermediate representation.

MiniIR plays the role that LLVM IR plays in the paper.  It provides the
abstract machine the fault injector operates on: typed virtual registers,
dynamic instructions that read source registers and write destination
registers, a byte-addressable memory accessed through explicit ``load`` and
``store`` instructions, and call/return control flow.

The public surface mirrors (a small subset of) the LLVM C++ API so that the
rest of the code base reads naturally to anyone familiar with LLFI/LLVM:

* :mod:`repro.ir.types` — the type system (``i1``/``i8``/…/``f64``, pointers,
  arrays).
* :mod:`repro.ir.values` — SSA values: constants and virtual registers.
* :mod:`repro.ir.instructions` — the instruction set.
* :mod:`repro.ir.basicblock`, :mod:`repro.ir.function`,
  :mod:`repro.ir.module` — containers.
* :mod:`repro.ir.builder` — an ``IRBuilder`` for programmatic construction.
* :mod:`repro.ir.verifier` — structural and type verification.
* :mod:`repro.ir.printer` — an LLVM-like textual form, used in error
  messages, debugging and golden tests.
"""

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    VoidType,
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    VOID,
)
from repro.ir.values import Constant, GlobalVariable, Value, VirtualRegister
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Argument, Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.printer import print_function, print_module

__all__ = [
    "ArrayType",
    "Argument",
    "BasicBlock",
    "BOOL",
    "Constant",
    "F32",
    "F64",
    "FloatType",
    "Function",
    "GlobalVariable",
    "I16",
    "I32",
    "I64",
    "I8",
    "IRBuilder",
    "IRType",
    "IntType",
    "Module",
    "PointerType",
    "Value",
    "VerificationError",
    "VirtualRegister",
    "VOID",
    "VoidType",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
