"""IRBuilder: a convenience API for constructing MiniIR.

The builder keeps an *insertion point* (a basic block) and offers one method
per instruction, returning the result register of the created instruction —
the same ergonomics as LLVM's ``IRBuilder``.  It is used directly in tests
and indirectly by the frontend compiler.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    CondBranch,
    GetElementPtr,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.types import (
    BOOL,
    FloatType,
    IntType,
    IRType,
    PointerType,
    I32,
    I64,
    VOID,
)
from repro.ir.values import Constant, Value, VirtualRegister


class IRBuilder:
    """Builds instructions into a function at a movable insertion point."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None) -> None:
        self.function = function
        if block is None and function.blocks:
            block = function.blocks[-1]
        self.block = block

    # -- insertion-point management -----------------------------------------
    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def append_block(self, name: Optional[str] = None) -> BasicBlock:
        """Create a new block in the function (does not move the builder)."""
        return self.function.add_block(name)

    def _insert(self, instruction):
        if self.block is None:
            raise ValueError("builder has no insertion block")
        return self.block.append(instruction)

    def _result(self, type_: IRType, hint: str) -> VirtualRegister:
        return self.function.new_register(type_, hint)

    # -- constants -----------------------------------------------------------
    @staticmethod
    def const_int(value: int, type_: IntType = I64) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def const_float(value: float, type_: FloatType) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def const_bool(value: bool) -> Constant:
        return Constant(BOOL, 1 if value else 0)

    # -- arithmetic ------------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, hint: str = "t") -> VirtualRegister:
        result = self._result(lhs.type, hint)
        self._insert(BinaryOp(opcode, lhs, rhs, result))
        return result

    def add(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("add", lhs, rhs, "add")

    def sub(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("sub", lhs, rhs, "sub")

    def mul(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("mul", lhs, rhs, "mul")

    def sdiv(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("sdiv", lhs, rhs, "div")

    def srem(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("srem", lhs, rhs, "rem")

    def and_(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("and", lhs, rhs, "and")

    def or_(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("or", lhs, rhs, "or")

    def xor(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("xor", lhs, rhs, "xor")

    def shl(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("shl", lhs, rhs, "shl")

    def lshr(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("lshr", lhs, rhs, "shr")

    def ashr(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("ashr", lhs, rhs, "sar")

    def fadd(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("fadd", lhs, rhs, "fadd")

    def fsub(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("fsub", lhs, rhs, "fsub")

    def fmul(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("fmul", lhs, rhs, "fmul")

    def fdiv(self, lhs: Value, rhs: Value) -> VirtualRegister:
        return self.binop("fdiv", lhs, rhs, "fdiv")

    # -- comparisons -----------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> VirtualRegister:
        result = self._result(BOOL, "cmp")
        self._insert(Compare(predicate, lhs, rhs, result, is_float=False))
        return result

    def fcmp(self, predicate: str, lhs: Value, rhs: Value) -> VirtualRegister:
        result = self._result(BOOL, "fcmp")
        self._insert(Compare(predicate, lhs, rhs, result, is_float=True))
        return result

    # -- casts -----------------------------------------------------------------
    def cast(self, opcode: str, value: Value, to_type: IRType, hint: str = "cast") -> VirtualRegister:
        result = self._result(to_type, hint)
        self._insert(Cast(opcode, value, to_type, result))
        return result

    def trunc(self, value: Value, to_type: IntType) -> VirtualRegister:
        return self.cast("trunc", value, to_type)

    def sext(self, value: Value, to_type: IntType) -> VirtualRegister:
        return self.cast("sext", value, to_type)

    def zext(self, value: Value, to_type: IntType) -> VirtualRegister:
        return self.cast("zext", value, to_type)

    def sitofp(self, value: Value, to_type: FloatType) -> VirtualRegister:
        return self.cast("sitofp", value, to_type)

    def fptosi(self, value: Value, to_type: IntType) -> VirtualRegister:
        return self.cast("fptosi", value, to_type)

    # -- memory ----------------------------------------------------------------
    def alloca(self, allocated_type: IRType, count: Optional[Value] = None, hint: str = "ptr") -> VirtualRegister:
        if count is None:
            count = Constant(I64, 1)
        result = self._result(PointerType(allocated_type), hint)
        self._insert(Alloca(allocated_type, count, result))
        return result

    def load(self, pointer: Value, hint: str = "load") -> VirtualRegister:
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {pointer.type}")
        result = self._result(pointer.type.pointee, hint)
        self._insert(Load(pointer, result))
        return result

    def store(self, value: Value, pointer: Value) -> None:
        self._insert(Store(value, pointer))

    def gep(self, base: Value, index: Value, element_type: Optional[IRType] = None, hint: str = "gep") -> VirtualRegister:
        if element_type is None:
            if not isinstance(base.type, PointerType):
                raise TypeError(f"gep requires a pointer base, got {base.type}")
            element_type = base.type.pointee
        result = self._result(PointerType(element_type), hint)
        self._insert(GetElementPtr(base, index, element_type, result))
        return result

    # -- control flow ------------------------------------------------------------
    def branch(self, target: BasicBlock) -> None:
        self._insert(Branch(target))

    def cond_branch(self, condition: Value, if_true: BasicBlock, if_false: BasicBlock) -> None:
        self._insert(CondBranch(condition, if_true, if_false))

    def phi(self, type_: IRType, hint: str = "phi") -> Phi:
        result = self._result(type_, hint)
        node = Phi(type_, result)
        self._insert(node)
        return node

    def select(self, condition: Value, if_true: Value, if_false: Value, hint: str = "sel") -> VirtualRegister:
        result = self._result(if_true.type, hint)
        self._insert(Select(condition, if_true, if_false, result))
        return result

    def call(
        self,
        callee: Union[str, Function],
        args: Sequence[Value] = (),
        return_type: IRType = VOID,
        hint: str = "call",
    ) -> Optional[VirtualRegister]:
        if isinstance(callee, Function):
            return_type = callee.return_type
        result = None if return_type == VOID else self._result(return_type, hint)
        self._insert(Call(callee, args, result))
        return result

    def ret(self, value: Optional[Value] = None) -> None:
        self._insert(Return(value))

    def unreachable(self) -> None:
        self._insert(Unreachable())
