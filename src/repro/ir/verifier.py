"""Structural and type verification of MiniIR.

The verifier catches the construction bugs that would otherwise surface as
confusing interpreter failures: unterminated blocks, type mismatches on
binary operations, loads through non-pointers, phi nodes missing a
predecessor, calls to unknown functions, and so on.

It is deliberately stricter than the interpreter — every module produced by
the frontend compiler is verified in the test suite before use.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    CondBranch,
    FLOAT_BINARY_OPCODES,
    GetElementPtr,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import BOOL, FloatType, IntType, PointerType, VoidType
from repro.ir.values import Constant, GlobalVariable, VirtualRegister


class VerificationError(Exception):
    """Raised when a module or function violates MiniIR structural rules."""

    def __init__(self, messages: List[str]) -> None:
        super().__init__("\n".join(messages))
        self.messages = messages


class _FunctionVerifier:
    def __init__(self, function: Function, module: Optional[Module]) -> None:
        self.function = function
        self.module = module
        self.errors: List[str] = []
        self.defined: Set[int] = set()

    def error(self, block: BasicBlock, message: str) -> None:
        self.errors.append(f"@{self.function.name}/%{block.name}: {message}")

    def run(self) -> List[str]:
        function = self.function
        if not function.blocks:
            self.errors.append(f"@{function.name}: function has no basic blocks")
            return self.errors

        for argument in function.arguments:
            self.defined.add(id(argument))

        # First pass: record every register definition so that uses in
        # earlier blocks of values defined later (via phi-carried loops) do
        # not trigger false positives.  MiniIR only requires SSA dominance at
        # runtime through phi nodes; the verifier checks definition existence.
        for block in function.blocks:
            for instruction in block.instructions:
                if instruction.result is not None:
                    self.defined.add(id(instruction.result))

        block_names = {block.name for block in function.blocks}

        for block in function.blocks:
            if not block.is_terminated:
                self.error(block, "block is not terminated")
            self._check_phi_positions(block)
            for position, instruction in enumerate(block.instructions):
                if instruction.is_terminator and position != len(block.instructions) - 1:
                    self.error(block, f"terminator {instruction.describe()!r} is not last")
                self._check_instruction(block, instruction, block_names)
        return self.errors

    def _check_phi_positions(self, block: BasicBlock) -> None:
        seen_non_phi = False
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                if seen_non_phi:
                    self.error(block, "phi node appears after non-phi instruction")
            else:
                seen_non_phi = True

    def _check_operand_defined(self, block: BasicBlock, instruction, operand) -> None:
        if isinstance(operand, VirtualRegister) and not isinstance(operand, GlobalVariable):
            if id(operand) not in self.defined:
                self.error(
                    block,
                    f"{instruction.describe()!r} uses undefined register "
                    f"{operand.short_name()}",
                )

    def _check_instruction(self, block: BasicBlock, instruction, block_names: Set[str]) -> None:
        for operand in instruction.operands:
            self._check_operand_defined(block, instruction, operand)

        if isinstance(instruction, BinaryOp):
            self._check_binop(block, instruction)
        elif isinstance(instruction, Compare):
            self._check_compare(block, instruction)
        elif isinstance(instruction, Cast):
            self._check_cast(block, instruction)
        elif isinstance(instruction, Load):
            if not isinstance(instruction.pointer.type, PointerType):
                self.error(block, f"load through non-pointer {instruction.pointer.type}")
        elif isinstance(instruction, Store):
            if not isinstance(instruction.pointer.type, PointerType):
                self.error(block, f"store through non-pointer {instruction.pointer.type}")
        elif isinstance(instruction, GetElementPtr):
            if not isinstance(instruction.base.type, PointerType):
                self.error(block, f"gep on non-pointer base {instruction.base.type}")
            if not isinstance(instruction.index.type, IntType):
                self.error(block, f"gep index must be an integer, got {instruction.index.type}")
        elif isinstance(instruction, Alloca):
            if not isinstance(instruction.count.type, IntType):
                self.error(block, f"alloca count must be an integer, got {instruction.count.type}")
        elif isinstance(instruction, CondBranch):
            if instruction.condition.type != BOOL:
                self.error(block, f"conditional branch on non-i1 {instruction.condition.type}")
            for target in (instruction.if_true, instruction.if_false):
                if target.name not in block_names:
                    self.error(block, f"branch to unknown block %{target.name}")
        elif isinstance(instruction, Branch):
            if instruction.target.name not in block_names:
                self.error(block, f"branch to unknown block %{instruction.target.name}")
        elif isinstance(instruction, Phi):
            self._check_phi(block, instruction, block_names)
        elif isinstance(instruction, Select):
            if instruction.condition.type != BOOL:
                self.error(block, "select condition must be i1")
            if instruction.if_true.type != instruction.if_false.type:
                self.error(block, "select arms have different types")
        elif isinstance(instruction, Return):
            self._check_return(block, instruction)
        elif isinstance(instruction, Call):
            self._check_call(block, instruction)
        elif isinstance(instruction, Unreachable):
            pass

    def _check_binop(self, block: BasicBlock, instruction: BinaryOp) -> None:
        lhs, rhs = instruction.lhs, instruction.rhs
        if lhs.type != rhs.type:
            self.error(
                block,
                f"binary op {instruction.opcode} has mismatched operand types "
                f"{lhs.type} and {rhs.type}",
            )
        is_float_op = instruction.opcode in FLOAT_BINARY_OPCODES
        if is_float_op and not isinstance(lhs.type, FloatType):
            self.error(block, f"float opcode {instruction.opcode} on {lhs.type}")
        if not is_float_op and not isinstance(lhs.type, (IntType, PointerType)):
            self.error(block, f"integer opcode {instruction.opcode} on {lhs.type}")
        if instruction.result is not None and instruction.result.type != lhs.type:
            self.error(block, f"binary op result type {instruction.result.type} != {lhs.type}")

    def _check_compare(self, block: BasicBlock, instruction: Compare) -> None:
        if instruction.lhs.type != instruction.rhs.type:
            self.error(
                block,
                f"compare has mismatched operand types "
                f"{instruction.lhs.type} and {instruction.rhs.type}",
            )
        if instruction.result is not None and instruction.result.type != BOOL:
            self.error(block, "compare result must be i1")

    def _check_cast(self, block: BasicBlock, instruction: Cast) -> None:
        if instruction.result is not None and instruction.result.type != instruction.to_type:
            self.error(
                block,
                f"cast result type {instruction.result.type} != declared {instruction.to_type}",
            )

    def _check_return(self, block: BasicBlock, instruction: Return) -> None:
        expected = self.function.return_type
        if isinstance(expected, VoidType):
            if instruction.value is not None:
                self.error(block, "void function returns a value")
        else:
            if instruction.value is None:
                self.error(block, f"non-void function returns without a value")
            elif instruction.value.type != expected:
                self.error(
                    block,
                    f"return type {instruction.value.type} != function type {expected}",
                )

    def _check_call(self, block: BasicBlock, instruction: Call) -> None:
        if instruction.is_intrinsic:
            return
        if self.module is None:
            return
        name = instruction.callee_name
        if not self.module.has_function(name):
            self.error(block, f"call to unknown function @{name}")
            return
        callee = self.module.get_function(name)
        if len(instruction.operands) != len(callee.arguments):
            self.error(
                block,
                f"call to @{name} passes {len(instruction.operands)} args, "
                f"expected {len(callee.arguments)}",
            )
            return
        for passed, formal in zip(instruction.operands, callee.arguments):
            if passed.type != formal.type:
                self.error(
                    block,
                    f"call to @{name}: argument type {passed.type} != {formal.type}",
                )

    def _check_phi(self, block: BasicBlock, instruction: Phi, block_names: Set[str]) -> None:
        if not instruction.incoming:
            self.error(block, "phi node has no incoming values")
        for name, value in instruction.incoming.items():
            if name not in block_names:
                self.error(block, f"phi references unknown predecessor %{name}")
            if value.type != instruction.type:
                self.error(
                    block,
                    f"phi incoming value from %{name} has type {value.type}, "
                    f"expected {instruction.type}",
                )
            self._check_operand_defined(block, instruction, value)


def verify_function(function: Function, module: Optional[Module] = None) -> None:
    """Verify a single function; raise :class:`VerificationError` on failure."""
    errors = _FunctionVerifier(function, module).run()
    if errors:
        raise VerificationError(errors)


def verify_module(module: Module) -> None:
    """Verify every function of a module; raise on the first failing set."""
    errors: List[str] = []
    if not module.functions:
        errors.append(f"module {module.name} has no functions")
    for function in module.functions.values():
        errors.extend(_FunctionVerifier(function, module).run())
    if errors:
        raise VerificationError(errors)
