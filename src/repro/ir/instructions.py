"""The MiniIR instruction set.

Instructions follow LLVM's shape: most produce a single SSA result register
and read a list of operand values.  The fault-injection layer only needs two
views of an instruction:

* ``source_registers()`` — the operands that are virtual registers, i.e. the
  candidate locations for *inject-on-read*;
* ``destination()`` — the result register, i.e. the candidate location for
  *inject-on-write*.

The instruction classes themselves are pure data; execution semantics live in
:mod:`repro.vm.interpreter`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.ir.types import IRType, IntType, PointerType, VOID
from repro.ir.values import Constant, Value, VirtualRegister

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function


#: Integer binary opcodes and whether they can raise an arithmetic fault.
INT_BINARY_OPCODES = {
    "add": False,
    "sub": False,
    "mul": False,
    "sdiv": True,
    "udiv": True,
    "srem": True,
    "urem": True,
    "and": False,
    "or": False,
    "xor": False,
    "shl": False,
    "lshr": False,
    "ashr": False,
}

#: Floating-point binary opcodes.
FLOAT_BINARY_OPCODES = ("fadd", "fsub", "fmul", "fdiv", "frem")

#: Comparison predicates shared by icmp and fcmp.
COMPARE_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

#: Cast opcodes.
CAST_OPCODES = (
    "trunc",
    "zext",
    "sext",
    "fptosi",
    "sitofp",
    "fpext",
    "fptrunc",
    "ptrtoint",
    "inttoptr",
    "bitcast",
)


class Instruction:
    """Base class for all MiniIR instructions."""

    #: Class-level opcode name; refined per subclass/instance.
    opcode: str = "?"

    def __init__(self, operands: Sequence[Value], result: Optional[VirtualRegister]) -> None:
        self.operands: List[Value] = list(operands)
        self.result = result
        if result is not None:
            result.definer = self
        #: The basic block containing this instruction; set on insertion.
        self.parent: Optional["BasicBlock"] = None
        #: Static index within the function, assigned by Function.finalize().
        self.static_index: int = -1
        #: Optional source-location string for diagnostics ("file:line").
        self.debug_location: Optional[str] = None

    # -- views used by the fault injector ---------------------------------
    def source_registers(self) -> List[VirtualRegister]:
        """Operand registers read by this instruction (inject-on-read sites)."""
        return [op for op in self.operands if isinstance(op, VirtualRegister)]

    def destination(self) -> Optional[VirtualRegister]:
        """The register written by this instruction (inject-on-write site)."""
        return self.result

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, CondBranch, Return, Unreachable))

    def replace_operand(self, index: int, new_value: Value) -> None:
        """Replace operand ``index`` (used by the frontend's phi fix-ups)."""
        self.operands[index] = new_value
        self._invalidate_static_views()

    def _invalidate_static_views(self) -> None:
        """Drop cached trace metadata and force a re-decode of the module.

        Operand rewrites change neither instruction counts nor static
        numbering, so the decode cache on the module must be dropped
        explicitly — a later ``finalize()`` would otherwise make the stale
        decoded program look valid again.
        """
        self._static_meta = None
        block = self.parent
        if block is not None:
            function = block.parent
            if function is not None:
                function._finalized = False
                module = function.parent
                if module is not None:
                    # Decode and codegen caches invalidate together: the
                    # compiled artifact is specialized to one decoded form.
                    module._decoded_program = None
                    module._compiled_program = None

    def describe(self) -> str:
        """Short human-readable description used in traces and errors."""
        dst = f"{self.result.short_name()} = " if self.result is not None else ""
        ops = ", ".join(op.short_name() for op in self.operands)
        return f"{dst}{self.opcode} {ops}".strip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class BinaryOp(Instruction):
    """Integer or floating-point binary arithmetic / bitwise operation."""

    def __init__(
        self,
        opcode: str,
        lhs: Value,
        rhs: Value,
        result: VirtualRegister,
    ) -> None:
        if opcode not in INT_BINARY_OPCODES and opcode not in FLOAT_BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode: {opcode}")
        super().__init__([lhs, rhs], result)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def may_trap(self) -> bool:
        """True for division/remainder, which can raise an arithmetic fault."""
        return INT_BINARY_OPCODES.get(self.opcode, False)


class Compare(Instruction):
    """``icmp``/``fcmp``-style comparison producing an ``i1``."""

    def __init__(
        self,
        predicate: str,
        lhs: Value,
        rhs: Value,
        result: VirtualRegister,
        *,
        is_float: bool = False,
    ) -> None:
        if predicate not in COMPARE_PREDICATES:
            raise ValueError(f"unknown compare predicate: {predicate}")
        super().__init__([lhs, rhs], result)
        self.predicate = predicate
        self.is_float = is_float
        self.opcode = ("fcmp " if is_float else "icmp ") + predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Type conversion (truncation, extension, int/float conversion…)."""

    def __init__(self, opcode: str, value: Value, to_type: IRType, result: VirtualRegister) -> None:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__([value], result)
        self.opcode = opcode
        self.to_type = to_type

    @property
    def value(self) -> Value:
        return self.operands[0]


class Alloca(Instruction):
    """Stack allocation of ``count`` elements of ``allocated_type``.

    The result is a pointer into the current frame's stack segment.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: IRType, count: Value, result: VirtualRegister) -> None:
        super().__init__([count], result)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value:
        return self.operands[0]


class Load(Instruction):
    """Load a scalar of the result's type from a pointer operand."""

    opcode = "load"

    def __init__(self, pointer: Value, result: VirtualRegister) -> None:
        super().__init__([pointer], result)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store a scalar value through a pointer.  Has no result register."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__([value, pointer], None)

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``result = base + index * sizeof(element_type)``."""

    opcode = "getelementptr"

    def __init__(
        self,
        base: Value,
        index: Value,
        element_type: IRType,
        result: VirtualRegister,
    ) -> None:
        super().__init__([base, index], result)
        self.element_type = element_type

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class Branch(Instruction):
    """Unconditional branch to a basic block."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__([], None)
        self.target = target

    def describe(self) -> str:
        return f"br label %{self.target.name}"


class CondBranch(Instruction):
    """Conditional branch on an ``i1`` value."""

    opcode = "br.cond"

    def __init__(self, condition: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        super().__init__([condition], None)
        self.if_true = if_true
        self.if_false = if_false

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def describe(self) -> str:
        return (
            f"br {self.condition.short_name()}, "
            f"label %{self.if_true.name}, label %{self.if_false.name}"
        )


class Phi(Instruction):
    """SSA phi node selecting a value by predecessor block."""

    opcode = "phi"

    def __init__(self, type_: IRType, result: VirtualRegister) -> None:
        super().__init__([], result)
        self.type = type_
        #: Mapping from predecessor block name to incoming value.
        self.incoming: Dict[str, Value] = {}
        self._incoming_blocks: Dict[str, "BasicBlock"] = {}

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incoming[block.name] = value
        self._incoming_blocks[block.name] = block
        if value not in self.operands:
            self.operands.append(value)
        self._invalidate_static_views()

    def incoming_pairs(self) -> List[Tuple[Value, "BasicBlock"]]:
        return [(self.incoming[name], self._incoming_blocks[name]) for name in self.incoming]

    def source_registers(self) -> List[VirtualRegister]:
        # Phi operands are resolved by control flow, not read uniformly; LLFI
        # does not treat phi incoming values as read sites either, so the phi
        # exposes no inject-on-read candidates.
        return []

    def describe(self) -> str:
        pairs = ", ".join(
            f"[{value.short_name()}, %{name}]" for name, value in self.incoming.items()
        )
        return f"{self.result.short_name()} = phi {self.type} {pairs}"


class Call(Instruction):
    """Direct call to another function or to a VM intrinsic by name."""

    opcode = "call"

    def __init__(
        self,
        callee: Union[str, "Function"],
        args: Sequence[Value],
        result: Optional[VirtualRegister],
    ) -> None:
        super().__init__(list(args), result)
        self.callee = callee

    @property
    def callee_name(self) -> str:
        if isinstance(self.callee, str):
            return self.callee
        return self.callee.name

    @property
    def is_intrinsic(self) -> bool:
        return isinstance(self.callee, str) and self.callee.startswith("__")

    def describe(self) -> str:
        dst = f"{self.result.short_name()} = " if self.result is not None else ""
        args = ", ".join(op.short_name() for op in self.operands)
        return f"{dst}call @{self.callee_name}({args})"


class Return(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__([value] if value is not None else [], None)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def describe(self) -> str:
        if self.operands:
            return f"ret {self.operands[0].short_name()}"
        return "ret void"


class Select(Instruction):
    """``result = condition ? if_true : if_false`` without branching."""

    opcode = "select"

    def __init__(
        self,
        condition: Value,
        if_true: Value,
        if_false: Value,
        result: VirtualRegister,
    ) -> None:
        super().__init__([condition, if_true, if_false], result)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> Value:
        return self.operands[1]

    @property
    def if_false(self) -> Value:
        return self.operands[2]


class Unreachable(Instruction):
    """Marks a point that must never execute; reaching it aborts the run."""

    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__([], None)

    def describe(self) -> str:
        return "unreachable"


def make_result(type_: IRType, name: str) -> VirtualRegister:
    """Create a result register; small helper shared by builder and frontend."""
    if type_ == VOID:
        raise ValueError("cannot create a register of void type")
    return VirtualRegister(type_, name)


def is_pointer_producing(instruction: Instruction) -> bool:
    """True when the instruction's result is a pointer value.

    Used by analysis code to reason about the data/address mix of a program,
    which the paper uses to explain inject-on-read vs inject-on-write
    differences.
    """
    return instruction.result is not None and isinstance(
        instruction.result.type, PointerType
    )
