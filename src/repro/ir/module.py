"""Modules: the top-level container of functions and global variables."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.ir.function import Function
from repro.ir.types import IRType
from repro.ir.values import GlobalVariable


class Module:
    """A compilation unit: named functions plus module-level globals.

    The interpreter executes a module starting from a designated entry
    function (``main`` by convention, overridable per program).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- functions ---------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function @{function.name} in module {self.name}")
        function.parent = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no function @{name}") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    # -- globals -----------------------------------------------------------
    def add_global(
        self,
        name: str,
        value_type: IRType,
        initializer: Optional[Sequence[Union[int, float]]] = None,
        *,
        constant: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name} in module {self.name}")
        variable = GlobalVariable(name, value_type, initializer, constant=constant)
        self.globals[name] = variable
        return variable

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no global @{name}") from None

    # -- bulk operations ----------------------------------------------------
    def finalize(self) -> None:
        """Assign static instruction indices in every function.

        Already-finalized functions are skipped, so calling this on an
        unchanged module (as every interpreter construction does) is cheap.
        Structural mutations — adding blocks, appending instructions,
        rewriting operands — mark the owning function non-finalized again.
        """
        for function in self.functions.values():
            if not function.is_finalized:
                function.finalize()

    @property
    def is_finalized(self) -> bool:
        """True when every function has up-to-date static numbering."""
        return all(function.is_finalized for function in self.functions.values())

    def all_instructions(self) -> Iterator:
        for function in self.functions.values():
            yield from function.instructions()

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def function_names(self) -> List[str]:
        return list(self.functions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {self.instruction_count()} instructions>"
        )
