"""Render ``repro report`` from a recorded run-event log.

The report is computed purely from the JSONL event stream (plus the
metrics snapshot embedded in the ``run_finished`` event), so it works on
live, interrupted, and long-finished runs alike — no campaign state needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.events import SCAN_OK

#: Supervision tallies rendered (and the event types that imply them).
_SUPERVISION_EVENTS = {
    "chunk_retried": "retries",
    "worker_restart": "worker_restarts",
    "chunk_timeout": "timeouts",
    "chunk_bisected": "bisections",
    "quarantine": "quarantined_units",
}

#: Phase order matching the experiment pipeline.
_PHASE_ORDER = ("restore", "pre_window", "window", "tail")


def build_report(events: List[dict], status: str = SCAN_OK) -> Dict[str, object]:
    """Digest an event stream into the sections ``render_report`` prints."""
    report: Dict[str, object] = {
        "key": None,
        "kind": None,
        "meta": {},
        "events": len(events),
        "scan": status,
        "state": "in-flight",
        "total": None,
        "done": None,
        "seconds": None,
        "phase_seconds": {},
        "phase_cpu_seconds": {},
        "supervision": {name: 0 for name in _SUPERVISION_EVENTS.values()},
        "cache": {},
        "resume": {"chunks": 0, "units": 0},
        "timeline": [],
        "metrics": None,
    }
    started_ts: Optional[float] = None
    completions: List[dict] = []
    for event in events:
        kind = event.get("type")
        if report["key"] is None and event.get("run"):
            report["key"] = event["run"]
        if kind == "run_log":
            report["meta"] = event.get("meta") or {}
        elif kind == "run_started":
            # A resumed run appends a second run_started to the same stream;
            # the timeline keeps the original origin so both sessions' chunk
            # completions land at non-negative offsets.
            if started_ts is None:
                started_ts = event.get("ts")
            report["kind"] = event.get("kind")
            report["total"] = event.get("total")
            report["state"] = "in-flight"
        elif kind == "resume_replay":
            report["resume"] = {
                "chunks": event.get("chunks", 0),
                "units": event.get("units", 0),
            }
        elif kind == "chunk_completed":
            completions.append(event)
        elif kind in _SUPERVISION_EVENTS:
            tally = _SUPERVISION_EVENTS[kind]
            report["supervision"][tally] += event.get("units", 1) if kind == "quarantine" else 1
        elif kind == "run_finished":
            report["state"] = event.get("status", "finished")
            report["done"] = event.get("done")
            report["seconds"] = event.get("seconds")
            report["phase_seconds"] = event.get("phase_seconds") or {}
            report["phase_cpu_seconds"] = event.get("phase_cpu_seconds") or {}
            report["cache"] = event.get("cache") or {}
            report["metrics"] = event.get("metrics")
            supervision = event.get("supervision") or {}
            for name in report["supervision"]:
                if supervision.get(name):
                    report["supervision"][name] = supervision[name]
    report["timeline"] = _timeline(started_ts, completions)
    if report["done"] is None:
        report["done"] = sum(e.get("count", 0) for e in completions)
    return report


def _timeline(started_ts: Optional[float], completions: List[dict]) -> List[dict]:
    """Bucketed completion throughput: ``[{t, seconds, units}, ...]``.

    Chunk completions are grouped into at most six equal time buckets from
    run start to the last completion — coarse by design, enough to show a
    ramp or a stall at a glance.
    """
    if started_ts is None or not completions:
        return []
    stamps = [
        (float(e["ts"]) - started_ts, int(e.get("count", 0)))
        for e in completions
        if isinstance(e.get("ts"), (int, float))
    ]
    if not stamps:
        return []
    horizon = max(offset for offset, _ in stamps)
    if horizon <= 0:
        return [{"t": 0.0, "seconds": 0.0, "units": sum(u for _, u in stamps)}]
    buckets = min(6, len(stamps))
    width = horizon / buckets
    cells = [0] * buckets
    for offset, units in stamps:
        index = min(max(int(offset / width), 0), buckets - 1)
        cells[index] += units
    return [
        {"t": round(index * width, 3), "seconds": round(width, 3), "units": cells[index]}
        for index in range(buckets)
    ]


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "?"
    return f"{value:.2f}s"


def render_report(report: Dict[str, object]) -> str:
    """The human-readable ``repro report`` text for one digested run."""
    lines: List[str] = []
    key = report.get("key") or "<unknown>"
    kind = report.get("kind") or "run"
    meta = report.get("meta") or {}
    tag = meta.get("program") or meta.get("campaign") or ""
    headline = f"run {str(key)[:16]} ({kind})"
    if tag:
        headline += f" — {tag}"
    headline += f" — {report.get('state')}"
    lines.append(headline)

    scan = report.get("scan")
    integrity = "clean" if scan == SCAN_OK else f"{scan} tail tolerated"
    lines.append(f"  events       {report.get('events')} recorded ({integrity})")

    done = report.get("done")
    total = report.get("total")
    seconds = report.get("seconds")
    progress = f"{done}/{total}" if total is not None else str(done)
    line = f"  progress     {progress} experiments"
    if seconds:
        line += f" in {_fmt_seconds(seconds)}"
        if done:
            line += f" — {done / seconds:.1f}/s"
    lines.append(line)

    phases = report.get("phase_seconds") or {}
    if phases:
        covered = sum(phases.values()) or 1.0
        parts = []
        ordered = [p for p in _PHASE_ORDER if p in phases]
        ordered += [p for p in sorted(phases) if p not in _PHASE_ORDER]
        for phase in ordered:
            value = phases[phase]
            parts.append(f"{phase} {_fmt_seconds(value)} ({100.0 * value / covered:.1f}%)")
        lines.append("  phases       " + " · ".join(parts))
        cpu = report.get("phase_cpu_seconds") or {}
        if cpu:
            lines.append(
                "  phases(cpu)  "
                + " · ".join(f"{p} {_fmt_seconds(cpu[p])}" for p in ordered if p in cpu)
            )

    timeline = report.get("timeline") or []
    if timeline:
        cells = []
        for bucket in timeline:
            width = bucket["seconds"] or 1.0
            cells.append(f"t+{bucket['t']:.0f}s {bucket['units'] / width:.0f}/s")
        lines.append("  timeline     " + " · ".join(cells))

    supervision = report.get("supervision") or {}
    lines.append(
        "  supervision  "
        + " ".join(f"{name}={supervision.get(name, 0)}" for name in sorted(supervision))
    )

    cache = report.get("cache") or {}
    if cache:
        hits = cache.get("hits") or {}
        misses = cache.get("misses") or {}
        kinds = sorted(set(hits) | set(misses))
        parts = [f"{k}: {hits.get(k, 0)} hits/{misses.get(k, 0)} misses" for k in kinds]
        derivations = cache.get("derivations") or {}
        if derivations:
            parts.append(
                "derivations "
                + " ".join(f"{k}={derivations[k]}" for k in sorted(derivations))
            )
        if parts:
            lines.append("  cache        " + " · ".join(parts))

    resume = report.get("resume") or {}
    if resume.get("chunks"):
        lines.append(
            f"  resume       {resume['chunks']} chunks ({resume['units']} units) "
            "replayed from the chunk ledger"
        )
    return "\n".join(lines)
