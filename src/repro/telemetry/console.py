"""Leveled console reporter for the CLI's human-facing lines.

Three output roles, mapped onto the CLI's existing conventions:

* ``result`` — final answers and summaries: stdout, printed even under
  ``--quiet`` (CI smoke steps grep these).
* ``note`` — progress and advisory lines: stderr, suppressed by ``--quiet``.
* ``detail`` — extra diagnostics: stdout, shown only with ``-v``.
* ``warn`` — always shown, stderr.

Color is used only for emphasis (bold/dim/yellow), only when the stream is
a TTY, and never when ``NO_COLOR`` is set (https://no-color.org/).
"""

from __future__ import annotations

import os
import sys
from typing import Optional, TextIO

QUIET = 0
NORMAL = 1
VERBOSE = 2


class ConsoleReporter:
    """Routes CLI output through one leveled, color-aware funnel."""

    def __init__(
        self,
        verbosity: int = NORMAL,
        *,
        out: Optional[TextIO] = None,
        err: Optional[TextIO] = None,
        color: Optional[bool] = None,
    ) -> None:
        self.verbosity = verbosity
        self.out = out if out is not None else sys.stdout
        self.err = err if err is not None else sys.stderr
        if color is None:
            color = (
                "NO_COLOR" not in os.environ
                and hasattr(self.out, "isatty")
                and self.out.isatty()
            )
        self.color = bool(color)

    @classmethod
    def from_flags(cls, quiet: bool = False, verbose: bool = False) -> "ConsoleReporter":
        if quiet:
            return cls(QUIET)
        return cls(VERBOSE if verbose else NORMAL)

    # ---------------------------------------------------------------- styling
    def _style(self, text: str, code: str) -> str:
        if not self.color:
            return text
        return f"\x1b[{code}m{text}\x1b[0m"

    def bold(self, text: str) -> str:
        return self._style(text, "1")

    def dim(self, text: str) -> str:
        return self._style(text, "2")

    # ----------------------------------------------------------------- output
    def result(self, message: str = "") -> None:
        """Final answer lines: always printed, stdout."""
        print(message, file=self.out)

    def note(self, message: str = "") -> None:
        """Progress/advisory lines: stderr, silenced by ``--quiet``."""
        if self.verbosity > QUIET:
            print(message, file=self.err)

    def detail(self, message: str = "") -> None:
        """Extra diagnostics: stdout, only with ``-v``."""
        if self.verbosity >= VERBOSE:
            print(message, file=self.out)

    def warn(self, message: str) -> None:
        """Problems worth surfacing regardless of verbosity: stderr."""
        print(self._style(message, "33"), file=self.err)
