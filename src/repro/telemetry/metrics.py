"""Process-global metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. *Hot-path cheap.*  Callers bind the instrument object once and bump a
   plain attribute (``counter.value += n``).  No locks — every repro worker
   is a single-threaded process, and cross-process aggregation happens by
   merging snapshots, never by sharing instruments.
2. *Mergeable.*  :meth:`MetricsRegistry.snapshot` returns a plain dict of
   JSON/pickle-friendly scalars and lists.  Worker processes compute a
   delta against the snapshot taken at chunk start and ship it back over
   the supervisor pipe; :meth:`MetricsRegistry.merge` folds any number of
   such snapshots into the parent registry.  Merging is commutative and
   associative (sums all the way down), which the test suite proves.
3. *Optional.*  One process-wide flag (:func:`enabled`, default on, env
   ``REPRO_TELEMETRY=0`` to disable) lets hot code skip instrumentation
   entirely; the VM checks it once per segment, never per tick.

Naming convention (also documented in the README): Prometheus-style
``snake_case`` with a ``repro_`` prefix, ``_total`` suffix for counters and
``_seconds`` for time, plus an optional label dict for low-cardinality
dimensions (``kind``, ``phase``, ``span``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value.  Bump via ``.value += n`` or :meth:`inc`."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (``.set``); merged across processes by max."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: cumulative-style export, plain-list storage.

    ``buckets`` are the upper bounds (exclusive of ``+Inf``, which is
    implicit).  ``observe`` walks the bound list — keep it short (≤ ~12
    bounds) on hot paths.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, bounds: Iterable[float], labels: _LabelKey = ()
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Named instruments plus snapshot/merge/export plumbing."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------- instruments
    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        if help:
            self._help.setdefault(name, help)
        return instrument

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        if help:
            self._help.setdefault(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Iterable[float],
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, bounds, key[1])
            self._histograms[key] = instrument
        if help:
            self._help.setdefault(name, help)
        return instrument

    # --------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, object]:
        """Picklable plain-dict copy of every instrument's current state."""
        return {
            "counters": {
                _flat(key): instrument.value
                for key, instrument in self._counters.items()
            },
            "gauges": {
                _flat(key): instrument.value
                for key, instrument in self._gauges.items()
            },
            "histograms": {
                _flat(key): {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
                for key, instrument in self._histograms.items()
            },
        }

    def snapshot_delta(self, before: Mapping[str, object]) -> Dict[str, object]:
        """What happened since ``before`` (a prior :meth:`snapshot`).

        Gauges are carried at their current value (last write wins has no
        meaningful delta); counters and histogram cells subtract.
        """
        now = self.snapshot()
        prior_counters = before.get("counters", {})
        delta_counters = {}
        for flat, value in now["counters"].items():
            shifted = value - prior_counters.get(flat, 0.0)
            if shifted:
                delta_counters[flat] = shifted
        prior_hists = before.get("histograms", {})
        delta_hists = {}
        for flat, hist in now["histograms"].items():
            prior = prior_hists.get(flat)
            if prior is None:
                if hist["count"]:
                    delta_hists[flat] = hist
                continue
            counts = [
                a - b for a, b in zip(hist["counts"], prior["counts"])
            ]
            if any(counts):
                delta_hists[flat] = {
                    "bounds": hist["bounds"],
                    "counts": counts,
                    "sum": hist["sum"] - prior["sum"],
                    "count": hist["count"] - prior["count"],
                }
        return {
            "counters": delta_counters,
            "gauges": now["gauges"],
            "histograms": delta_hists,
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counter and histogram merging is sum-based, hence commutative and
        associative; gauges keep the maximum (the only order-independent
        choice for point-in-time values).
        """
        for flat, value in snapshot.get("counters", {}).items():
            name, labels = _unflat(flat)
            self.counter(name, dict(labels)).value += value
        for flat, value in snapshot.get("gauges", {}).items():
            name, labels = _unflat(flat)
            gauge = self.gauge(name, dict(labels))
            if value > gauge.value:
                gauge.value = value
        for flat, hist in snapshot.get("histograms", {}).items():
            name, labels = _unflat(flat)
            instrument = self.histogram(name, hist["bounds"], dict(labels))
            if list(instrument.bounds) != [float(b) for b in hist["bounds"]]:
                # Bucket layouts drifted between processes; counts cannot be
                # aligned cell-by-cell, so fold into sum/count only.
                instrument.sum += hist["sum"]
                instrument.count += hist["count"]
                instrument.counts[-1] += hist["count"]
                continue
            for index, cell in enumerate(hist["counts"]):
                instrument.counts[index] += cell
            instrument.sum += hist["sum"]
            instrument.count += hist["count"]

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._help.clear()

    # ------------------------------------------------------------------ export
    def to_prometheus_text(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def header(name: str, metric_type: str) -> None:
            if seen_types.get(name) is not None:
                return
            seen_types[name] = metric_type
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")

        for (name, labels), instrument in sorted(self._counters.items()):
            header(name, "counter")
            lines.append(f"{name}{_render_labels(labels)} {_num(instrument.value)}")
        for (name, labels), instrument in sorted(self._gauges.items()):
            header(name, "gauge")
            lines.append(f"{name}{_render_labels(labels)} {_num(instrument.value)}")
        for (name, labels), instrument in sorted(self._histograms.items()):
            header(name, "histogram")
            cumulative = 0
            for bound, cell in zip(instrument.bounds, instrument.counts):
                cumulative += cell
                bucket_labels = labels + (("le", _num(bound)),)
                lines.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                )
            cumulative += instrument.counts[-1]
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_render_labels(inf_labels)} {cumulative}")
            lines.append(f"{name}_sum{_render_labels(labels)} {_num(instrument.sum)}")
            lines.append(f"{name}_count{_render_labels(labels)} {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_flat_dict(self) -> Dict[str, float]:
        """Counters and gauges as one flat ``name{labels} -> value`` dict."""
        flat: Dict[str, float] = {}
        for key, instrument in self._counters.items():
            flat[_flat(key)] = instrument.value
        for key, instrument in self._gauges.items():
            flat[_flat(key)] = instrument.value
        return flat


def _flat(key: Tuple[str, _LabelKey]) -> str:
    name, labels = key
    return name + _render_labels(labels)


def _unflat(flat: str) -> Tuple[str, _LabelKey]:
    if "{" not in flat:
        return flat, ()
    name, _, rest = flat.partition("{")
    body = rest.rstrip("}")
    pairs = []
    for item in body.split(","):
        if not item:
            continue
        label, _, value = item.partition("=")
        pairs.append((label, value.strip('"')))
    return name, tuple(pairs)


def _num(value: float) -> str:
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def labeled_totals(
    snapshot: Mapping[str, object], name: str, label: str
) -> Dict[str, float]:
    """Counter ``name`` totals from a snapshot, keyed by ``label`` value.

    Used to lift one dimension out of a snapshot delta without rebuilding a
    registry — e.g. per-kind derivation counts for the run-finished event.
    """
    totals: Dict[str, float] = {}
    counters = snapshot.get("counters", {}) if snapshot else {}
    for flat, value in counters.items():
        metric, labels = _unflat(flat)
        if metric != name:
            continue
        key = dict(labels).get(label, "")
        totals[key] = totals.get(key, 0.0) + value
    return totals


def note_derivation(kind: str, tag: str) -> None:
    """Count one real artifact derivation (golden profile, codegen source).

    The canonical counter is ``repro_derivations_total{kind=...}``; the
    ``$REPRO_DERIVATION_LOG`` file append (``<pid> <tag>`` lines) is kept as
    a compat shim so multi-process zero-re-derivation tests can observe
    which processes derived what without wiring up snapshot merging.
    """
    registry().counter(
        "repro_derivations_total",
        {"kind": kind},
        help="From-scratch artifact derivations (cache hits never count).",
    ).value += 1
    log_path = os.environ.get("REPRO_DERIVATION_LOG")
    if log_path:
        try:
            with open(log_path, "a") as handle:
                handle.write(f"{os.getpid()} {tag}\n")
        except OSError:
            pass


def snapshot_from(snapshot: Mapping[str, object]) -> MetricsRegistry:
    """A fresh registry holding exactly the contents of ``snapshot``."""
    loaded = MetricsRegistry()
    loaded.merge(snapshot)
    return loaded


# --------------------------------------------------------------- global state
_REGISTRY = MetricsRegistry()
_ENABLED = os.environ.get("REPRO_TELEMETRY", "1") != "0"


def registry() -> MetricsRegistry:
    """The process-global registry (workers ship deltas of this one)."""
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip instrumentation on/off process-wide; returns the previous value.

    Code that binds instruments at setup time (the VM segment counters, the
    phase clock) re-checks this at bind time, so flipping mid-run affects
    new binds only — exactly what the overhead benchmark needs.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous
