"""Structured JSONL run-event log (``RunLog``) and tolerant readers.

One file per run — ``<runlog_dir>/<run-key>.jsonl``, written next to the
chunk ledger under the artifact cache — records campaign lifecycle events:

    {"seq": 0, "ts": ..., "run": <key>, "type": "run_started", ...}
    {"seq": 1, "ts": ..., "run": <key>, "type": "chunk_dispatched", ...}
    ...
    {"seq": N, "ts": ..., "run": <key>, "type": "run_finished", ...}

Every event carries a monotonic sequence number and the content-addressed
run key, so interleaved or concatenated logs (future multi-host shards)
remain attributable and orderable.  Appends are flushed per event;
``run_finished`` is additionally fsync'd.  Reading mirrors the chunk
ledger's crash tolerance: a torn trailing line (killed mid-append) is
dropped silently, while mid-file corruption truncates the replay at the
first bad line and is reported to the caller.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple

RUNLOG_VERSION = 1

#: ``scan_jsonl`` statuses.
SCAN_OK = "ok"
SCAN_TORN = "torn"
SCAN_CORRUPT = "corrupt"


def scan_jsonl(lines: List[str]) -> Tuple[List[dict], str]:
    """Parse JSONL lines, tolerating the crash signature of an append.

    Returns ``(records, status)``: ``"ok"`` when every line parsed,
    ``"torn"`` when only the *final* line failed (a killed process's
    half-written append — the preceding records are intact and returned),
    ``"corrupt"`` when a non-final line failed (records up to the bad line
    are returned; the caller decides how much to trust them).
    """
    records: List[dict] = []
    for position, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except (ValueError, TypeError):
            if position == len(lines):
                return records, SCAN_TORN
            return records, SCAN_CORRUPT
        if not isinstance(record, dict):
            if position == len(lines):
                return records, SCAN_TORN
            return records, SCAN_CORRUPT
        records.append(record)
    return records, SCAN_OK


def trim_torn_tail(path: Path) -> None:
    """Truncate a half-written trailing line so the next append starts clean.

    Appending after a torn tail would glue the new record onto the partial
    line, turning a tolerated ``torn`` scan into a fatal ``corrupt`` one on
    the next load.  Only the final line is examined — mid-file corruption is
    the callers' (stricter) business; both the run log and the chunk ledger
    refuse to append after one.
    """
    try:
        with open(path, "rb+") as handle:
            data = handle.read()
            if not data:
                return
            body, _, tail = data.rpartition(b"\n")
            if tail:  # no trailing newline: the classic killed append
                handle.truncate(len(body) + 1 if body else 0)
                return
            prior, _, last = body.rpartition(b"\n")
            if not last:
                return
            try:
                if isinstance(json.loads(last.decode("utf-8")), dict):
                    return
            except (ValueError, UnicodeDecodeError):
                pass
            handle.truncate(len(prior) + 1 if prior else 0)
    except OSError:
        pass


def read_events(path: Path) -> Tuple[List[dict], str]:
    """All events of a run log, torn-tail tolerant.  ``(events, status)``."""
    try:
        raw = Path(path).read_text()
    except OSError:
        return [], SCAN_OK
    lines = raw.splitlines()
    if not lines:
        return [], SCAN_OK
    return scan_jsonl(lines)


def latest_run_log(directory: Path) -> Optional[Path]:
    """The most recently written ``.jsonl`` run log under ``directory``."""
    directory = Path(directory)
    try:
        candidates = sorted(directory.glob("*.jsonl"))
    except OSError:
        return None
    if not candidates:
        return None
    return max(candidates, key=lambda p: (p.stat().st_mtime, p.name))


def find_run_log(directory: Path, key_prefix: str) -> Optional[Path]:
    """The run log whose key starts with ``key_prefix`` (unique match only)."""
    directory = Path(directory)
    matches = sorted(directory.glob(f"{key_prefix}*.jsonl"))
    if len(matches) == 1:
        return matches[0]
    exact = directory / f"{key_prefix}.jsonl"
    if exact.exists():
        return exact
    return None


class RunLog:
    """Append-only JSONL event stream for one run key."""

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self.key = key
        self.seq = 0
        self._handle: Optional[IO[str]] = None

    @classmethod
    def open(
        cls,
        directory: Path,
        key: str,
        *,
        meta: Optional[dict] = None,
        resume: bool = False,
    ) -> "RunLog":
        """Open the event log for ``key``; truncate unless resuming.

        On resume the sequence counter continues after the last intact
        event, so a resumed run's events append to the original stream
        rather than restarting it.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        log = cls(directory / f"{key}.jsonl", key)
        fresh = True
        if resume:
            events, status = read_events(log.path)
            if events and status != SCAN_CORRUPT:
                log.seq = max(int(e.get("seq", -1)) for e in events) + 1
                fresh = False
                if status == SCAN_TORN:
                    trim_torn_tail(log.path)
        log._handle = open(log.path, "w" if fresh else "a", encoding="utf-8")
        if fresh:
            log.emit(
                "run_log",
                version=RUNLOG_VERSION,
                meta=dict(meta or {}),
                sync=True,
            )
        return log

    def emit(self, event_type: str, *, sync: bool = False, **fields) -> None:
        """Append one event (flushed; fsync'd when ``sync``)."""
        if self._handle is None:
            return
        record: Dict[str, object] = {
            "seq": self.seq,
            "ts": round(time.time(), 6),
            "run": self.key,
            "type": event_type,
        }
        record.update(fields)
        self.seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if sync:
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
