"""Unified observability layer: metrics, spans, structured run events.

The subsystem is dependency-light (stdlib only) and split by concern:

* :mod:`repro.telemetry.metrics` — a process-global :class:`MetricsRegistry`
  of named counters, gauges and fixed-bucket histograms.  Snapshots are
  plain picklable dicts, so worker processes ship their deltas back over
  the supervisor pipe and the parent merges them alongside partial results.
* :mod:`repro.telemetry.spans` — :class:`Tracer`/:class:`Span` for
  hierarchical phase timing (campaign → chunk → experiment phases) plus
  :class:`PhaseClock`, the single-cursor lap timer the experiment runner
  derives ``phase_seconds`` from (no gaps, no double counting).
* :mod:`repro.telemetry.events` — :class:`RunLog`, the JSONL event log
  written next to the chunk ledger under the artifact cache, and its
  torn-tail-tolerant reader.
* :mod:`repro.telemetry.report` — renders ``repro report`` from a recorded
  event log.
* :mod:`repro.telemetry.console` — the leveled console reporter the CLI
  routes its human-facing lines through.

Everything is guarded by one process-wide enable flag (default on; set
``REPRO_TELEMETRY=0`` to disable).  Hot paths check the flag once per
segment, never per tick, so the disabled cost is a single ``is None`` test.
"""

from repro.telemetry.metrics import (
    MetricsRegistry,
    enabled,
    registry,
    set_enabled,
)
from repro.telemetry.spans import PhaseClock, Span, Tracer
from repro.telemetry.events import RunLog, read_events

__all__ = [
    "MetricsRegistry",
    "PhaseClock",
    "RunLog",
    "Span",
    "Tracer",
    "enabled",
    "read_events",
    "registry",
    "set_enabled",
]
