"""Hierarchical span timing and the single-cursor phase clock.

Two instruments with different duty cycles:

* :class:`Tracer`/:class:`Span` — coarse, hierarchical: a campaign span
  contains chunk spans which contain batch spans.  Each finished span
  accumulates wall-clock and per-process CPU seconds under its slash-joined
  path (``campaign/chunk``) and, when telemetry is enabled, mirrors into
  the metrics registry (``repro_span_seconds_total{span=...}``).
* :class:`PhaseClock` — fine, flat: the experiment runner's per-phase
  accounting (restore / pre_window / window / tail).  One monotonic cursor
  is shared by every lap, so the end of one phase *is* the start of the
  next: phase totals sum exactly to the covered wall clock — no gaps, no
  double counting at segment boundaries (the bug class the hand-rolled
  ``perf_counter()`` pairs it replaces was prone to).
"""

from __future__ import annotations

from time import perf_counter, process_time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry import metrics as _metrics


class Span:
    """One timed region; use via ``with tracer.span(name):``."""

    __slots__ = ("tracer", "name", "path", "wall", "cpu", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, path: str) -> None:
        self.tracer = tracer
        self.name = name
        self.path = path
        self.wall = 0.0
        self.cpu = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "Span":
        self._wall0 = perf_counter()
        self._cpu0 = process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = perf_counter() - self._wall0
        self.cpu = process_time() - self._cpu0
        self.tracer._finish(self)


class Tracer:
    """Accumulates finished spans under their hierarchical path."""

    def __init__(self, publish: Optional[bool] = None) -> None:
        #: path -> [wall_seconds, cpu_seconds, count]
        self.totals: Dict[str, List[float]] = {}
        self._stack: List[str] = []
        self._publish = _metrics.enabled() if publish is None else bool(publish)

    def span(self, name: str) -> Span:
        path = "/".join(self._stack + [name])
        self._stack.append(name)
        return Span(self, name, path)

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.name:
            self._stack.pop()
        cell = self.totals.get(span.path)
        if cell is None:
            cell = [0.0, 0.0, 0]
            self.totals[span.path] = cell
        cell[0] += span.wall
        cell[1] += span.cpu
        cell[2] += 1
        if self._publish:
            registry = _metrics.registry()
            registry.counter(
                "repro_span_seconds_total",
                {"span": span.path},
                help="Wall-clock seconds spent inside each span path.",
            ).value += span.wall
            registry.counter(
                "repro_span_cpu_seconds_total", {"span": span.path}
            ).value += span.cpu
            registry.counter(
                "repro_spans_total", {"span": span.path}
            ).value += 1

    def wall_seconds(self, path: str) -> float:
        cell = self.totals.get(path)
        return cell[0] if cell else 0.0


class PhaseClock:
    """Single-cursor lap timer: contiguous, gap-free phase attribution.

    ``start()`` plants the cursor; each ``lap(phase)`` attributes everything
    since the previous lap (or start) to ``phase`` and advances the cursor
    with the *same* time reading.  Wall and CPU lanes advance together.
    Totals persist across ``start()`` calls, so one clock accumulates a
    whole runner's lifetime of experiments.
    """

    __slots__ = ("wall", "cpu", "_wall_cursor", "_cpu_cursor", "_counters")

    def __init__(self, phases: Iterable[str] = ()) -> None:
        self.wall: Dict[str, float] = {phase: 0.0 for phase in phases}
        self.cpu: Dict[str, float] = {phase: 0.0 for phase in phases}
        self._wall_cursor = 0.0
        self._cpu_cursor = 0.0
        # Bind registry counters once; laps pay one attribute add per lane.
        # When telemetry is disabled the bind is skipped and laps touch
        # only the local dicts.
        self._counters: Dict[str, Tuple[object, object]] = {}
        if _metrics.enabled():
            registry = _metrics.registry()
            for phase in self.wall:
                self._counters[phase] = (
                    registry.counter(
                        "repro_phase_seconds_total",
                        {"phase": phase},
                        help="Wall-clock seconds per experiment phase.",
                    ),
                    registry.counter(
                        "repro_phase_cpu_seconds_total", {"phase": phase}
                    ),
                )

    def start(self) -> None:
        self._wall_cursor = perf_counter()
        self._cpu_cursor = process_time()

    def lap(self, phase: str) -> float:
        now = perf_counter()
        cpu_now = process_time()
        wall_delta = now - self._wall_cursor
        cpu_delta = cpu_now - self._cpu_cursor
        self._wall_cursor = now
        self._cpu_cursor = cpu_now
        self.wall[phase] = self.wall.get(phase, 0.0) + wall_delta
        self.cpu[phase] = self.cpu.get(phase, 0.0) + cpu_delta
        bound = self._counters.get(phase)
        if bound is not None:
            bound[0].value += wall_delta
            bound[1].value += cpu_delta
        return wall_delta

    def total_wall(self) -> float:
        return sum(self.wall.values())
