"""Content-addressed persistent artifact cache for derived planning state.

Everything the planning pipeline derives from a workload — the golden trace
with its VM checkpoints, the def-use index, the pruned campaign plan — is a
pure function of (module contents, entry, workload args, derivation knobs,
code version).  This module caches those artifacts on disk under a key that
hashes exactly those inputs, so that:

* repeated CLI invocations and benchmark runs pay the derivation cost once;
* multiprocess workers (``spawn`` pools, separate hosts sharing a cache
  directory) warm up from the cache instead of re-deriving per process;
* any change to the module (e.g. ``BasicBlock.append`` /
  ``replace_operand``), the workload input, the derivation knobs or the
  pipeline implementation (:data:`CODE_VERSION`) changes the key and misses
  cleanly.

Artifacts are stored as pickled *plain payloads* (arrays, tuples, bytes) —
never as live objects holding module or decoded-program references — and are
re-bound against the current process's compiled module on load.  A corrupted
or truncated artifact file is treated as a miss and recomputed; the cache is
an accelerator, never a source of truth.

Layout: ``<root>/<kind>/<sha256>.pkl``, written atomically (tmp + rename).

The active cache is configured explicitly (:func:`configure`, e.g. from
``ExperimentSession(cache_dir=...)`` or ``repro exhaustive --cache-dir``) or
through the ``REPRO_CACHE_DIR`` environment variable, which worker processes
inherit.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry import metrics as telemetry_metrics

#: Version tag of the derivation pipeline, mixed into every cache key.  Bump
#: whenever the serialised payloads or the semantics of trace collection,
#: def-use extraction, inference or planning change.
CODE_VERSION = "5.0-columnar"

#: Frame slots holding the VM's UNDEFINED sentinel are encoded as this token
#: (frames otherwise only hold ints/floats, so the string cannot collide).
_UNDEF_TOKEN = "\x00undef\x00"


class CacheStats:
    """Hit/miss/store counters of one cache instance (per kind).

    Every bump mirrors into the process-global telemetry registry
    (``repro_cache_<event>_total{kind=...}``), so worker-process cache
    traffic reaches campaign reports via the ordinary snapshot merge.
    """

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.stores: Dict[str, int] = {}

    def note(self, event: str, kind: str) -> None:
        """Record one cache ``event`` (``hits``/``misses``/``stores``)."""
        table: Dict[str, int] = getattr(self, event)
        table[kind] = table.get(kind, 0) + 1
        if telemetry_metrics.enabled():
            telemetry_metrics.registry().counter(
                f"repro_cache_{event}_total",
                {"kind": kind},
                help="Artifact-cache events by artifact kind.",
            ).value += 1

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "stores": dict(self.stores),
        }

    def _bump(self, table: Dict[str, int], kind: str) -> None:
        table[kind] = table.get(kind, 0) + 1

    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    def describe(self) -> str:
        return f"{self.hit_count} hits, {self.miss_count} misses"


class ArtifactCache:
    """A content-addressed on-disk cache of derived planning artifacts."""

    def __init__(self, root: Union[str, Path], *, code_version: str = CODE_VERSION) -> None:
        self.root = Path(root)
        self.code_version = code_version
        self.stats = CacheStats()

    # -- keys ---------------------------------------------------------------------
    def key_for(self, *parts) -> str:
        """A stable content hash over ``parts`` plus the code version."""
        digest = hashlib.sha256()
        digest.update(self.code_version.encode())
        for part in parts:
            digest.update(b"\x1f")
            digest.update(repr(part).encode())
        return digest.hexdigest()

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    # -- IO -----------------------------------------------------------------------
    def load(self, kind: str, key: str):
        """The payload stored under (kind, key), or None on any miss.

        A corrupted, truncated or unreadable artifact counts as a miss —
        callers recompute and overwrite it.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.note("misses", kind)
            return None
        except Exception:
            # Unpicklable garbage / short file / permission problem: fall
            # back to recomputation rather than crash planning.
            self.stats.note("misses", kind)
            return None
        self.stats.note("hits", kind)
        return payload

    def store(self, kind: str, key: str, payload) -> bool:
        """Atomically persist a payload; best-effort (False on any failure).

        A failed write never crashes planning and never leaves a partial
        ``.tmp-*`` file behind — the artifact simply stays a miss.
        """
        path = self.path_for(kind, key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=path.parent, prefix=".tmp-", delete=False
            )
            tmp_name = handle.name
            try:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                # fsync before the rename: os.replace is atomic in the
                # namespace but says nothing about the *data* reaching disk.
                # Without it, a host crash can leave a fully-named artifact
                # with torn contents — which load() treats as a miss, but a
                # resumed campaign would first waste time reading it.
                os.fsync(handle.fileno())
            finally:
                handle.close()
            os.replace(tmp_name, path)
            tmp_name = None
        except Exception:
            return False
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        self.stats.note("stores", kind)
        return True

    def sweep_stale_tmp(self, *, max_age_seconds: float = 3600.0) -> int:
        """Delete orphaned ``.tmp-*`` files left by writers that were killed.

        A SIGKILL between ``NamedTemporaryFile`` and ``os.replace`` strands
        the temp file forever (the normal path either renames or unlinks
        it).  Restarted campaigns call this on cache activation.  Files
        younger than ``max_age_seconds`` are spared: they may belong to a
        concurrently *live* writer in another process.  Returns the number
        of files removed; never raises.
        """
        removed = 0
        try:
            cutoff = time.time() - max_age_seconds
            for tmp in self.root.glob("*/.tmp-*"):
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                        removed += 1
                except OSError:
                    continue
        except OSError:
            pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArtifactCache {self.root} ({self.stats.describe()})>"


# -- active-cache configuration ----------------------------------------------------

_EXPLICIT: Optional[ArtifactCache] = None
_ENV_CACHES: Dict[str, ArtifactCache] = {}


def configure(cache_dir: Optional[Union[str, Path]]) -> Optional[ArtifactCache]:
    """Set (or, with None, clear) the process-wide explicit cache directory.

    Re-configuring with the same directory keeps the existing instance (and
    its hit/miss counters) — sessions and worker providers both point here.
    """
    global _EXPLICIT
    if cache_dir is None:
        _EXPLICIT = None
    elif _EXPLICIT is None or Path(cache_dir) != _EXPLICIT.root:
        _EXPLICIT = ArtifactCache(cache_dir)
        _EXPLICIT.sweep_stale_tmp()
    return _EXPLICIT


def active_cache() -> Optional[ArtifactCache]:
    """The cache the pipeline should consult, or None when caching is off.

    An explicit :func:`configure` wins; otherwise the ``REPRO_CACHE_DIR``
    environment variable (inherited by worker processes) selects one.
    """
    if _EXPLICIT is not None:
        return _EXPLICIT
    env = os.environ.get("REPRO_CACHE_DIR")
    if not env:
        return None
    cache = _ENV_CACHES.get(env)
    if cache is None:
        cache = _ENV_CACHES[env] = ArtifactCache(env)
    return cache


def module_fingerprint(module) -> str:
    """Content hash of a module's printed form.

    The LLVM-like text covers globals (initialisers included) and every
    instruction operand, so any structural mutation — appending an
    instruction, rewriting an operand — changes the fingerprint.
    """
    from repro.ir.printer import print_module

    return hashlib.sha256(print_module(module).encode()).hexdigest()


# -- golden trace + checkpoint store -----------------------------------------------


def golden_key(
    cache: ArtifactCache,
    module,
    entry: str,
    args: Sequence,
    checkpoint_interval: Optional[int],
    max_checkpoints: int,
    limits,
) -> str:
    return cache.key_for(
        "golden",
        module_fingerprint(module),
        entry,
        tuple(args),
        checkpoint_interval,
        max_checkpoints,
        limits,
    )


def _encode_frame(frame: Tuple) -> Tuple:
    from repro.vm.program import UNDEFINED

    return tuple(_UNDEF_TOKEN if value is UNDEFINED else value for value in frame)


def _decode_frame(frame: Tuple) -> Tuple:
    from repro.vm.program import UNDEFINED

    return tuple(
        UNDEFINED if isinstance(value, str) and value == _UNDEF_TOKEN else value
        for value in frame
    )


def serialize_golden(golden, store) -> dict:
    """Flatten a (GoldenTrace, CheckpointStore) pair into a plain payload.

    Snapshot frames reference decode-specific objects (the decoded function,
    the UNDEFINED sentinel); they are replaced by names/tokens here and
    re-bound against the loading process's decode in
    :func:`deserialize_golden`.
    """
    return {
        "meta_table": [meta.to_fields() for meta in golden.meta_table],
        "meta_ids": golden.meta_ids.tobytes(),
        "output": golden.output,
        "return_value": golden.return_value,
        "checkpoint_ticks": golden.checkpoint_ticks,
        "entry": store.entry,
        "args_key": store.args_key,
        "interval": store.interval,
        "snapshots": [
            (
                snapshot.tick,
                snapshot.output,
                snapshot.memory,
                [
                    (
                        frame.dfunc.name,
                        frame.block_index,
                        frame.position,
                        _encode_frame(frame.frame),
                        frame.stack_mark,
                    )
                    for frame in snapshot.frames
                ],
            )
            for snapshot in store.snapshots
        ],
    }


def deserialize_golden(payload: dict, decoded):
    """Rebuild (GoldenTrace, CheckpointStore) bound to the current decode."""
    from repro.vm.snapshot import CheckpointStore, FrameSnapshot, VMSnapshot
    from repro.vm.trace import GoldenTrace, StaticInstructionMeta

    meta_table = [
        StaticInstructionMeta.from_fields(*fields) for fields in payload["meta_table"]
    ]
    meta_ids = array("I")
    meta_ids.frombytes(payload["meta_ids"])
    golden = GoldenTrace.from_columns(
        meta_table,
        meta_ids,
        payload["output"],
        payload["return_value"],
        payload["checkpoint_ticks"],
    )
    snapshots = []
    for tick, output, memory, frames in payload["snapshots"]:
        snapshots.append(
            VMSnapshot(
                tick=tick,
                frames=tuple(
                    FrameSnapshot(
                        decoded.functions[name],
                        block_index,
                        frame_position,
                        _decode_frame(frame),
                        stack_mark,
                    )
                    for name, block_index, frame_position, frame, stack_mark in frames
                ),
                memory=memory,
                output=output,
                program=decoded,
            )
        )
    store = CheckpointStore(
        decoded,
        payload["entry"],
        payload["args_key"],
        payload["interval"],
        snapshots,
    )
    return golden, store


# -- def-use index -----------------------------------------------------------------


def defuse_key(cache: ArtifactCache, module, entry: str, args: Sequence) -> str:
    return cache.key_for("defuse", module_fingerprint(module), entry, tuple(args))


# -- pruned plans ------------------------------------------------------------------


def plan_key(
    cache: ArtifactCache,
    module,
    entry: str,
    args: Sequence,
    technique: str,
    infer: bool,
) -> str:
    return cache.key_for(
        "plan", module_fingerprint(module), entry, tuple(args), technique, infer
    )


def serialize_plan(plan) -> dict:
    """Flatten a PrunedPlan into primitive columns (fast to unpickle)."""
    from repro.injection.outcome import Outcome

    outcome_code = {outcome: code for code, outcome in enumerate(Outcome)}
    opcode_table: List[str] = []
    opcode_ids: Dict[str, int] = {}

    def opcode_id(opcode: str) -> int:
        cached = opcode_ids.get(opcode)
        if cached is None:
            cached = opcode_ids[opcode] = len(opcode_table)
            opcode_table.append(opcode)
        return cached

    class_bit = array("H")
    rep_ordinal = array("q")
    rep_tick = array("q")
    rep_slot = array("i")
    rep_bits = array("H")
    rep_opcode = array("I")
    member_offsets = array("q", [0])
    member_ticks = array("q")
    member_slots = array("i")
    keys: List[Tuple] = []
    total_members = 0
    for cls in plan.classes:
        keys.append(cls.key)
        class_bit.append(cls.bit)
        representative = cls.representative
        rep_ordinal.append(representative.ordinal)
        rep_tick.append(representative.dynamic_index)
        rep_slot.append(-1 if representative.slot is None else representative.slot)
        rep_bits.append(representative.register_bits)
        rep_opcode.append(opcode_id(representative.opcode))
        for tick, slot in cls.members:
            member_ticks.append(tick)
            member_slots.append(-1 if slot is None else slot)
        total_members += len(cls.members)
        member_offsets.append(total_members)

    inferred_tick = array("q")
    inferred_slot = array("i")
    inferred_bit = array("H")
    inferred_code = bytearray()
    for (tick, slot, bit), outcome in plan.inferred_outcomes.items():
        inferred_tick.append(tick)
        inferred_slot.append(-1 if slot is None else slot)
        inferred_bit.append(bit)
        inferred_code.append(outcome_code[outcome])

    return {
        "technique": plan.technique,
        "total_errors": plan.total_errors,
        "candidate_count": plan.candidate_count,
        "keys": keys,
        "class_bit": class_bit.tobytes(),
        "rep_ordinal": rep_ordinal.tobytes(),
        "rep_tick": rep_tick.tobytes(),
        "rep_slot": rep_slot.tobytes(),
        "rep_bits": rep_bits.tobytes(),
        "rep_opcode": rep_opcode.tobytes(),
        "opcode_table": opcode_table,
        "member_offsets": member_offsets.tobytes(),
        "member_ticks": member_ticks.tobytes(),
        "member_slots": member_slots.tobytes(),
        "inferred_tick": inferred_tick.tobytes(),
        "inferred_slot": inferred_slot.tobytes(),
        "inferred_bit": inferred_bit.tobytes(),
        "inferred_code": bytes(inferred_code),
    }


def _from_bytes(typecode: str, payload: bytes) -> array:
    column = array(typecode)
    column.frombytes(payload)
    return column


def deserialize_plan(payload: dict):
    """Rebuild a PrunedPlan from its primitive columns."""
    from repro.errorspace.enumerate import SingleBitError
    from repro.errorspace.planner import EquivalenceClass, PrunedPlan
    from repro.injection.outcome import Outcome

    outcomes_by_code = list(Outcome)
    plan = PrunedPlan(
        technique=payload["technique"],
        total_errors=payload["total_errors"],
        candidate_count=payload["candidate_count"],
    )
    class_bit = _from_bytes("H", payload["class_bit"])
    rep_ordinal = _from_bytes("q", payload["rep_ordinal"])
    rep_tick = _from_bytes("q", payload["rep_tick"])
    rep_slot = _from_bytes("i", payload["rep_slot"])
    rep_bits = _from_bytes("H", payload["rep_bits"])
    rep_opcode = _from_bytes("I", payload["rep_opcode"])
    opcode_table = payload["opcode_table"]
    member_offsets = _from_bytes("q", payload["member_offsets"])
    member_ticks = _from_bytes("q", payload["member_ticks"])
    member_slots = _from_bytes("i", payload["member_slots"])
    classes = plan.classes
    for class_id, key in enumerate(payload["keys"]):
        slot = rep_slot[class_id]
        representative = SingleBitError(
            ordinal=rep_ordinal[class_id],
            dynamic_index=rep_tick[class_id],
            slot=None if slot < 0 else slot,
            bit=class_bit[class_id],
            register_bits=rep_bits[class_id],
            opcode=opcode_table[rep_opcode[class_id]],
        )
        lo = member_offsets[class_id]
        hi = member_offsets[class_id + 1]
        members = tuple(
            (
                member_ticks[position],
                None if member_slots[position] < 0 else member_slots[position],
            )
            for position in range(lo, hi)
        )
        classes.append(
            EquivalenceClass(
                class_id=class_id,
                key=key,
                bit=class_bit[class_id],
                representative=representative,
                members=members,
            )
        )
    inferred_tick = _from_bytes("q", payload["inferred_tick"])
    inferred_slot = _from_bytes("i", payload["inferred_slot"])
    inferred_bit = _from_bytes("H", payload["inferred_bit"])
    inferred_code = payload["inferred_code"]
    inferred_outcomes = plan.inferred_outcomes
    inferred_counts = plan.inferred_counts
    for position in range(len(inferred_tick)):
        slot = inferred_slot[position]
        outcome = outcomes_by_code[inferred_code[position]]
        inferred_outcomes[
            (
                inferred_tick[position],
                None if slot < 0 else slot,
                inferred_bit[position],
            )
        ] = outcome
        inferred_counts.add(outcome)
    return plan


def load_plan(cache: ArtifactCache, key: str):
    """A cached PrunedPlan, or None (missing/corrupted → recompute)."""
    payload = cache.load("plan", key)
    if payload is None:
        return None
    try:
        return deserialize_plan(payload)
    except Exception:
        return None


def store_plan(cache: ArtifactCache, key: str, plan) -> bool:
    return cache.store("plan", key, serialize_plan(plan))
