"""The runtime fault injector: performs scheduled bit flips during a VM run.

A :class:`FaultInjector` is built from a :class:`~repro.injection.faultmodel.FaultSpec`
and plugged into the interpreter as its read or write hook.  It implements the
paper's extended-LLFI semantics:

* the **first** flip happens at the time–location the spec names (a dynamic
  instruction index plus, for inject-on-read, a source-operand slot), with a
  uniformly random bit of that register;
* for ``win-size = 0`` all ``max-MBF`` flips target *distinct bits of the same
  register at the same dynamic instruction* (Fig. 2's "same register" mode);
* for ``win-size > 0`` each subsequent flip is scheduled ``win-size`` dynamic
  instructions after the previous one and lands on the first eligible register
  access at or after that time.  Scheduling uses the *faulty* run's dynamic
  instruction counter, exactly like LLFI's runtime counting — after the first
  flip the control flow may diverge from the golden trace, and errors that the
  program never reaches (because it crashed first) are simply not activated;
* every flip actually performed is recorded as an
  :class:`~repro.injection.faultmodel.InjectionRecord` (an *activated* error),
  which is what the RQ1 analysis of Fig. 3 consumes.

The hooks are slot-indexed and representation-agnostic: ``instruction`` is
whatever the executing backend passes (a decoded instruction on the hot path,
an IR instruction on the reference interpreter — both expose ``opcode``) and
``register`` is always the targeted
:class:`~repro.ir.values.VirtualRegister`.  Because the hooks fire on every
eligible register access of a run, their not-yet-scheduled exit path is kept
to a couple of attribute reads.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.errors import ConfigurationError
from repro.injection.faultmodel import FaultSpec, InjectionRecord
from repro.ir.values import VirtualRegister
from repro.vm import bitops
from repro.vm.interpreter import HookInstruction, RuntimeScalar


class FaultInjector:
    """Stateful hook object that injects the bit flips of one experiment."""

    def __init__(self, spec: FaultSpec) -> None:
        if spec.technique not in ("inject-on-read", "inject-on-write"):
            raise ConfigurationError(f"unknown technique {spec.technique!r}")
        self.spec = spec
        self.rng = random.Random(spec.seed)
        #: Flips actually performed (activated errors), in injection order.
        self.injections: List[InjectionRecord] = []
        self._next_time = spec.first_dynamic_index
        self._remaining = spec.max_mbf
        self._first_done = False
        # Hot-path constants, hoisted out of the per-access hook calls.
        self._is_read = spec.technique == "inject-on-read"
        self._first_slot = spec.first_slot
        self._first_index = spec.first_dynamic_index
        self._same_register = spec.same_register
        self._step = max(spec.win_size, 1)
        #: Pinned bit for the first flip (exhaustive enumeration); consumed
        #: by the first injection, subsequent flips always draw from the RNG.
        self._forced_bit = spec.first_bit

    # -- public accounting -------------------------------------------------------
    @property
    def activated_errors(self) -> int:
        """Number of bit flips that were actually performed."""
        return len(self.injections)

    @property
    def planned_errors(self) -> int:
        return self.spec.max_mbf

    @property
    def exhausted(self) -> bool:
        """True when every planned flip has been performed.

        The moment this turns true the hooks are pure pass-throughs: a
        windowed runner can detach them and finish the run at bare speed.
        """
        return self._remaining <= 0

    @property
    def next_scheduled_time(self) -> int:
        """Dynamic index of the next scheduled flip (first eligible access
        at or after it lands the flip).  Meaningless once :attr:`exhausted`."""
        return self._next_time

    @property
    def last_dynamic_index(self) -> Optional[int]:
        """Dynamic index of the most recent flip, or ``None`` before any."""
        if not self.injections:
            return None
        return self.injections[-1].dynamic_index

    # -- hooks wired into the interpreter ------------------------------------------
    def read_hook(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        slot: int,
        register: VirtualRegister,
        value: RuntimeScalar,
    ) -> RuntimeScalar:
        if not self._is_read:
            return value
        if self._remaining <= 0 or dynamic_index < self._next_time:
            return value
        return self._inject(dynamic_index, instruction, slot, register, value, "read")

    def write_hook(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        register: VirtualRegister,
        value: RuntimeScalar,
    ) -> RuntimeScalar:
        if self._is_read:
            return value
        if self._remaining <= 0 or dynamic_index < self._next_time:
            return value
        return self._inject(dynamic_index, instruction, None, register, value, "write")

    # -- injection logic ---------------------------------------------------------------
    def _inject(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        slot: Optional[int],
        register: VirtualRegister,
        value: RuntimeScalar,
        access: str,
    ) -> RuntimeScalar:
        if not self._first_done:
            # The first injection must land exactly on the location the spec
            # names.  If this access is earlier-than-scheduled the hooks
            # already returned; if it is the scheduled instruction but a
            # different operand slot, wait for the right slot.
            if dynamic_index == self._first_index:
                if self._first_slot is not None and slot != self._first_slot:
                    return value
            # If the scheduled instruction was skipped (possible only if the
            # spec does not come from the golden trace), fall through and
            # inject at the first eligible access after it.
            self._first_done = True
            if self._same_register:
                return self._inject_same_register(
                    dynamic_index, instruction, register, value, access
                )

        return self._inject_one(dynamic_index, instruction, register, value, access)

    def _pick_bit(self, register: VirtualRegister, exclude: Optional[Set[int]] = None) -> int:
        width = bitops.bit_width(register.type)
        forced = self._forced_bit
        if forced is not None:
            self._forced_bit = None
            if forced < width and not (exclude and forced in exclude):
                return forced
        if exclude and len(exclude) >= width:
            exclude = None
        while True:
            bit = self.rng.randrange(width)
            if not exclude or bit not in exclude:
                return bit

    def _record(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        register: VirtualRegister,
        bit: int,
        before: RuntimeScalar,
        after: RuntimeScalar,
        access: str,
    ) -> None:
        self.injections.append(
            InjectionRecord(
                dynamic_index=dynamic_index,
                access=access,
                register=register.name,
                opcode=instruction.opcode,
                bit=bit,
                before_bits=bitops.value_to_bits(before, register.type),
                after_bits=bitops.value_to_bits(after, register.type),
            )
        )

    def _inject_one(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        register: VirtualRegister,
        value: RuntimeScalar,
        access: str,
    ) -> RuntimeScalar:
        bit = self._pick_bit(register)
        corrupted = bitops.flip_bit(value, register.type, bit)
        self._record(dynamic_index, instruction, register, bit, value, corrupted, access)
        self._remaining -= 1
        self._next_time = dynamic_index + self._step
        return corrupted

    def _inject_same_register(
        self,
        dynamic_index: int,
        instruction: HookInstruction,
        register: VirtualRegister,
        value: RuntimeScalar,
        access: str,
    ) -> RuntimeScalar:
        """win-size = 0: flip ``max_mbf`` distinct bits of this one register."""
        width = bitops.bit_width(register.type)
        flips = min(self._remaining, width)
        chosen: Set[int] = set()
        corrupted = value
        for _ in range(flips):
            bit = self._pick_bit(register, exclude=chosen)
            chosen.add(bit)
            before = corrupted
            corrupted = bitops.flip_bit(corrupted, register.type, bit)
            self._record(dynamic_index, instruction, register, bit, before, corrupted, access)
        self._remaining = 0
        return corrupted
