"""The bit-flip fault model and the paper's parameter grid (Table I).

The paper extends LLFI's single bit-flip time–location model with two extra
parameters that together define an *error cluster*:

* ``max-MBF`` — the maximum number of bit-flip errors injected in one run
  (the program may crash before all of them are activated);
* ``win-size`` — the dynamic-instruction distance between consecutive
  injections; a window of zero means every flip targets the same register of
  the same dynamic instruction.

Table I of the paper fixes ten max-MBF values (m1–m10) and nine win-size
specifications (w1–w9), three of which are ranges resolved to a random value
per campaign.  The single bit-flip model corresponds to max-MBF = 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


#: Table I, left column: the maximum number of bit-flip errors per run.
MAX_MBF_VALUES: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10, 30)

#: The single bit-flip model expressed in the same parameterisation.
SINGLE_BIT_MAX_MBF = 1


@dataclass(frozen=True)
class WinSizeSpec:
    """One win-size entry of Table I.

    Either a fixed dynamic distance (``value``) or a random range
    (``low``/``high``) resolved once per campaign, as the paper does for
    w4, w6 and w8 "to achieve better representativeness".
    """

    index: str
    value: Optional[int] = None
    low: Optional[int] = None
    high: Optional[int] = None

    def __post_init__(self) -> None:
        fixed = self.value is not None
        ranged = self.low is not None and self.high is not None
        if fixed == ranged:
            raise ConfigurationError(
                f"win-size {self.index}: specify either a fixed value or a range"
            )
        if ranged and self.low > self.high:  # type: ignore[operator]
            raise ConfigurationError(f"win-size {self.index}: empty range")

    @property
    def is_random(self) -> bool:
        return self.value is None

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's figures (``RND(α-β)``)."""
        if self.is_random:
            return f"RND({self.low}-{self.high})"
        return str(self.value)

    def resolve(self, rng: random.Random) -> int:
        """The concrete dynamic distance used by a campaign."""
        if self.value is not None:
            return self.value
        return rng.randint(self.low, self.high)  # type: ignore[arg-type]


#: Table I, right column: the nine win-size specifications w1–w9.
WIN_SIZE_SPECS: Tuple[WinSizeSpec, ...] = (
    WinSizeSpec("w1", value=0),
    WinSizeSpec("w2", value=1),
    WinSizeSpec("w3", value=4),
    WinSizeSpec("w4", low=2, high=10),
    WinSizeSpec("w5", value=10),
    WinSizeSpec("w6", low=11, high=100),
    WinSizeSpec("w7", value=100),
    WinSizeSpec("w8", low=101, high=1000),
    WinSizeSpec("w9", value=1000),
)


_WIN_SIZE_BY_INDEX = {spec.index: spec for spec in WIN_SIZE_SPECS}


def win_size_by_index(index: str) -> WinSizeSpec:
    """Look up a win-size specification by its Table I index (``"w3"``)."""
    try:
        return _WIN_SIZE_BY_INDEX[index]
    except KeyError:
        raise ConfigurationError(f"unknown win-size index {index!r}") from None


@dataclass(frozen=True)
class MultiBitCluster:
    """One error cluster: a (max-MBF, win-size) pair.

    The paper forms 180 clusters per program: 10 max-MBF values × 9 win-size
    specifications × 2 injection techniques.  (The two single bit-flip
    campaigns bring the total number of campaigns per program to 182.)
    """

    max_mbf: int
    win_size: WinSizeSpec

    def __post_init__(self) -> None:
        if self.max_mbf < 1:
            raise ConfigurationError("max-MBF must be at least 1")

    @property
    def is_single_bit(self) -> bool:
        return self.max_mbf == SINGLE_BIT_MAX_MBF

    @property
    def is_same_register(self) -> bool:
        """True for win-size = 0 clusters (all flips hit the same register)."""
        return not self.win_size.is_random and self.win_size.value == 0

    @property
    def label(self) -> str:
        return f"mbf={self.max_mbf},win={self.win_size.label}"


def full_cluster_grid(
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Sequence[WinSizeSpec] = WIN_SIZE_SPECS,
) -> List[MultiBitCluster]:
    """The full Table I grid of multi-bit clusters (90 per technique)."""
    return [
        MultiBitCluster(max_mbf, win_size)
        for max_mbf in max_mbf_values
        for win_size in win_size_specs
    ]


def same_register_clusters(
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
) -> List[MultiBitCluster]:
    """Clusters used in Fig. 2: win-size = 0, every max-MBF value."""
    zero = win_size_by_index("w1")
    return [MultiBitCluster(max_mbf, zero) for max_mbf in max_mbf_values]


def multi_register_clusters(
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Sequence[WinSizeSpec] = WIN_SIZE_SPECS,
) -> List[MultiBitCluster]:
    """Clusters used in Figs. 4 and 5: win-size > 0, every max-MBF value."""
    positive = [spec for spec in win_size_specs if spec.is_random or spec.value != 0]
    return [
        MultiBitCluster(max_mbf, win_size)
        for max_mbf in max_mbf_values
        for win_size in positive
    ]


@dataclass(frozen=True)
class FaultSpec:
    """A fully resolved fault specification for one experiment.

    ``first_dynamic_index`` / ``first_slot`` give the time–location of the
    first bit flip, chosen from the golden-trace candidate space of the
    selected technique.  Subsequent flips (if ``max_mbf > 1``) are scheduled
    ``win_size`` dynamic instructions apart at injection time, because the
    faulty run's control flow may diverge from the golden trace after the
    first flip (this matches LLFI's runtime counting).
    """

    technique: str
    first_dynamic_index: int
    #: Source-operand slot for inject-on-read; ``None`` for inject-on-write.
    first_slot: Optional[int]
    max_mbf: int
    #: Concrete dynamic distance between consecutive injections.
    win_size: int
    #: Seed for the per-experiment RNG that picks bit positions and the
    #: slots of follow-up injections.
    seed: int
    #: Fixed bit position for the *first* flip, or ``None`` to draw it from
    #: the experiment RNG.  Exhaustive error-space enumeration
    #: (:mod:`repro.errorspace`) pins the bit so every single-bit error of a
    #: candidate is a distinct, deterministic experiment; sampled campaigns
    #: leave it unset.
    first_bit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_mbf < 1:
            raise ConfigurationError("max-MBF must be at least 1")
        if self.win_size < 0:
            raise ConfigurationError("win-size must be non-negative")
        if self.first_dynamic_index < 0:
            raise ConfigurationError("first injection time must be non-negative")
        if self.first_bit is not None and self.first_bit < 0:
            raise ConfigurationError("first bit position must be non-negative")

    @property
    def is_single_bit(self) -> bool:
        return self.max_mbf == SINGLE_BIT_MAX_MBF

    @property
    def same_register(self) -> bool:
        return self.win_size == 0


@dataclass(frozen=True)
class InjectionRecord:
    """One bit flip actually performed during a run (an *activated* error)."""

    #: Dynamic instruction index at which the flip happened.
    dynamic_index: int
    #: ``"read"`` or ``"write"``.
    access: str
    #: Name of the targeted virtual register.
    register: str
    #: Opcode of the instruction whose operand/result was corrupted.
    opcode: str
    #: Bit position that was flipped.
    bit: int
    #: Register bit pattern before and after the flip.
    before_bits: int = 0
    after_bits: int = 0
