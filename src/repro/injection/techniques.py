"""Injection techniques: inject-on-read and inject-on-write.

A *technique* determines which register accesses are candidate fault
locations (§III-A of the paper):

* **inject-on-read** flips a bit of a source register immediately before an
  instruction reads it — emulating an error that propagated into a register
  (e.g. a direct particle hit) and collapsing all faults between the
  register's last write and this read into one equivalence class;
* **inject-on-write** flips a bit of the destination register immediately
  after an instruction writes it — emulating errors in computation (ALUs,
  pipeline registers) that manifest in the produced value.

Each technique enumerates the candidate error space over a golden trace.
The per-program candidate counts are the numbers reported in Table II; the
counts for inject-on-read exceed those for inject-on-write because
instructions such as ``store`` have source registers but no destination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.vm.trace import GoldenTrace


@dataclass(frozen=True)
class InjectionCandidate:
    """One element of a technique's error space (before choosing the bit).

    For inject-on-read the candidate is a (dynamic instruction, source-operand
    slot) pair; for inject-on-write it is a dynamic instruction with a
    destination register.  ``register_bits`` is the width of the targeted
    register, i.e. the number of single-bit errors the candidate expands to.
    """

    dynamic_index: int
    slot: Optional[int]
    register_bits: int
    opcode: str

    @property
    def error_count(self) -> int:
        """Number of distinct single bit-flip errors at this candidate."""
        return self.register_bits


class InjectionTechnique:
    """Base class for the two injection techniques."""

    #: Technique name used in configurations, results and reports.
    name: str = "?"
    #: Which VM hook the technique uses ("read" or "write").
    access: str = "?"

    def candidates(self, trace: GoldenTrace) -> List[InjectionCandidate]:
        """Enumerate every candidate fault location of the golden trace."""
        raise NotImplementedError

    def candidate_instruction_count(self, trace: GoldenTrace) -> int:
        """Number of dynamic instructions eligible for injection (Table II)."""
        raise NotImplementedError

    def error_space_size(self, trace: GoldenTrace) -> int:
        """Total number of single bit-flip errors (candidates × bit widths)."""
        return sum(candidate.error_count for candidate in self.candidates(trace))

    def sample_candidate(
        self, trace: GoldenTrace, rng: random.Random
    ) -> InjectionCandidate:
        """Uniformly sample one candidate location from the error space.

        Sampling is done without materialising the full candidate list:
        a record is drawn uniformly among eligible records, then a slot is
        drawn uniformly among that record's register source operands (for
        inject-on-read).  This matches uniform sampling over candidate
        *locations*, the granularity the paper's campaigns use.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InjectionTechnique {self.name}>"


class InjectOnRead(InjectionTechnique):
    """Flip a bit of a source register just before the instruction reads it."""

    name = "inject-on-read"
    access = "read"

    def candidates(self, trace: GoldenTrace) -> List[InjectionCandidate]:
        return [
            InjectionCandidate(
                dynamic_index=access.dynamic_index,
                slot=access.slot,
                register_bits=access.bits,
                opcode=access.opcode,
            )
            for access in trace.iter_register_accesses()
            if access.kind == "read"
        ]

    def candidate_instruction_count(self, trace: GoldenTrace) -> int:
        return sum(1 for record in trace.records if record.source_count > 0)

    def sample_candidate(self, trace: GoldenTrace, rng: random.Random) -> InjectionCandidate:
        eligible = trace.records_with_sources()
        if not eligible:
            raise ConfigurationError("golden trace has no inject-on-read candidates")
        record = eligible[rng.randrange(len(eligible))]
        slot = rng.randrange(record.source_count)
        return InjectionCandidate(
            dynamic_index=record.dynamic_index,
            slot=slot,
            register_bits=record.source_register_bits[slot],
            opcode=record.opcode,
        )


class InjectOnWrite(InjectionTechnique):
    """Flip a bit of the destination register right after it is written."""

    name = "inject-on-write"
    access = "write"

    def candidates(self, trace: GoldenTrace) -> List[InjectionCandidate]:
        return [
            InjectionCandidate(
                dynamic_index=access.dynamic_index,
                slot=None,
                register_bits=access.bits,
                opcode=access.opcode,
            )
            for access in trace.iter_register_accesses()
            if access.kind == "write"
        ]

    def candidate_instruction_count(self, trace: GoldenTrace) -> int:
        return sum(1 for record in trace.records if record.has_destination)

    def sample_candidate(self, trace: GoldenTrace, rng: random.Random) -> InjectionCandidate:
        eligible = trace.records_with_destination()
        if not eligible:
            raise ConfigurationError("golden trace has no inject-on-write candidates")
        record = eligible[rng.randrange(len(eligible))]
        return InjectionCandidate(
            dynamic_index=record.dynamic_index,
            slot=None,
            register_bits=record.destination_bits,
            opcode=record.opcode,
        )


INJECT_ON_READ = InjectOnRead()
INJECT_ON_WRITE = InjectOnWrite()

#: Both techniques, in the order the paper lists them.
TECHNIQUES: Tuple[InjectionTechnique, ...] = (INJECT_ON_READ, INJECT_ON_WRITE)

_TECHNIQUES_BY_NAME = {technique.name: technique for technique in TECHNIQUES}


def technique_by_name(name: str) -> InjectionTechnique:
    """Resolve a technique by its configuration name (constant-time)."""
    try:
        return _TECHNIQUES_BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown injection technique {name!r}; expected one of "
            f"{[t.name for t in TECHNIQUES]}"
        ) from None
