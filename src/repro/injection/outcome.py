"""Outcome classification of fault-injection experiments (§III-E).

Every experiment ends in exactly one of five categories:

* **Benign** — the program terminates normally and its output is bit-wise
  identical to the golden output (internal robustness masked the error);
* **Detected by Hardware Exception** — the run raised a simulated hardware
  exception (segmentation fault, misaligned access, arithmetic fault, abort);
* **Hang** — the watchdog fired;
* **NoOutput** — the program terminated normally but produced no output;
* **SDC** (silent data corruption) — the program terminated normally, with
  output, but the output differs bit-wise from the golden output.

The first four categories contribute to *error resilience*; the last three
of those (everything but Benign) are collectively called *Detection* in the
paper's figures.

A sixth, harness-level category exists outside the paper's taxonomy:
**Crashed** marks an experiment that repeatedly killed or wedged its worker
process and was quarantined by the fault-tolerant campaign supervisor
(:mod:`repro.campaign.supervisor`) instead of poisoning the run.  It counts
toward totals but toward neither resilience nor detection, and it is only
serialized when present, so result stores from crash-free campaigns are
byte-identical to those written before the category existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Mapping, Tuple


class Outcome(str, Enum):
    """The five-way paper classification, plus the harness-level ``crashed``.

    ``CRASHED`` is declared last on purpose: plan serialization
    (:mod:`repro.artifacts`) assigns outcome codes by enumeration order, so
    appending keeps every previously persisted artifact decodable.
    """

    BENIGN = "benign"
    DETECTED_HW_EXCEPTION = "detected-hw-exception"
    HANG = "hang"
    NO_OUTPUT = "no-output"
    SDC = "sdc"
    CRASHED = "crashed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The paper's own five-way classification (§III-E), excluding the
#: harness-level ``crashed`` quarantine marker.
PAPER_OUTCOMES: Tuple["Outcome", ...] = (
    Outcome.BENIGN,
    Outcome.DETECTED_HW_EXCEPTION,
    Outcome.HANG,
    Outcome.NO_OUTPUT,
    Outcome.SDC,
)


#: Outcomes that count towards error resilience (everything but SDC).
RESILIENCE_OUTCOMES: Tuple[Outcome, ...] = (
    Outcome.BENIGN,
    Outcome.DETECTED_HW_EXCEPTION,
    Outcome.HANG,
    Outcome.NO_OUTPUT,
)

#: Outcomes the paper aggregates as "Detection" in Fig. 1.
DETECTION_OUTCOMES: Tuple[Outcome, ...] = (
    Outcome.DETECTED_HW_EXCEPTION,
    Outcome.HANG,
    Outcome.NO_OUTPUT,
)


@dataclass
class OutcomeCounts:
    """Counts of experiment outcomes, with the derived rates the paper uses."""

    counts: Dict[Outcome, int] = field(default_factory=dict)

    def add(self, outcome: Outcome, count: int = 1) -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + count

    def update(self, outcomes: Iterable[Outcome]) -> None:
        for outcome in outcomes:
            self.add(outcome)

    def merge(self, other: "OutcomeCounts") -> "OutcomeCounts":
        merged = OutcomeCounts(dict(self.counts))
        for outcome, count in other.counts.items():
            merged.add(outcome, count)
        return merged

    def count(self, outcome: Outcome) -> int:
        return self.counts.get(outcome, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    # -- derived rates ---------------------------------------------------------
    def fraction(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.count(outcome) / self.total

    @property
    def sdc_fraction(self) -> float:
        """P(SDC) — the quantity compared across fault models in the paper."""
        return self.fraction(Outcome.SDC)

    @property
    def benign_fraction(self) -> float:
        return self.fraction(Outcome.BENIGN)

    @property
    def detection_fraction(self) -> float:
        """Sum of Detected-by-HW-exception, Hang and NoOutput fractions."""
        if self.total == 0:
            return 0.0
        return sum(self.count(outcome) for outcome in DETECTION_OUTCOMES) / self.total

    @property
    def resilience(self) -> float:
        """Error resilience: probability that the outcome is not an SDC."""
        return 1.0 - self.sdc_fraction

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable key order) for serialization and reports.

        The five paper outcomes are always present; the harness-level
        ``crashed`` count appears only when non-zero so stores written by
        crash-free campaigns keep their historical byte layout.
        """
        data = {outcome.value: self.count(outcome) for outcome in PAPER_OUTCOMES}
        crashed = self.count(Outcome.CRASHED)
        if crashed:
            data[Outcome.CRASHED.value] = crashed
        return data

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "OutcomeCounts":
        counts = cls()
        for key, value in mapping.items():
            counts.add(Outcome(key), value)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k.value}={v}" for k, v in sorted(self.counts.items()))
        return f"OutcomeCounts({parts})"
