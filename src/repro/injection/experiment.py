"""Single-experiment driver: golden run, fault sampling, faulty run, outcome.

This module glues the pieces together the same way an LLFI campaign script
does:

1. :func:`profile_program` performs the fault-free *profiling* run and
   returns the golden trace (dynamic instruction stream + golden output);
2. :class:`ExperimentRunner` samples a fault specification from a technique's
   candidate space, executes the program once with a
   :class:`~repro.injection.injector.FaultInjector` installed, and classifies
   the outcome against the golden output per §III-E.

The runner lowers the workload into its decoded executable form
(:mod:`repro.vm.program`) exactly once; the profiling run and every faulty
run share that one artifact, so per-experiment cost is execution only.  The
``backend`` knob selects the tree-walking
:class:`~repro.vm.reference.ReferenceInterpreter` instead — the seam the
differential test suite uses to prove both paths produce bit-identical
results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.frontend.compiler import CompiledProgram
from repro.injection.faultmodel import FaultSpec, InjectionRecord, SINGLE_BIT_MAX_MBF
from repro.injection.injector import FaultInjector
from repro.injection.outcome import Outcome
from repro.injection.techniques import InjectionCandidate, InjectionTechnique
from repro.vm.interpreter import ExecutionLimits, ExecutionResult, Interpreter
from repro.vm.program import DecodedProgram, decode_module
from repro.vm.reference import ReferenceInterpreter
from repro.vm.trace import GoldenTrace, TraceCollector

#: Execution backends an experiment can run on.  ``"decoded"`` is the
#: production hot path; ``"reference"`` walks the IR tree and exists for
#: differential verification.
BACKENDS = ("decoded", "reference")


def _make_interpreter(
    program: CompiledProgram,
    backend: str,
    decoded: Optional[DecodedProgram] = None,
    **kwargs,
):
    if backend == "decoded":
        return Interpreter(
            decoded if decoded is not None else decode_module(program.module),
            entry=program.entry,
            **kwargs,
        )
    if backend == "reference":
        return ReferenceInterpreter(program.module, entry=program.entry, **kwargs)
    raise ConfigurationError(
        f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
    )


def profile_program(
    program: CompiledProgram,
    args: Sequence = (),
    *,
    limits: Optional[ExecutionLimits] = None,
    backend: str = "decoded",
    decoded: Optional[DecodedProgram] = None,
) -> GoldenTrace:
    """Run the program fault-free and collect its golden trace.

    Raises if the fault-free run does not complete — a program that crashes
    without any injected fault is a benchmark bug, not an experiment outcome.
    """
    collector = TraceCollector()
    interpreter = _make_interpreter(
        program,
        backend,
        decoded,
        limits=limits or ExecutionLimits(),
        trace_collector=collector,
    )
    result = interpreter.run(list(args))
    if not result.completed:
        detail = result.fault.category if result.fault else "hang"
        raise RuntimeError(
            f"fault-free run of {program.module.name} did not complete ({detail})"
        )
    return collector.build(result.output, result.return_value)


@dataclass
class ExperimentResult:
    """Everything recorded about one fault-injection experiment."""

    spec: FaultSpec
    outcome: Outcome
    #: Number of bit flips actually performed before the run ended.
    activated_errors: int
    #: The individual flips, in injection order.
    injections: List[InjectionRecord] = field(default_factory=list)
    #: Dynamic instructions executed by the faulty run.
    dynamic_instructions: int = 0
    #: Hardware-exception category when the outcome is a detection, else None.
    fault_category: Optional[str] = None

    @property
    def is_sdc(self) -> bool:
        return self.outcome is Outcome.SDC

    @property
    def crashed(self) -> bool:
        return self.outcome is Outcome.DETECTED_HW_EXCEPTION


class ExperimentRunner:
    """Runs fault-injection experiments for one workload.

    A *workload* is a compiled program plus its (fixed) input; the program is
    decoded and the golden trace profiled exactly once, then reused by every
    experiment — mirroring LLFI's profile-then-inject workflow with the
    decode step amortised the same way.
    """

    def __init__(
        self,
        program: CompiledProgram,
        *,
        args: Sequence = (),
        golden: Optional[GoldenTrace] = None,
        watchdog_multiplier: int = 12,
        backend: str = "decoded",
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
            )
        self.program = program
        self.backend = backend
        #: The shared decoded artifact (None on the reference backend).
        self.decoded: Optional[DecodedProgram] = (
            decode_module(program.module) if backend == "decoded" else None
        )
        self.args = list(args)
        self.golden = golden or profile_program(
            program, self.args, backend=backend, decoded=self.decoded
        )
        self.watchdog_multiplier = watchdog_multiplier
        self.limits = ExecutionLimits.for_golden_length(
            self.golden.dynamic_instruction_count, watchdog_multiplier
        )

    # -- fault specification ---------------------------------------------------------
    def sample_spec(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        rng: random.Random,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> FaultSpec:
        """Build a fault spec whose first flip is sampled from the error space.

        ``first_candidate`` can pin the first injection location explicitly —
        used by the RQ5 transition study, which replays multi-bit injections
        at locations chosen from single-bit experiments.
        """
        candidate = first_candidate or technique.sample_candidate(self.golden, rng)
        return FaultSpec(
            technique=technique.name,
            first_dynamic_index=candidate.dynamic_index,
            first_slot=candidate.slot,
            max_mbf=max_mbf,
            win_size=win_size,
            seed=rng.getrandbits(48),
        )

    # -- execution ----------------------------------------------------------------------
    def run_spec(self, spec: FaultSpec) -> ExperimentResult:
        """Execute one faulty run and classify its outcome."""
        injector = FaultInjector(spec)
        interpreter = _make_interpreter(
            self.program,
            self.backend,
            self.decoded,
            limits=self.limits,
            read_hook=injector.read_hook if spec.technique == "inject-on-read" else None,
            write_hook=injector.write_hook if spec.technique == "inject-on-write" else None,
        )
        execution = interpreter.run(self.args)
        outcome = self.classify(execution)
        return ExperimentResult(
            spec=spec,
            outcome=outcome,
            activated_errors=injector.activated_errors,
            injections=list(injector.injections),
            dynamic_instructions=execution.dynamic_instructions,
            fault_category=execution.fault.category if execution.fault else None,
        )

    def run_sampled(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        rng: random.Random,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> ExperimentResult:
        """Sample a spec and run it (the common path for campaign loops)."""
        spec = self.sample_spec(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=rng,
            first_candidate=first_candidate,
        )
        return self.run_spec(spec)

    def run_seeded(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        seed: int,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> ExperimentResult:
        """Run one experiment from a self-contained seed.

        The experiment's entire randomness (candidate location, bit choices,
        follow-up slots) derives from ``seed`` alone, so a campaign that
        assigns one derived seed per experiment index can execute its
        experiments in any order or process and replay any of them alone.
        """
        rng = random.Random(seed)
        return self.run_sampled(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=rng,
            first_candidate=first_candidate,
        )

    # -- outcome classification -----------------------------------------------------------
    def classify(self, execution: ExecutionResult) -> Outcome:
        """Map a VM execution result onto the paper's five outcome categories."""
        if execution.fault is not None:
            return Outcome.DETECTED_HW_EXCEPTION
        if execution.hang:
            return Outcome.HANG
        golden_output = self.golden.output
        if execution.output == golden_output:
            return Outcome.BENIGN
        if len(execution.output) == 0 and len(golden_output) > 0:
            return Outcome.NO_OUTPUT
        return Outcome.SDC
