"""Single-experiment driver: golden run, fault sampling, faulty run, outcome.

This module glues the pieces together the same way an LLFI campaign script
does:

1. :func:`profile_program` performs the fault-free *profiling* run and
   returns the golden trace (dynamic instruction stream + golden output);
2. :class:`ExperimentRunner` samples a fault specification from a technique's
   candidate space, executes the program once with a
   :class:`~repro.injection.injector.FaultInjector` installed, and classifies
   the outcome against the golden output per §III-E.

The runner lowers the workload into its decoded executable form
(:mod:`repro.vm.program`) exactly once; the profiling run and every faulty
run share that one artifact, so per-experiment cost is execution only.  The
``backend`` knob selects the tree-walking
:class:`~repro.vm.reference.ReferenceInterpreter` instead — the seam the
differential test suite uses to prove both paths produce bit-identical
results.

On the decoded backend the runner additionally *fast-forwards*: the
profiling run records VM checkpoints (:mod:`repro.vm.snapshot`) every few
hundred ticks, and each experiment restores the latest checkpoint at or
before its first injection index instead of re-executing the shared golden
prefix — turning per-experiment cost from O(full run) into O(interval +
faulty suffix).  Fast-forwarded results are bit-identical to from-scratch
execution (the differential suite enforces this); ``fast_forward=False``
disables the optimisation entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.frontend.compiler import CompiledProgram
from repro.injection.faultmodel import FaultSpec, InjectionRecord, SINGLE_BIT_MAX_MBF
from repro.injection.injector import FaultInjector
from repro.injection.outcome import Outcome
from repro.injection.techniques import InjectionCandidate, InjectionTechnique
from repro.telemetry.spans import PhaseClock
from repro.vm.codegen import CompiledCode, CompiledInterpreter, compile_program
from repro.vm.interpreter import (
    ExecutionLimits,
    ExecutionResult,
    Interpreter,
    SuspendedRun,
)
from repro.vm.program import DecodedProgram, decode_module
from repro.vm.reference import ReferenceInterpreter
from repro.vm.snapshot import (
    DEFAULT_MAX_CHECKPOINTS,
    CheckpointStore,
    golden_with_checkpoints,
)
from repro.vm.trace import GoldenTrace, TraceCollector

#: Execution backends an experiment can run on.  ``"decoded"`` is the
#: production default; ``"compiled"`` transpiles the decoded program to
#: specialized Python (fastest); ``"reference"`` walks the IR tree and
#: exists for differential verification.
BACKENDS = ("decoded", "reference", "compiled")


def _make_interpreter(
    program: CompiledProgram,
    backend: str,
    decoded: Optional[DecodedProgram] = None,
    compiled: Optional[CompiledCode] = None,
    **kwargs,
):
    if backend == "decoded":
        return Interpreter(
            decoded if decoded is not None else decode_module(program.module),
            entry=program.entry,
            **kwargs,
        )
    if backend == "compiled":
        if compiled is None:
            from repro.vm.codegen import compile_module

            compiled = compile_module(program.module)
        return CompiledInterpreter(compiled, entry=program.entry, **kwargs)
    if backend == "reference":
        return ReferenceInterpreter(program.module, entry=program.entry, **kwargs)
    raise ConfigurationError(
        f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
    )


def profile_program(
    program: CompiledProgram,
    args: Sequence = (),
    *,
    limits: Optional[ExecutionLimits] = None,
    backend: str = "decoded",
    decoded: Optional[DecodedProgram] = None,
) -> GoldenTrace:
    """Run the program fault-free and collect its golden trace.

    Raises if the fault-free run does not complete — a program that crashes
    without any injected fault is a benchmark bug, not an experiment outcome.
    """
    collector = TraceCollector()
    interpreter = _make_interpreter(
        program,
        backend,
        decoded,
        limits=limits or ExecutionLimits(),
        trace_collector=collector,
    )
    result = interpreter.run(list(args))
    if not result.completed:
        detail = result.fault.category if result.fault else "hang"
        raise RuntimeError(
            f"fault-free run of {program.module.name} did not complete ({detail})"
        )
    return collector.build(result.output, result.return_value)


@dataclass
class ExperimentResult:
    """Everything recorded about one fault-injection experiment."""

    spec: FaultSpec
    outcome: Outcome
    #: Number of bit flips actually performed before the run ended.
    activated_errors: int
    #: The individual flips, in injection order.
    injections: List[InjectionRecord] = field(default_factory=list)
    #: Dynamic instructions executed by the faulty run.
    dynamic_instructions: int = 0
    #: Hardware-exception category when the outcome is a detection, else None.
    fault_category: Optional[str] = None

    @property
    def is_sdc(self) -> bool:
        return self.outcome is Outcome.SDC

    @property
    def crashed(self) -> bool:
        return self.outcome is Outcome.DETECTED_HW_EXCEPTION


class ExperimentRunner:
    """Runs fault-injection experiments for one workload.

    A *workload* is a compiled program plus its (fixed) input; the program is
    decoded and the golden trace profiled exactly once, then reused by every
    experiment — mirroring LLFI's profile-then-inject workflow with the
    decode step amortised the same way.
    """

    def __init__(
        self,
        program: CompiledProgram,
        *,
        args: Sequence = (),
        golden: Optional[GoldenTrace] = None,
        watchdog_multiplier: int = 12,
        backend: str = "decoded",
        fast_forward: bool = True,
        windowed: bool = True,
        checkpoint_interval: Optional[int] = None,
        max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
            )
        self.program = program
        self.backend = backend
        #: The shared decoded artifact (None on the reference backend).  The
        #: compiled backend keeps it too: generated code shares the decoded
        #: program's slot numbering, block indices and checkpoints.
        self.decoded: Optional[DecodedProgram] = (
            decode_module(program.module)
            if backend in ("decoded", "compiled")
            else None
        )
        #: The transpiled artifact (compiled backend only).
        self.compiled: Optional[CompiledCode] = (
            compile_program(self.decoded) if backend == "compiled" else None
        )
        self.args = list(args)
        #: Fast-forward exists on the decoded and compiled drivers; the
        #: reference backend always replays from scratch (it is the oracle).
        self.fast_forward = bool(fast_forward) and backend in ("decoded", "compiled")
        #: Injection-windowed execution: hooks are armed only while the
        #: injector can still flip (bare sprint → hooked window → bare tail).
        #: Requires the resumable drivers, so the reference oracle always
        #: runs fully hooked.
        self.windowed = bool(windowed) and backend in ("decoded", "compiled")
        self.checkpoint_interval = checkpoint_interval
        self.max_checkpoints = max_checkpoints
        self._checkpoints: Optional[CheckpointStore] = None
        self._ff_interpreter: Optional[Interpreter] = None
        #: Pooled from-scratch driver (non-fast-forward runs): built once,
        #: rewound with ``reset()`` per experiment (reference stays per-run).
        self._scratch_interpreter: Optional[Interpreter] = None
        #: Per-phase accounting across this runner's experiments (restore /
        #: pre-window sprint / hooked window / bare tail).  A single-cursor
        #: lap clock: every covered instant lands in exactly one phase, so
        #: the totals sum to the covered wall clock — no double counting at
        #: segment boundaries.  Read via :attr:`phase_seconds`.
        self.phases = PhaseClock(("restore", "pre_window", "window", "tail"))
        self.experiments_run = 0
        if golden is not None:
            self.golden = golden
        elif self.fast_forward:
            # One checkpointed profiling run yields both the golden trace and
            # the snapshots (cached on the module, shared across runners).
            self.golden, self._checkpoints = golden_with_checkpoints(
                program.module,
                entry=program.entry,
                args=tuple(self.args),
                checkpoint_interval=checkpoint_interval,
                max_checkpoints=max_checkpoints,
            )
        else:
            self.golden = profile_program(
                program, self.args, backend=backend, decoded=self.decoded
            )
        self.watchdog_multiplier = watchdog_multiplier
        self.limits = ExecutionLimits.for_golden_length(
            self.golden.dynamic_instruction_count, watchdog_multiplier
        )

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Cumulative wall-clock seconds per phase (span-derived)."""
        return dict(self.phases.wall)

    @property
    def phase_cpu_seconds(self) -> Dict[str, float]:
        """Cumulative per-process CPU seconds per phase (span-derived)."""
        return dict(self.phases.cpu)

    # -- fault specification ---------------------------------------------------------
    def sample_spec(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        rng: random.Random,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> FaultSpec:
        """Build a fault spec whose first flip is sampled from the error space.

        ``first_candidate`` can pin the first injection location explicitly —
        used by the RQ5 transition study, which replays multi-bit injections
        at locations chosen from single-bit experiments.
        """
        candidate = first_candidate or technique.sample_candidate(self.golden, rng)
        return FaultSpec(
            technique=technique.name,
            first_dynamic_index=candidate.dynamic_index,
            first_slot=candidate.slot,
            max_mbf=max_mbf,
            win_size=win_size,
            seed=rng.getrandbits(48),
        )

    def seeded_spec(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        seed: int,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> FaultSpec:
        """The fault spec a self-contained ``seed`` deterministically expands to.

        Sampling a spec is cheap and running it is not, which lets callers
        (the campaign engines) sample a whole batch up front and execute it
        in injection-tick order so consecutive experiments restore from the
        same checkpoint.
        """
        return self.sample_spec(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=random.Random(seed),
            first_candidate=first_candidate,
        )

    # -- execution ----------------------------------------------------------------------
    def _checkpoint_store(self) -> Optional[CheckpointStore]:
        """The (lazily built) checkpoint store matching this runner's decode.

        The module-level cache in :mod:`repro.vm.snapshot` invalidates stored
        checkpoints together with the decode cache; a runner whose own
        decoded artifact went stale (module mutated after construction)
        simply stops fast-forwarding rather than mixing numberings.
        """
        if self.decoded is None:
            return None
        store = self._checkpoints
        if store is not None and store.program is self.decoded:
            return store
        _golden, store = golden_with_checkpoints(
            self.program.module,
            entry=self.program.entry,
            args=tuple(self.args),
            checkpoint_interval=self.checkpoint_interval,
            max_checkpoints=self.max_checkpoints,
        )
        self._checkpoints = store
        return store if store.program is self.decoded else None

    def _pooled_interpreter(self) -> Interpreter:
        """The one long-lived resumable driver every experiment reuses."""
        interpreter = self._ff_interpreter
        if interpreter is None:
            if self.backend == "compiled":
                interpreter = CompiledInterpreter(
                    self.compiled, entry=self.program.entry, limits=self.limits
                )
            else:
                interpreter = Interpreter(
                    self.decoded, entry=self.program.entry, limits=self.limits
                )
            self._ff_interpreter = interpreter
        return interpreter

    def _run_windowed(
        self,
        injector: FaultInjector,
        spec: FaultSpec,
        read_hook,
        write_hook,
        use_fast_forward: bool,
    ) -> ExecutionResult:
        """Three-segment faulty run: bare sprint → hooked window → bare tail.

        Outside the injection window the hooks are pure pass-throughs, so
        the run executes bare (compiled: the uninstrumented variant) up to
        ``first_dynamic_index``, switches the hooks in only while the
        injector still has flips to place, and finishes bare the moment it
        is exhausted.  Every segment enforces :class:`ExecutionLimits`, so
        hangs classify at the exact same tick as an always-hooked run.
        """
        interpreter = self._pooled_interpreter()
        clock = self.phases
        first = spec.first_dynamic_index
        snapshot = None
        if use_fast_forward:
            store = self._checkpoint_store()
            if store is not None:
                snapshot = store.latest_at(first)
        interpreter.read_hook = None
        interpreter.write_hook = None
        try:
            # One cursor covers the whole run: each lap attributes the time
            # since the previous lap to exactly one phase, so boundary
            # instants (hook swapping, the loop's own bookkeeping) are never
            # counted twice or dropped.
            clock.start()
            if snapshot is not None:
                interpreter.restore(snapshot)
                clock.lap("restore")
                # The restore inside resume_segment re-restores the same
                # state object: a delta restore of a clean memory, ~free.
                out = interpreter.resume_segment(snapshot, first)
            else:
                interpreter.reset()
                clock.lap("restore")
                out = interpreter.run_segment(self.args, first)
            clock.lap("pre_window")
            chunk = 1
            while isinstance(out, SuspendedRun):
                if injector.exhausted:
                    # Final flip landed: detach the hooks, finish bare.
                    interpreter.read_hook = None
                    interpreter.write_hook = None
                    out = interpreter.continue_segment(out, None)
                    clock.lap("tail")
                    continue
                next_time = injector.next_scheduled_time
                if next_time > interpreter.dynamic_index:
                    # Between scheduled flips (win-size > 1): sprint bare to
                    # the next one.  No access below it can be injected.
                    interpreter.read_hook = None
                    interpreter.write_hook = None
                    out = interpreter.continue_segment(out, next_time)
                    clock.lap("pre_window")
                    chunk = 1
                    continue
                # Inside the window: run hooked until the flip lands.  A
                # scheduled flip lands on the first *eligible* access at or
                # after its time, which can trail the schedule — double the
                # chunk while nothing landed so stragglers stay cheap.
                interpreter.read_hook = read_hook
                interpreter.write_hook = write_hook
                landed_before = len(injector.injections)
                out = interpreter.continue_segment(
                    out, interpreter.dynamic_index + chunk
                )
                clock.lap("window")
                chunk = 1 if len(injector.injections) > landed_before else chunk * 2
            return out
        finally:
            interpreter.read_hook = None
            interpreter.write_hook = None

    def run_spec(
        self,
        spec: FaultSpec,
        *,
        fast_forward: Optional[bool] = None,
        windowed: Optional[bool] = None,
    ) -> ExperimentResult:
        """Execute one faulty run and classify its outcome.

        ``fast_forward`` and ``windowed`` override the runner-level settings
        for this one run (the escape hatches the differential suite compares
        the execution strategies with).
        """
        injector = FaultInjector(spec)
        read_hook = injector.read_hook if spec.technique == "inject-on-read" else None
        write_hook = injector.write_hook if spec.technique == "inject-on-write" else None
        use_fast_forward = (
            self.fast_forward
            if fast_forward is None
            else bool(fast_forward) and self.backend in ("decoded", "compiled")
        )
        use_windowed = (
            self.windowed
            if windowed is None
            else bool(windowed) and self.backend in ("decoded", "compiled")
        )
        self.experiments_run += 1
        execution: Optional[ExecutionResult] = None
        if use_windowed:
            execution = self._run_windowed(
                injector, spec, read_hook, write_hook, use_fast_forward
            )
        elif use_fast_forward:
            store = self._checkpoint_store()
            snapshot = (
                store.latest_at(spec.first_dynamic_index) if store is not None else None
            )
            if snapshot is not None:
                # One long-lived driver is reused by every fast-forwarded
                # experiment; restore() rewinds all of its state.
                interpreter = self._pooled_interpreter()
                interpreter.read_hook = read_hook
                interpreter.write_hook = write_hook
                try:
                    self.phases.start()
                    execution = interpreter.resume(snapshot)
                    self.phases.lap("window")
                finally:
                    interpreter.read_hook = None
                    interpreter.write_hook = None
        if execution is None:
            if self.backend in ("decoded", "compiled"):
                # Pooled from-scratch driver: decode/compile and address-space
                # setup are paid once, reset() rewinds it per experiment.
                interpreter = self._scratch_interpreter
                if interpreter is None:
                    interpreter = _make_interpreter(
                        self.program,
                        self.backend,
                        self.decoded,
                        self.compiled,
                        limits=self.limits,
                    )
                    self._scratch_interpreter = interpreter
                interpreter.read_hook = read_hook
                interpreter.write_hook = write_hook
                try:
                    self.phases.start()
                    interpreter.reset()
                    execution = interpreter.run(self.args)
                    self.phases.lap("window")
                finally:
                    interpreter.read_hook = None
                    interpreter.write_hook = None
            else:
                interpreter = _make_interpreter(
                    self.program,
                    self.backend,
                    self.decoded,
                    self.compiled,
                    limits=self.limits,
                    read_hook=read_hook,
                    write_hook=write_hook,
                )
                self.phases.start()
                execution = interpreter.run(self.args)
                self.phases.lap("window")
        outcome = self.classify(execution)
        return ExperimentResult(
            spec=spec,
            outcome=outcome,
            activated_errors=injector.activated_errors,
            injections=list(injector.injections),
            dynamic_instructions=execution.dynamic_instructions,
            fault_category=execution.fault.category if execution.fault else None,
        )

    def run_sampled(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        rng: random.Random,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> ExperimentResult:
        """Sample a spec and run it (the common path for campaign loops)."""
        spec = self.sample_spec(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=rng,
            first_candidate=first_candidate,
        )
        return self.run_spec(spec)

    def run_seeded(
        self,
        technique: InjectionTechnique,
        *,
        max_mbf: int = SINGLE_BIT_MAX_MBF,
        win_size: int = 0,
        seed: int,
        first_candidate: Optional[InjectionCandidate] = None,
    ) -> ExperimentResult:
        """Run one experiment from a self-contained seed.

        The experiment's entire randomness (candidate location, bit choices,
        follow-up slots) derives from ``seed`` alone, so a campaign that
        assigns one derived seed per experiment index can execute its
        experiments in any order or process and replay any of them alone.
        """
        rng = random.Random(seed)
        return self.run_sampled(
            technique,
            max_mbf=max_mbf,
            win_size=win_size,
            rng=rng,
            first_candidate=first_candidate,
        )

    # -- outcome classification -----------------------------------------------------------
    def classify(self, execution: ExecutionResult) -> Outcome:
        """Map a VM execution result onto the paper's five outcome categories."""
        if execution.fault is not None:
            return Outcome.DETECTED_HW_EXCEPTION
        if execution.hang:
            return Outcome.HANG
        golden_output = self.golden.output
        if execution.output == golden_output:
            return Outcome.BENIGN
        if len(execution.output) == 0 and len(golden_output) > 0:
            return Outcome.NO_OUTPUT
        return Outcome.SDC
