"""Fault injection: the paper's extended-LLFI machinery.

This package implements the core contribution of the reproduction — an
LLFI-style fault injector extended for multiple bit-flip errors:

* :mod:`repro.injection.faultmodel` — the bit-flip fault model and the
  paper's parameter grid (Table I): ``max-MBF`` values m1–m10 and
  ``win-size`` specifications w1–w9.
* :mod:`repro.injection.techniques` — the two injection techniques,
  *inject-on-read* and *inject-on-write*, and the candidate error-space
  enumeration they induce over a golden trace (Table II).
* :mod:`repro.injection.outcome` — the five-way outcome classification
  (Benign, Detected by HW exception, Hang, NoOutput, SDC) of §III-E.
* :mod:`repro.injection.injector` — the runtime hook object that performs
  the scheduled bit flips during a VM run and records activations.
* :mod:`repro.injection.experiment` — single-experiment driver: golden-run
  profiling, fault specification sampling, faulty run, classification.
"""

from repro.injection.faultmodel import (
    MAX_MBF_VALUES,
    SINGLE_BIT_MAX_MBF,
    WIN_SIZE_SPECS,
    FaultSpec,
    InjectionRecord,
    MultiBitCluster,
    WinSizeSpec,
    full_cluster_grid,
    same_register_clusters,
)
from repro.injection.techniques import (
    INJECT_ON_READ,
    INJECT_ON_WRITE,
    TECHNIQUES,
    InjectionCandidate,
    InjectionTechnique,
    technique_by_name,
)
from repro.injection.outcome import (
    DETECTION_OUTCOMES,
    Outcome,
    OutcomeCounts,
    RESILIENCE_OUTCOMES,
)
from repro.injection.injector import FaultInjector
from repro.injection.experiment import (
    ExperimentResult,
    ExperimentRunner,
    profile_program,
)

__all__ = [
    "DETECTION_OUTCOMES",
    "ExperimentResult",
    "ExperimentRunner",
    "FaultInjector",
    "FaultSpec",
    "full_cluster_grid",
    "INJECT_ON_READ",
    "INJECT_ON_WRITE",
    "InjectionCandidate",
    "InjectionRecord",
    "InjectionTechnique",
    "MAX_MBF_VALUES",
    "MultiBitCluster",
    "Outcome",
    "OutcomeCounts",
    "profile_program",
    "RESILIENCE_OUTCOMES",
    "same_register_clusters",
    "SINGLE_BIT_MAX_MBF",
    "TECHNIQUES",
    "technique_by_name",
    "WIN_SIZE_SPECS",
    "WinSizeSpec",
]
