"""The MiniIR interpreter: a thin driver over a decoded program.

The interpreter executes a :class:`~repro.vm.program.DecodedProgram` (or a
:class:`~repro.ir.module.Module`, which is decoded — and cached — on the
fly) starting from an entry function, with the instrumentation points the
fault injector needs:

* ``read_hook(dynamic_index, instruction, slot, register, value)`` is called
  every time an instruction fetches a *register* source operand, immediately
  before the value is used — the inject-on-read insertion point.  ``slot``
  is the operand's index among the instruction's register operands and
  ``register`` is the targeted :class:`~repro.ir.values.VirtualRegister`;
* ``write_hook(dynamic_index, instruction, register, value)`` is called every
  time an instruction produces a result register, immediately after the value
  is computed — the inject-on-write insertion point;
* ``trace_collector`` receives one (pre-extracted) static-metadata record per
  executed instruction, enabling golden-trace profiling runs.

Both hooks receive the executing :class:`~repro.vm.program.DecodedInstruction`
as their ``instruction`` argument; it exposes ``opcode`` like the IR
instruction does, so hook objects written against either representation work
with both this driver and the tree-walking
:class:`~repro.vm.reference.ReferenceInterpreter`.

All decode-time work (operand resolution, handler binding, phi-move
precomputation, terminator classification) lives in :mod:`repro.vm.program`;
the driver's inner loop is: fetch decoded instruction, watchdog check, trace
append, switch on the pre-classified kind.  When hooks and tracing are
disabled they cost one ``is None`` test per access — nothing else.

Semantics are bit-identical to the reference interpreter and follow the
"hardware-like" conventions the paper relies on: integer arithmetic wraps at
the register width, shifts mask their shift amount, integer division by zero
(and ``INT_MIN / -1``) raises a simulated arithmetic fault, memory accesses
are bounds- and alignment-checked, and a dynamic-instruction watchdog
detects hangs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ExecutionSetupError
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import VirtualRegister
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    HangDetected,
    HardwareFault,
    InvalidJumpFault,
    SegmentationFault,
)
from repro.vm.memory import Memory
from repro.vm.program import (
    KIND_BRANCH,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SIMPLE,
    UNDEFINED,
    DecodedFunction,
    DecodedInstruction,
    DecodedProgram,
    _finish,
    _read_op,
    decode_module,
)
from repro.vm.runtime import (
    ExecutionLimits,
    ExecutionResult,
    MATH_INTRINSICS,
    OutputEntry,
    ProgramExit,
    RuntimeScalar,
)
from repro.vm.trace import TraceCollector

# Backwards-compatible aliases (the seed exposed these from this module).
_MATH_INTRINSICS = MATH_INTRINSICS
_ProgramExit = ProgramExit

#: The instruction object passed to injection hooks: the decoded form on the
#: production driver, the IR instruction on the reference interpreter.  Both
#: expose ``opcode``.
HookInstruction = Union[Instruction, DecodedInstruction]

#: Inject-on-read hook: ``(dynamic_index, instruction, slot, register,
#: value) -> value``.  ``slot`` indexes the instruction's register operands.
ReadHook = Callable[[int, HookInstruction, int, VirtualRegister, RuntimeScalar], RuntimeScalar]

#: Inject-on-write hook: ``(dynamic_index, instruction, register, value) ->
#: value``.
WriteHook = Callable[[int, HookInstruction, VirtualRegister, RuntimeScalar], RuntimeScalar]


class Interpreter:
    """Executes a decoded MiniIR program with optional fault-injection hooks."""

    def __init__(
        self,
        program: Union[DecodedProgram, Module],
        *,
        entry: str = "main",
        limits: Optional[ExecutionLimits] = None,
        read_hook: Optional[ReadHook] = None,
        write_hook: Optional[WriteHook] = None,
        trace_collector: Optional[TraceCollector] = None,
    ) -> None:
        if isinstance(program, DecodedProgram):
            decoded = program
        elif isinstance(program, Module):
            decoded = decode_module(program)
        else:
            raise ExecutionSetupError(
                f"cannot interpret {type(program).__name__}; expected a Module "
                f"or DecodedProgram"
            )
        if not decoded.has_function(entry):
            raise ExecutionSetupError(
                f"module {decoded.module.name} has no entry function @{entry}"
            )
        self.program = decoded
        self.module = decoded.module
        self.entry = entry
        self.limits = limits or ExecutionLimits()
        self.read_hook = read_hook
        self.write_hook = write_hook
        self.trace_collector = trace_collector
        self._trace_append = (
            trace_collector.append_meta if trace_collector is not None else None
        )

        self.memory = Memory()
        self.output: List[OutputEntry] = []
        self.dynamic_index = 0
        self._call_depth = 0
        self._global_addresses: Dict[str, int] = {}
        #: Global addresses by decode index — operand records index into this.
        self.global_values: List[int] = []
        self._materialise_globals()

    # ------------------------------------------------------------------ setup
    def _materialise_globals(self) -> None:
        for variable in self.program.global_variables:
            value_type = variable.value_type
            size = value_type.size_bytes()
            align = value_type.alignment()
            address = self.memory.allocate("globals", max(size, 1), max(align, 1))
            self._global_addresses[variable.name] = address
            self.global_values.append(address)
            if variable.initializer:
                if isinstance(value_type, ArrayType):
                    self.memory.write_array(address, variable.initializer, value_type.element)
                else:
                    self.memory.write_scalar(address, variable.initializer[0], value_type)

    def global_address(self, name: str) -> int:
        """Address of a module global (useful in tests and program setup)."""
        return self._global_addresses[name]

    # ------------------------------------------------------------------ running
    def run(self, args: Sequence[RuntimeScalar] = ()) -> ExecutionResult:
        """Execute the entry function and classify how the run ended."""
        entry_function = self.program.get_function(self.entry)
        if len(args) != len(entry_function.function.arguments):
            raise ExecutionSetupError(
                f"entry @{self.entry} takes {len(entry_function.function.arguments)} "
                f"arguments, got {len(args)}"
            )
        return self._execute(lambda: self._run_function(entry_function, list(args)))

    def _execute(self, thunk) -> ExecutionResult:
        """Run ``thunk`` and classify how the execution ended."""
        try:
            return_value = thunk()
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=return_value,
                dynamic_instructions=self.dynamic_index,
            )
        except ProgramExit as exit_request:
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=exit_request.code,
                dynamic_instructions=self.dynamic_index,
            )
        except HardwareFault as fault:
            if fault.dynamic_index is None:
                fault.dynamic_index = self.dynamic_index
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                fault=fault,
            )
        except HangDetected:
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                hang=True,
            )

    # ------------------------------------------------------------------ fast-forward
    def restore(self, snapshot) -> None:
        """Reset all execution state to a captured :class:`~repro.vm.snapshot.VMSnapshot`.

        The snapshot must originate from the *same* :class:`DecodedProgram`
        object — frame slot numbering and block indices are decode-specific,
        so a snapshot never survives a re-decode (the stale-cache guard).
        """
        if snapshot.program is not self.program:
            raise ExecutionSetupError(
                "snapshot was captured from a different decoded program; "
                "re-capture checkpoints after the module was re-decoded"
            )
        self.memory.restore_state(snapshot.memory)
        self.output = list(snapshot.output)
        self.dynamic_index = snapshot.tick
        self._call_depth = 0

    def resume(self, snapshot) -> ExecutionResult:
        """Restore ``snapshot`` and execute the remaining suffix of the run.

        The resumed execution is bit-identical to the suffix of a from-scratch
        run: the dynamic-instruction counter continues at the snapshot tick,
        hooks fire with the same indices and values, and the final
        :class:`ExecutionResult` matches field for field.
        """
        self.restore(snapshot)
        return self._execute(lambda: self._resume_level(snapshot.frames, 0))

    def _resume_level(self, frames, level: int) -> Optional[RuntimeScalar]:
        """Rebuild one captured call-stack level and continue executing it.

        Outer levels are suspended mid-``call``: their callee (the next level)
        is resumed first, then the call completes exactly like ``_h_call``
        and the block continues after it.  The innermost level simply resumes
        at its captured instruction.
        """
        record = frames[level]
        dfunc = record.dfunc
        self._call_depth += 1
        frame = list(record.frame)
        try:
            block = dfunc.blocks[record.block_index]
            if level + 1 < len(frames):
                value = self._resume_level(frames, level + 1)
                din = block.code[record.position]
                if din.dest_slot >= 0:
                    if value is None:
                        value = 0
                    _finish(self, frame, din, din.canon(value))
                return self._block_loop(frame, block, -1, record.position + 1, True)
            return self._block_loop(frame, block, -1, record.position, True)
        finally:
            self.memory.stack_release(record.stack_mark)
            self._call_depth -= 1

    # ------------------------------------------------------------------ frames
    def _run_function(
        self, dfunc: DecodedFunction, args: List[RuntimeScalar]
    ) -> Optional[RuntimeScalar]:
        if self._call_depth >= self.limits.max_call_depth:
            raise SegmentationFault(
                f"call depth exceeded {self.limits.max_call_depth} (stack overflow)",
                dynamic_index=self.dynamic_index,
            )
        self._call_depth += 1
        stack_mark = self.memory.stack_mark()
        frame: List = [UNDEFINED] * dfunc.frame_size
        try:
            # Arguments occupy the first frame slots, in declaration order.
            slot = 0
            for canon, actual in zip(dfunc.arg_canons, args):
                frame[slot] = canon(actual)
                slot += 1
            return self._run_blocks(dfunc, frame)
        finally:
            self.memory.stack_release(stack_mark)
            self._call_depth -= 1

    def _run_blocks(self, dfunc: DecodedFunction, frame: List) -> Optional[RuntimeScalar]:
        block = dfunc.entry
        if block is None:
            raise ExecutionSetupError(f"function @{dfunc.name} has no blocks")
        return self._block_loop(frame, block, -1, 0, False)

    def _block_loop(
        self, frame: List, block, previous: int, position: int, skip_phis: bool
    ) -> Optional[RuntimeScalar]:
        """The driver inner loop, entered at ``(block, position)``.

        A normal run enters at the entry block, position 0.  Fast-forward
        resume enters mid-block with ``skip_phis`` set, because the captured
        position is always past the block's phi moves.
        """
        limit = self.limits.max_dynamic_instructions
        trace = self._trace_append

        while True:
            if block.phi_count and not skip_phis:
                self._run_phis(block, previous, frame, trace)
            skip_phis = False

            code = block.code
            code_len = block.code_len
            while position < code_len:
                din = code[position]
                index = self.dynamic_index
                if index >= limit:
                    raise HangDetected(index, limit)
                if trace is not None:
                    trace(din.meta)
                self.dynamic_index = index + 1

                kind = din.kind
                if kind == KIND_SIMPLE:
                    din.handler(self, frame, din)
                    position += 1
                    continue
                if kind == KIND_BRANCH:
                    previous, block = block.index, din.target
                    break
                if kind == KIND_COND_BRANCH:
                    condition = _read_op(self, frame, din, din.operands[0])
                    previous, block = (
                        block.index,
                        din.if_true if condition else din.if_false,
                    )
                    break
                if kind == KIND_RETURN:
                    if not din.operands:
                        return None
                    value = _read_op(self, frame, din, din.operands[0])
                    return bitops.canonicalize(value, din.ret_type)
                # KIND_UNREACHABLE
                raise AbortFault(
                    "executed an unreachable instruction",
                    dynamic_index=self.dynamic_index,
                )
            else:
                # Fell off the end of a block without a terminator: treat as a
                # wild jump (cannot happen for verified IR, can happen if a
                # fault corrupts control state).
                raise InvalidJumpFault(
                    f"control fell off the end of block %{block.name}",
                    dynamic_index=self.dynamic_index,
                )
            position = 0

    def _run_phis(self, block, previous: int, frame: List, trace) -> None:
        """Execute the precomputed phi moves of one control-flow edge.

        All incoming values are read (and ticked) before any phi result is
        written, preserving the parallel-assignment semantics; the write hook
        then fires per phi in order, exactly like the reference interpreter.
        """
        moves, failure = block.phi_edges[previous]
        updates: List = []
        index = self.dynamic_index
        global_values = self.global_values
        for op, phi_din in moves:
            kind = op[0]
            if kind == 1:  # OP_REGISTER
                value = frame[op[1]]
                if value is UNDEFINED:
                    raise ExecutionSetupError(
                        f"register {op[2].short_name()} used before definition in "
                        f"@{phi_din.func_name}"
                    )
            elif kind == 0:  # OP_CONSTANT
                value = op[1]
            else:  # OP_GLOBAL
                value = global_values[op[1]]
            updates.append(phi_din.canon_in(value))
            if trace is not None:
                trace(phi_din.meta)
            index += 1
        self.dynamic_index = index
        if failure is not None:
            raise InvalidJumpFault(failure, dynamic_index=index)
        hook = self.write_hook
        position = 0
        for op, phi_din in moves:
            value = updates[position]
            position += 1
            if hook is not None:
                value = hook(index - 1, phi_din, phi_din.result_reg, value)
                value = phi_din.canon(value)
            frame[phi_din.dest_slot] = value
