"""The MiniIR interpreter: a thin driver over a decoded program.

The interpreter executes a :class:`~repro.vm.program.DecodedProgram` (or a
:class:`~repro.ir.module.Module`, which is decoded — and cached — on the
fly) starting from an entry function, with the instrumentation points the
fault injector needs:

* ``read_hook(dynamic_index, instruction, slot, register, value)`` is called
  every time an instruction fetches a *register* source operand, immediately
  before the value is used — the inject-on-read insertion point.  ``slot``
  is the operand's index among the instruction's register operands and
  ``register`` is the targeted :class:`~repro.ir.values.VirtualRegister`;
* ``write_hook(dynamic_index, instruction, register, value)`` is called every
  time an instruction produces a result register, immediately after the value
  is computed — the inject-on-write insertion point;
* ``trace_collector`` receives one (pre-extracted) static-metadata record per
  executed instruction, enabling golden-trace profiling runs.

Both hooks receive the executing :class:`~repro.vm.program.DecodedInstruction`
as their ``instruction`` argument; it exposes ``opcode`` like the IR
instruction does, so hook objects written against either representation work
with both this driver and the tree-walking
:class:`~repro.vm.reference.ReferenceInterpreter`.

All decode-time work (operand resolution, handler binding, phi-move
precomputation, terminator classification) lives in :mod:`repro.vm.program`;
the driver's inner loop is: fetch decoded instruction, watchdog check, trace
append, switch on the pre-classified kind.  When hooks and tracing are
disabled they cost one ``is None`` test per access — nothing else.

Semantics are bit-identical to the reference interpreter and follow the
"hardware-like" conventions the paper relies on: integer arithmetic wraps at
the register width, shifts mask their shift amount, integer division by zero
(and ``INT_MIN / -1``) raises a simulated arithmetic fault, memory accesses
are bounds- and alignment-checked, and a dynamic-instruction watchdog
detects hangs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ExecutionSetupError
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import VirtualRegister
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    HangDetected,
    HardwareFault,
    InvalidJumpFault,
    SegmentationFault,
)
from repro.vm.memory import Memory
from repro.vm.program import (
    KIND_BRANCH,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SIMPLE,
    UNDEFINED,
    DecodedFunction,
    DecodedInstruction,
    DecodedProgram,
    _finish,
    _read_op,
    decode_module,
)
from repro.vm.runtime import (
    ExecutionLimits,
    ExecutionResult,
    MATH_INTRINSICS,
    OutputEntry,
    ProgramExit,
    RuntimeScalar,
)
from repro.telemetry import metrics as _telemetry_metrics
from repro.vm.trace import TraceCollector

# Backwards-compatible aliases (the seed exposed these from this module).
_MATH_INTRINSICS = MATH_INTRINSICS
_ProgramExit = ProgramExit

#: ``(ticks_counter, segments_counter)`` when telemetry is enabled, else
#: None.  Checked once per *segment* (never per tick), so the disabled cost
#: is a single ``is None`` test per execution slice.
_VM_COUNTERS = None


def refresh_vm_counters() -> None:
    """Re-bind the segment-level VM counters to the current enable state.

    Called at import time; call again after
    :func:`repro.telemetry.set_enabled` to make the flip take effect here
    (the overhead benchmark toggles it both ways).
    """
    global _VM_COUNTERS
    if _telemetry_metrics.enabled():
        registry = _telemetry_metrics.registry()
        _VM_COUNTERS = (
            registry.counter(
                "repro_vm_ticks_total",
                help="Dynamic instructions executed across all segments.",
            ),
            registry.counter(
                "repro_vm_segments_total",
                help="Execution segments (full runs, resumes, window slices).",
            ),
        )
    else:
        _VM_COUNTERS = None


refresh_vm_counters()

#: The instruction object passed to injection hooks: the decoded form on the
#: production driver, the IR instruction on the reference interpreter.  Both
#: expose ``opcode``.
HookInstruction = Union[Instruction, DecodedInstruction]

#: Inject-on-read hook: ``(dynamic_index, instruction, slot, register,
#: value) -> value``.  ``slot`` indexes the instruction's register operands.
ReadHook = Callable[[int, HookInstruction, int, VirtualRegister, RuntimeScalar], RuntimeScalar]

#: Inject-on-write hook: ``(dynamic_index, instruction, register, value) ->
#: value``.
WriteHook = Callable[[int, HookInstruction, VirtualRegister, RuntimeScalar], RuntimeScalar]


class _PauseSignal(Exception):
    """Internal control-flow signal: a segmented run reached its pause tick.

    Raised from the inner loop (or generated code) when ``dynamic_index``
    reaches the armed pause tick, and caught by :meth:`Interpreter._segment`,
    which converts it into a :class:`SuspendedRun`.  While the signal unwinds
    the Python call stack, each VM stack level freezes itself into a
    :class:`~repro.vm.snapshot.FrameSnapshot` via the two-step
    :meth:`site` / :meth:`level` protocol:

    * the code that *knows the suspension point* of the current level (the
      inner loop's pause check, a call site whose callee paused) opens a site
      with ``(block_index, position, frame)``;
    * the frame owner (``_run_function``, ``_resume_level``, or a generated
      entry wrapper) closes the level, appending the finished record.

    Records accumulate innermost-first; ``_segment`` reverses them into the
    outermost-first order ``_resume_level`` expects.  ``stack_cursor`` is the
    VM stack-segment cursor at the instant of the pause — the unwind releases
    every level's stack frame, so ``continue_segment`` re-arms the cursor
    before rebuilding the levels (the stack *data* is never cleared).
    """

    def __init__(self, stack_cursor: int) -> None:
        self.records: List = []
        self.stack_cursor = stack_cursor
        self._site_open = False
        self._block_index = 0
        self._position = 0
        self._frame: tuple = ()
        self._previous: Optional[int] = None

    def site(self, block_index: int, position: int, frame, previous: Optional[int] = None) -> None:
        self._block_index = block_index
        self._position = position
        self._frame = frame
        self._previous = previous
        self._site_open = True

    def level(self, dfunc, stack_mark: int) -> None:
        from repro.vm.snapshot import FrameSnapshot

        self.records.append(
            FrameSnapshot(
                dfunc,
                self._block_index,
                self._position,
                self._frame,
                stack_mark,
                self._previous,
            )
        )
        self._site_open = False


class SuspendedRun:
    """A run paused at a tick boundary, resumable via ``continue_segment``.

    Holds the frozen call stack (outermost-first, like a
    :class:`~repro.vm.snapshot.VMSnapshot`) and the VM stack cursor at the
    pause.  Memory, output and ``dynamic_index`` live on the interpreter —
    a suspended run is only valid on the interpreter that produced it, with
    no intervening runs (windowed execution's in-process hand-off; nothing
    is copied).
    """

    __slots__ = ("frames", "stack_cursor")

    def __init__(self, frames: tuple, stack_cursor: int) -> None:
        self.frames = frames
        self.stack_cursor = stack_cursor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SuspendedRun depth={len(self.frames)}>"


class Interpreter:
    """Executes a decoded MiniIR program with optional fault-injection hooks."""

    def __init__(
        self,
        program: Union[DecodedProgram, Module],
        *,
        entry: str = "main",
        limits: Optional[ExecutionLimits] = None,
        read_hook: Optional[ReadHook] = None,
        write_hook: Optional[WriteHook] = None,
        trace_collector: Optional[TraceCollector] = None,
    ) -> None:
        if isinstance(program, DecodedProgram):
            decoded = program
        elif isinstance(program, Module):
            decoded = decode_module(program)
        else:
            raise ExecutionSetupError(
                f"cannot interpret {type(program).__name__}; expected a Module "
                f"or DecodedProgram"
            )
        if not decoded.has_function(entry):
            raise ExecutionSetupError(
                f"module {decoded.module.name} has no entry function @{entry}"
            )
        self.program = decoded
        self.module = decoded.module
        self.entry = entry
        self.limits = limits or ExecutionLimits()
        self.read_hook = read_hook
        self.write_hook = write_hook
        self.trace_collector = trace_collector
        self._trace_append = (
            trace_collector.append_meta if trace_collector is not None else None
        )

        self.memory = Memory()
        self.output: List[OutputEntry] = []
        self.dynamic_index = 0
        self._call_depth = 0
        #: Armed pause tick for segmented execution (None = run to the end).
        #: ``_stop`` is the hoisted min(pause, watchdog limit) the inner loop
        #: (and generated code, via ``vm._stop``) compares against.
        self._pause_tick: Optional[int] = None
        self._stop = self.limits.max_dynamic_instructions
        self._global_addresses: Dict[str, int] = {}
        #: Global addresses by decode index — operand records index into this.
        self.global_values: List[int] = []
        self._materialise_globals()
        #: Post-construction memory image, for pooled from-scratch reuse.
        self._initial_memory = self.memory.capture_state()

    # ------------------------------------------------------------------ setup
    def _materialise_globals(self) -> None:
        for variable in self.program.global_variables:
            value_type = variable.value_type
            size = value_type.size_bytes()
            align = value_type.alignment()
            address = self.memory.allocate("globals", max(size, 1), max(align, 1))
            self._global_addresses[variable.name] = address
            self.global_values.append(address)
            if variable.initializer:
                if isinstance(value_type, ArrayType):
                    self.memory.write_array(address, variable.initializer, value_type.element)
                else:
                    self.memory.write_scalar(address, variable.initializer[0], value_type)

    def global_address(self, name: str) -> int:
        """Address of a module global (useful in tests and program setup)."""
        return self._global_addresses[name]

    def reset(self) -> None:
        """Rewind to the freshly constructed state (pooled from-scratch reuse).

        Restores the post-construction memory image and zeroes the run
        bookkeeping, so one long-lived driver can execute many from-scratch
        runs without paying address-space setup per run.
        """
        self.memory.restore_state(self._initial_memory)
        self.output = []
        self.dynamic_index = 0
        self._call_depth = 0

    # ------------------------------------------------------------------ running
    def run(self, args: Sequence[RuntimeScalar] = ()) -> ExecutionResult:
        """Execute the entry function and classify how the run ended."""
        entry_function = self.program.get_function(self.entry)
        if len(args) != len(entry_function.function.arguments):
            raise ExecutionSetupError(
                f"entry @{self.entry} takes {len(entry_function.function.arguments)} "
                f"arguments, got {len(args)}"
            )
        return self._execute(lambda: self._run_function(entry_function, list(args)))

    def _execute(self, thunk) -> ExecutionResult:
        """Run ``thunk`` and classify how the execution ended."""
        counters = _VM_COUNTERS
        if counters is not None:
            start_tick = self.dynamic_index
            try:
                return self._execute_inner(thunk)
            finally:
                counters[0].value += self.dynamic_index - start_tick
                counters[1].value += 1
        return self._execute_inner(thunk)

    def _execute_inner(self, thunk) -> ExecutionResult:
        try:
            return_value = thunk()
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=return_value,
                dynamic_instructions=self.dynamic_index,
            )
        except ProgramExit as exit_request:
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=exit_request.code,
                dynamic_instructions=self.dynamic_index,
            )
        except HardwareFault as fault:
            if fault.dynamic_index is None:
                fault.dynamic_index = self.dynamic_index
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                fault=fault,
            )
        except HangDetected:
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                hang=True,
            )

    # ------------------------------------------------------------------ fast-forward
    def restore(self, snapshot) -> None:
        """Reset all execution state to a captured :class:`~repro.vm.snapshot.VMSnapshot`.

        The snapshot must originate from the *same* :class:`DecodedProgram`
        object — frame slot numbering and block indices are decode-specific,
        so a snapshot never survives a re-decode (the stale-cache guard).
        """
        if snapshot.program is not self.program:
            raise ExecutionSetupError(
                "snapshot was captured from a different decoded program; "
                "re-capture checkpoints after the module was re-decoded"
            )
        self.memory.restore_state(snapshot.memory)
        self.output = list(snapshot.output)
        self.dynamic_index = snapshot.tick
        self._call_depth = 0

    def resume(self, snapshot) -> ExecutionResult:
        """Restore ``snapshot`` and execute the remaining suffix of the run.

        The resumed execution is bit-identical to the suffix of a from-scratch
        run: the dynamic-instruction counter continues at the snapshot tick,
        hooks fire with the same indices and values, and the final
        :class:`ExecutionResult` matches field for field.
        """
        self.restore(snapshot)
        return self._execute(lambda: self._resume_level(snapshot.frames, 0))

    # ------------------------------------------------------------------ segments
    def _set_pause(self, pause_tick: Optional[int]) -> None:
        limit = self.limits.max_dynamic_instructions
        if pause_tick is None or pause_tick >= limit:
            # A pause at/past the watchdog can never fire before the hang
            # check; treating it as "no pause" keeps hang classification
            # byte-identical to an unsegmented run.
            self._pause_tick = None
            self._stop = limit
        else:
            self._pause_tick = pause_tick
            self._stop = pause_tick

    def _stop_raise(self, n: int, block_index: int, position: int, frame) -> None:
        """Generated-code stop check tripped: raise hang or pause (always raises).

        The compiled variants compare against the hoisted ``vm._stop``; this
        trampoline distinguishes the two causes so one per-tick compare
        serves both, with ``vm.dynamic_index`` already synced by the caller.
        """
        limit = self.limits.max_dynamic_instructions
        if n >= limit:
            raise HangDetected(n, limit)
        signal = _PauseSignal(self.memory.stack_mark())
        signal.site(block_index, position, frame)
        raise signal

    def _stop_raise_prephi(
        self, n: int, phi_count: int, block_index: int, frame, previous: int
    ) -> None:
        """Pre-phi stop check tripped: pause before the phi group, or no-op.

        Returns (running the phis) when the trigger was only watchdog
        proximity — hang checks fire at code ticks, never inside a phi
        group, exactly like the decoded driver.
        """
        pause = self._pause_tick
        if pause is None or n + phi_count <= pause:
            return
        signal = _PauseSignal(self.memory.stack_mark())
        signal.site(block_index, 0, frame, previous)
        raise signal

    def _segment(self, thunk, pause_tick: Optional[int]):
        """Run ``thunk`` until it ends or reaches ``pause_tick``.

        Returns the final :class:`ExecutionResult` when the run ends first
        (normally, by fault, or by hang — all classified exactly like an
        unsegmented run), or a :class:`SuspendedRun` when the pause tick is
        reached: no instruction at or after ``pause_tick`` has executed, and
        ``continue_segment`` picks up without copying any state.
        """
        self._set_pause(pause_tick)
        try:
            try:
                return self._execute(thunk)
            except _PauseSignal as signal:
                return SuspendedRun(
                    tuple(reversed(signal.records)), signal.stack_cursor
                )
        finally:
            self._set_pause(None)

    def run_segment(self, args: Sequence[RuntimeScalar], pause_tick: Optional[int]):
        """Start a from-scratch run that pauses at ``pause_tick``."""
        entry_function = self.program.get_function(self.entry)
        if len(args) != len(entry_function.function.arguments):
            raise ExecutionSetupError(
                f"entry @{self.entry} takes {len(entry_function.function.arguments)} "
                f"arguments, got {len(args)}"
            )
        return self._segment(
            lambda: self._run_function(entry_function, list(args)), pause_tick
        )

    def resume_segment(self, snapshot, pause_tick: Optional[int]):
        """Restore a checkpoint and run its suffix, pausing at ``pause_tick``."""
        self.restore(snapshot)
        return self._segment(
            lambda: self._resume_level(snapshot.frames, 0), pause_tick
        )

    def continue_segment(self, suspended: SuspendedRun, pause_tick: Optional[int]):
        """Continue a :class:`SuspendedRun` in place, pausing at ``pause_tick``.

        Memory, output and the tick counter were never disturbed by the
        pause; only the VM stack cursor (released by the unwind) is re-armed
        before the frozen call stack is rebuilt.
        """
        self.memory.segments["stack"].cursor = suspended.stack_cursor
        return self._segment(
            lambda: self._resume_level(suspended.frames, 0), pause_tick
        )

    def _resume_level(self, frames, level: int) -> Optional[RuntimeScalar]:
        """Rebuild one captured call-stack level and continue executing it.

        Outer levels are suspended mid-``call``: their callee (the next level)
        is resumed first, then the call completes exactly like ``_h_call``
        and the block continues after it.  The innermost level simply resumes
        at its captured instruction.
        """
        record = frames[level]
        dfunc = record.dfunc
        self._call_depth += 1
        frame = list(record.frame)
        try:
            block = dfunc.blocks[record.block_index]
            if level + 1 < len(frames):
                value = self._resume_level(frames, level + 1)
                din = block.code[record.position]
                if din.dest_slot >= 0:
                    if value is None:
                        value = 0
                    _finish(self, frame, din, din.canon(value))
                return self._block_loop(frame, block, -1, record.position + 1, True)
            if record.previous is not None:
                # Paused before the block's phi group: re-run the phis for
                # the captured incoming edge, then the block body.
                return self._block_loop(frame, block, record.previous, 0, False)
            return self._block_loop(frame, block, -1, record.position, True)
        except _PauseSignal as signal:
            if not signal._site_open:
                # The pause surfaced from the nested level's resume: this
                # level is still suspended at its original call site.
                signal.site(record.block_index, record.position, tuple(frame))
            signal.level(dfunc, record.stack_mark)
            raise
        finally:
            self.memory.stack_release(record.stack_mark)
            self._call_depth -= 1

    # ------------------------------------------------------------------ frames
    def _run_function(
        self, dfunc: DecodedFunction, args: List[RuntimeScalar]
    ) -> Optional[RuntimeScalar]:
        if self._call_depth >= self.limits.max_call_depth:
            raise SegmentationFault(
                f"call depth exceeded {self.limits.max_call_depth} (stack overflow)",
                dynamic_index=self.dynamic_index,
            )
        self._call_depth += 1
        stack_mark = self.memory.stack_mark()
        frame: List = [UNDEFINED] * dfunc.frame_size
        try:
            # Arguments occupy the first frame slots, in declaration order.
            slot = 0
            for canon, actual in zip(dfunc.arg_canons, args):
                frame[slot] = canon(actual)
                slot += 1
            return self._run_blocks(dfunc, frame)
        except _PauseSignal as signal:
            signal.level(dfunc, stack_mark)
            raise
        finally:
            self.memory.stack_release(stack_mark)
            self._call_depth -= 1

    def _run_blocks(self, dfunc: DecodedFunction, frame: List) -> Optional[RuntimeScalar]:
        block = dfunc.entry
        if block is None:
            raise ExecutionSetupError(f"function @{dfunc.name} has no blocks")
        return self._block_loop(frame, block, -1, 0, False)

    def _block_loop(
        self, frame: List, block, previous: int, position: int, skip_phis: bool
    ) -> Optional[RuntimeScalar]:
        """The driver inner loop, entered at ``(block, position)``.

        A normal run enters at the entry block, position 0.  Fast-forward
        resume enters mid-block with ``skip_phis`` set, because the captured
        position is always past the block's phi moves.

        When a pause tick is armed (:meth:`_segment`), the loop raises
        :class:`_PauseSignal` the moment ``dynamic_index`` reaches it —
        before executing the instruction at that tick.  A phi group that
        would *straddle* the pause suspends at the block entry instead
        (phi moves are an atomic parallel assignment; undershooting a pause
        is always safe, overshooting never is).
        """
        limit = self.limits.max_dynamic_instructions
        stop = self._stop
        pause = self._pause_tick
        trace = self._trace_append

        try:
            while True:
                if block.phi_count and not skip_phis:
                    if pause is not None and self.dynamic_index + block.phi_count > pause:
                        signal = _PauseSignal(self.memory.stack_mark())
                        signal.site(block.index, 0, tuple(frame), previous)
                        raise signal
                    self._run_phis(block, previous, frame, trace)
                skip_phis = False

                code = block.code
                code_len = block.code_len
                while position < code_len:
                    din = code[position]
                    index = self.dynamic_index
                    if index >= stop:
                        if index >= limit:
                            raise HangDetected(index, limit)
                        signal = _PauseSignal(self.memory.stack_mark())
                        signal.site(block.index, position, tuple(frame))
                        raise signal
                    if trace is not None:
                        trace(din.meta)
                    self.dynamic_index = index + 1

                    kind = din.kind
                    if kind == KIND_SIMPLE:
                        din.handler(self, frame, din)
                        position += 1
                        continue
                    if kind == KIND_BRANCH:
                        previous, block = block.index, din.target
                        break
                    if kind == KIND_COND_BRANCH:
                        condition = _read_op(self, frame, din, din.operands[0])
                        previous, block = (
                            block.index,
                            din.if_true if condition else din.if_false,
                        )
                        break
                    if kind == KIND_RETURN:
                        if not din.operands:
                            return None
                        value = _read_op(self, frame, din, din.operands[0])
                        return bitops.canonicalize(value, din.ret_type)
                    # KIND_UNREACHABLE
                    raise AbortFault(
                        "executed an unreachable instruction",
                        dynamic_index=self.dynamic_index,
                    )
                else:
                    # Fell off the end of a block without a terminator: treat
                    # as a wild jump (cannot happen for verified IR, can
                    # happen if a fault corrupts control state).
                    raise InvalidJumpFault(
                        f"control fell off the end of block %{block.name}",
                        dynamic_index=self.dynamic_index,
                    )
                position = 0
        except _PauseSignal as signal:
            if not signal._site_open:
                # The pause happened inside a callee (din.handler running a
                # call): this frame is suspended at the call instruction.
                signal.site(block.index, position, tuple(frame))
            raise

    def _run_phis(self, block, previous: int, frame: List, trace) -> None:
        """Execute the precomputed phi moves of one control-flow edge.

        All incoming values are read (and ticked) before any phi result is
        written, preserving the parallel-assignment semantics; the write hook
        then fires per phi in order, exactly like the reference interpreter.
        """
        moves, failure = block.phi_edges[previous]
        updates: List = []
        index = self.dynamic_index
        global_values = self.global_values
        for op, phi_din in moves:
            kind = op[0]
            if kind == 1:  # OP_REGISTER
                value = frame[op[1]]
                if value is UNDEFINED:
                    raise ExecutionSetupError(
                        f"register {op[2].short_name()} used before definition in "
                        f"@{phi_din.func_name}"
                    )
            elif kind == 0:  # OP_CONSTANT
                value = op[1]
            else:  # OP_GLOBAL
                value = global_values[op[1]]
            updates.append(phi_din.canon_in(value))
            if trace is not None:
                trace(phi_din.meta)
            index += 1
        self.dynamic_index = index
        if failure is not None:
            raise InvalidJumpFault(failure, dynamic_index=index)
        hook = self.write_hook
        position = 0
        for op, phi_din in moves:
            value = updates[position]
            position += 1
            if hook is not None:
                value = hook(index - 1, phi_din, phi_din.result_reg, value)
                value = phi_din.canon(value)
            frame[phi_din.dest_slot] = value
