"""Golden-trace collection (fault-free profiling runs).

LLFI's workflow has two phases: a *profiling* run of the uninstrumented
program that records every dynamic instruction, followed by injection runs
that pick a time–location pair from that profile.  :class:`TraceCollector`
implements the profiling phase for MiniIR and :class:`GoldenTrace` is its
result: a compact, indexable record of the dynamic execution that the
injection techniques (:mod:`repro.injection.techniques`) enumerate to build
the candidate error space of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction


@dataclass(frozen=True)
class DynamicInstructionRecord:
    """One dynamic instruction of the golden run.

    Attributes
    ----------
    dynamic_index:
        Position in the dynamic instruction stream (0-based).
    function_name:
        Name of the function the instruction belongs to.
    static_index:
        The instruction's static index within its function.
    opcode:
        Instruction opcode (e.g. ``"add"``, ``"load"``, ``"icmp slt"``).
    source_register_bits:
        Bit widths of the register *source* operands actually read by the
        instruction — the inject-on-read targets.
    destination_bits:
        Bit width of the destination register, or ``None`` when the
        instruction produces no register result (e.g. ``store``) — the
        inject-on-write target.
    destination_is_pointer:
        True when the produced value is an address.  Used by analyses that
        reason about the data/address mix of a workload.
    """

    dynamic_index: int
    function_name: str
    static_index: int
    opcode: str
    source_register_bits: Tuple[int, ...]
    destination_bits: Optional[int]
    destination_is_pointer: bool

    @property
    def has_destination(self) -> bool:
        return self.destination_bits is not None

    @property
    def source_count(self) -> int:
        return len(self.source_register_bits)


class GoldenTrace:
    """The complete dynamic instruction stream of a fault-free run."""

    def __init__(
        self,
        records: Sequence[DynamicInstructionRecord],
        output: Tuple,
        return_value,
    ) -> None:
        self.records: List[DynamicInstructionRecord] = list(records)
        #: The fault-free program output (golden output for SDC comparison).
        self.output = output
        #: The fault-free return value of the entry function.
        self.return_value = return_value

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> DynamicInstructionRecord:
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    @property
    def dynamic_instruction_count(self) -> int:
        return len(self.records)

    def records_with_destination(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-write times."""
        return [record for record in self.records if record.has_destination]

    def records_with_sources(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-read times."""
        return [record for record in self.records if record.source_count > 0]

    def pointer_destination_fraction(self) -> float:
        """Fraction of destination registers that hold addresses."""
        with_destination = self.records_with_destination()
        if not with_destination:
            return 0.0
        pointer_count = sum(1 for record in with_destination if record.destination_is_pointer)
        return pointer_count / len(with_destination)


class TraceCollector:
    """Collects :class:`DynamicInstructionRecord` objects during execution.

    Passed to :meth:`repro.vm.interpreter.Interpreter.run` as the
    ``trace_collector`` argument; the interpreter calls :meth:`record` once
    per executed instruction.
    """

    def __init__(self) -> None:
        self.records: List[DynamicInstructionRecord] = []

    def record(self, dynamic_index: int, instruction: Instruction) -> None:
        from repro.ir.types import PointerType

        destination = instruction.destination()
        sources = tuple(
            register.type.bits or 0 for register in instruction.source_registers()
        )
        self.records.append(
            DynamicInstructionRecord(
                dynamic_index=dynamic_index,
                function_name=instruction.parent.parent.name if instruction.parent else "?",
                static_index=instruction.static_index,
                opcode=instruction.opcode,
                source_register_bits=sources,
                destination_bits=destination.type.bits if destination is not None else None,
                destination_is_pointer=(
                    destination is not None and isinstance(destination.type, PointerType)
                ),
            )
        )

    def build(self, output: Tuple, return_value) -> GoldenTrace:
        """Finalise the collected records into a :class:`GoldenTrace`."""
        return GoldenTrace(self.records, output, return_value)
