"""Golden-trace collection (fault-free profiling runs).

LLFI's workflow has two phases: a *profiling* run of the uninstrumented
program that records every dynamic instruction, followed by injection runs
that pick a time–location pair from that profile.  :class:`TraceCollector`
implements the profiling phase for MiniIR and :class:`GoldenTrace` is its
result: a compact, indexable record of the dynamic execution that the
injection techniques (:mod:`repro.injection.techniques`) enumerate to build
the candidate error space of Table II.

Everything a :class:`DynamicInstructionRecord` carries apart from its dynamic
index is *static* — derivable from the instruction alone.  That static part
is computed once per static instruction as a :class:`StaticInstructionMeta`
(cached on the instruction, shared with the decoded program representation of
:mod:`repro.vm.program`), so recording one executed instruction costs a
single list append instead of re-deriving operand types on every tick.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction
from repro.ir.types import PointerType


class RegisterAccess(NamedTuple):
    """One register access of the golden run — the unit of the error space.

    ``slot`` is the source-operand index for reads and ``None`` for the
    destination write; ``bits`` is the accessed register's width, i.e. how
    many single bit-flip errors the access expands to.
    """

    dynamic_index: int
    kind: str  # "read" | "write"
    slot: Optional[int]
    bits: int
    opcode: str


@dataclass(frozen=True)
class DynamicInstructionRecord:
    """One dynamic instruction of the golden run.

    Attributes
    ----------
    dynamic_index:
        Position in the dynamic instruction stream (0-based).
    function_name:
        Name of the function the instruction belongs to.
    static_index:
        The instruction's static index within its function.
    opcode:
        Instruction opcode (e.g. ``"add"``, ``"load"``, ``"icmp slt"``).
    source_register_bits:
        Bit widths of the register *source* operands actually read by the
        instruction — the inject-on-read targets.
    destination_bits:
        Bit width of the destination register, or ``None`` when the
        instruction produces no register result (e.g. ``store``) — the
        inject-on-write target.
    destination_is_pointer:
        True when the produced value is an address.  Used by analyses that
        reason about the data/address mix of a workload.
    """

    dynamic_index: int
    function_name: str
    static_index: int
    opcode: str
    source_register_bits: Tuple[int, ...]
    destination_bits: Optional[int]
    destination_is_pointer: bool

    @property
    def has_destination(self) -> bool:
        return self.destination_bits is not None

    @property
    def source_count(self) -> int:
        return len(self.source_register_bits)


class StaticInstructionMeta:
    """The static part of a :class:`DynamicInstructionRecord`.

    One instance exists per static instruction; both execution backends
    append it to the trace on every tick, and the dynamic index is implied by
    the append position.
    """

    __slots__ = (
        "function_name",
        "static_index",
        "opcode",
        "source_register_bits",
        "destination_bits",
        "destination_is_pointer",
    )

    def __init__(self, instruction: Instruction) -> None:
        destination = instruction.destination()
        self.function_name = (
            instruction.parent.parent.name if instruction.parent else "?"
        )
        self.static_index = instruction.static_index
        self.opcode = instruction.opcode
        self.source_register_bits = tuple(
            register.type.bits or 0 for register in instruction.source_registers()
        )
        self.destination_bits = destination.type.bits if destination is not None else None
        self.destination_is_pointer = destination is not None and isinstance(
            destination.type, PointerType
        )

    def record_at(self, dynamic_index: int) -> DynamicInstructionRecord:
        return DynamicInstructionRecord(
            dynamic_index=dynamic_index,
            function_name=self.function_name,
            static_index=self.static_index,
            opcode=self.opcode,
            source_register_bits=self.source_register_bits,
            destination_bits=self.destination_bits,
            destination_is_pointer=self.destination_is_pointer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StaticInstructionMeta {self.opcode} @{self.function_name}"
            f"#{self.static_index}>"
        )


def static_meta(instruction: Instruction) -> StaticInstructionMeta:
    """The (cached) static trace metadata of an instruction.

    The cache is invalidated when the function is re-finalised with a
    different static numbering (e.g. after instructions were inserted).
    """
    meta = getattr(instruction, "_static_meta", None)
    if meta is None or meta.static_index != instruction.static_index:
        meta = StaticInstructionMeta(instruction)
        instruction._static_meta = meta
    return meta


class GoldenTrace:
    """The complete dynamic instruction stream of a fault-free run."""

    def __init__(
        self,
        records: Sequence[DynamicInstructionRecord],
        output: Tuple,
        return_value,
        checkpoint_ticks: Sequence[int] = (),
    ) -> None:
        self.records: List[DynamicInstructionRecord] = list(records)
        #: The fault-free program output (golden output for SDC comparison).
        self.output = output
        #: The fault-free return value of the entry function.
        self.return_value = return_value
        #: Dynamic ticks at which VM checkpoints were captured during the
        #: profiling run (sorted ascending; empty when profiling ran without
        #: checkpointing).  The snapshots themselves live in the
        #: :class:`~repro.vm.snapshot.CheckpointStore` cached alongside this
        #: trace — this is the metadata fast-forward scheduling bisects over.
        self.checkpoint_ticks: Tuple[int, ...] = tuple(checkpoint_ticks)
        # Candidate-record views are scanned once per *experiment* by the
        # sampling code, so they are computed lazily and cached.
        self._with_destination: Optional[List[DynamicInstructionRecord]] = None
        self._with_sources: Optional[List[DynamicInstructionRecord]] = None
        self._register_accesses: Optional[Tuple[RegisterAccess, ...]] = None

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> DynamicInstructionRecord:
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    @property
    def dynamic_instruction_count(self) -> int:
        return len(self.records)

    def records_with_destination(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-write times (cached)."""
        if self._with_destination is None:
            self._with_destination = [
                record for record in self.records if record.destination_bits is not None
            ]
        return self._with_destination

    def records_with_sources(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-read times (cached)."""
        if self._with_sources is None:
            self._with_sources = [
                record for record in self.records if record.source_register_bits
            ]
        return self._with_sources

    def iter_register_accesses(self) -> Tuple[RegisterAccess, ...]:
        """Every register access of the run, in execution order (cached).

        This is the one walk both the injection techniques and the
        error-space enumerator (:mod:`repro.errorspace`) derive their
        candidate spaces from: each *read* access is an inject-on-read
        candidate, each *write* access an inject-on-write candidate.
        """
        if self._register_accesses is None:
            accesses: List[RegisterAccess] = []
            for record in self.records:
                for slot, bits in enumerate(record.source_register_bits):
                    if bits:
                        accesses.append(
                            RegisterAccess(
                                record.dynamic_index, "read", slot, bits, record.opcode
                            )
                        )
                if record.destination_bits:
                    accesses.append(
                        RegisterAccess(
                            record.dynamic_index,
                            "write",
                            None,
                            record.destination_bits,
                            record.opcode,
                        )
                    )
            self._register_accesses = tuple(accesses)
        return self._register_accesses

    def latest_checkpoint_at(self, tick: int) -> Optional[int]:
        """The largest checkpoint tick ``<= tick``, or None (O(log n)).

        Fast-forward execution restores the snapshot captured at this tick
        and replays only the remaining suffix of the run.
        """
        index = bisect_right(self.checkpoint_ticks, tick) - 1
        return self.checkpoint_ticks[index] if index >= 0 else None

    def pointer_destination_fraction(self) -> float:
        """Fraction of destination registers that hold addresses."""
        with_destination = self.records_with_destination()
        if not with_destination:
            return 0.0
        pointer_count = sum(1 for record in with_destination if record.destination_is_pointer)
        return pointer_count / len(with_destination)


class TraceCollector:
    """Collects the dynamic instruction stream during execution.

    Passed to the interpreter as the ``trace_collector`` argument.  The
    decoded execution path appends pre-built :class:`StaticInstructionMeta`
    objects through the bound :attr:`append_meta` fast path; the reference
    interpreter calls the legacy :meth:`record` signature.  Both produce
    bit-identical golden traces.
    """

    __slots__ = ("_metas", "append_meta")

    def __init__(self) -> None:
        self._metas: List[StaticInstructionMeta] = []
        #: Bound-method fast path used by the decoded interpreter's tick.
        self.append_meta = self._metas.append

    def record(self, dynamic_index: int, instruction: Instruction) -> None:
        """Record one executed instruction (legacy per-instruction signature).

        ``dynamic_index`` is implied by the append position — the interpreter
        calls this exactly once per tick, starting at zero.
        """
        self._metas.append(static_meta(instruction))

    def __len__(self) -> int:
        return len(self._metas)

    @property
    def records(self) -> List[DynamicInstructionRecord]:
        """The collected stream, materialised as full dynamic records."""
        return [meta.record_at(index) for index, meta in enumerate(self._metas)]

    def build(
        self, output: Tuple, return_value, checkpoint_ticks: Sequence[int] = ()
    ) -> GoldenTrace:
        """Finalise the collected records into a :class:`GoldenTrace`."""
        return GoldenTrace(self.records, output, return_value, checkpoint_ticks)
