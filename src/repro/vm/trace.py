"""Golden-trace collection (fault-free profiling runs), stored columnar.

LLFI's workflow has two phases: a *profiling* run of the uninstrumented
program that records every dynamic instruction, followed by injection runs
that pick a time–location pair from that profile.  :class:`TraceCollector`
implements the profiling phase for MiniIR and :class:`GoldenTrace` is its
result: a compact, indexable record of the dynamic execution that the
injection techniques (:mod:`repro.injection.techniques`) enumerate to build
the candidate error space of Table II.

Everything a :class:`DynamicInstructionRecord` carries apart from its dynamic
index is *static* — derivable from the instruction alone.  That static part
is computed once per static instruction as a :class:`StaticInstructionMeta`
(cached on the instruction, shared with the decoded program representation of
:mod:`repro.vm.program`).

Storage is *columnar*: a trace holds one interned table of the distinct
static metas plus a flat ``array`` of per-tick meta ids — a few bytes per
dynamic instruction instead of a Python object.  Everything the planner and
the error-space enumerator walk is derived from those columns by index
arithmetic: the register-access expansion is precomputed once per distinct
meta and streamed per tick, and checkpoint lookup bisects a flat tick
array.  The per-tick :class:`DynamicInstructionRecord` views of the
original API are materialised lazily (and cached) only when somebody asks
for them.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction
from repro.ir.types import PointerType


class RegisterAccess(NamedTuple):
    """One register access of the golden run — the unit of the error space.

    ``slot`` is the source-operand index for reads and ``None`` for the
    destination write; ``bits`` is the accessed register's width, i.e. how
    many single bit-flip errors the access expands to.
    """

    dynamic_index: int
    kind: str  # "read" | "write"
    slot: Optional[int]
    bits: int
    opcode: str


class AccessColumns(NamedTuple):
    """The register-access expansion of a trace as parallel flat columns.

    One entry per access, in the same deterministic order as
    :meth:`GoldenTrace.iter_register_accesses`: ``slot`` is ``-1`` for
    writes, ``kind`` is ``b"r"``/``b"w"`` per access, and ``meta_id``
    indexes :attr:`GoldenTrace.meta_table` (for the opcode).
    """

    tick: array
    slot: array
    bits: array
    kind: bytearray
    meta_id: array


@dataclass(frozen=True)
class DynamicInstructionRecord:
    """One dynamic instruction of the golden run.

    Attributes
    ----------
    dynamic_index:
        Position in the dynamic instruction stream (0-based).
    function_name:
        Name of the function the instruction belongs to.
    static_index:
        The instruction's static index within its function.
    opcode:
        Instruction opcode (e.g. ``"add"``, ``"load"``, ``"icmp slt"``).
    source_register_bits:
        Bit widths of the register *source* operands actually read by the
        instruction — the inject-on-read targets.
    destination_bits:
        Bit width of the destination register, or ``None`` when the
        instruction produces no register result (e.g. ``store``) — the
        inject-on-write target.
    destination_is_pointer:
        True when the produced value is an address.  Used by analyses that
        reason about the data/address mix of a workload.
    """

    dynamic_index: int
    function_name: str
    static_index: int
    opcode: str
    source_register_bits: Tuple[int, ...]
    destination_bits: Optional[int]
    destination_is_pointer: bool

    @property
    def has_destination(self) -> bool:
        return self.destination_bits is not None

    @property
    def source_count(self) -> int:
        return len(self.source_register_bits)


class StaticInstructionMeta:
    """The static part of a :class:`DynamicInstructionRecord`.

    One instance exists per static instruction; both execution backends
    append it to the trace on every tick, and the dynamic index is implied by
    the append position.
    """

    __slots__ = (
        "function_name",
        "static_index",
        "opcode",
        "source_register_bits",
        "destination_bits",
        "destination_is_pointer",
    )

    def __init__(self, instruction: Instruction) -> None:
        destination = instruction.destination()
        self.function_name = (
            instruction.parent.parent.name if instruction.parent else "?"
        )
        self.static_index = instruction.static_index
        self.opcode = instruction.opcode
        self.source_register_bits = tuple(
            register.type.bits or 0 for register in instruction.source_registers()
        )
        self.destination_bits = destination.type.bits if destination is not None else None
        self.destination_is_pointer = destination is not None and isinstance(
            destination.type, PointerType
        )

    @classmethod
    def from_fields(
        cls,
        function_name: str,
        static_index: int,
        opcode: str,
        source_register_bits: Tuple[int, ...],
        destination_bits: Optional[int],
        destination_is_pointer: bool,
    ) -> "StaticInstructionMeta":
        """Rebuild a meta from its serialised fields (artifact-cache loads)."""
        meta = cls.__new__(cls)
        meta.function_name = function_name
        meta.static_index = static_index
        meta.opcode = opcode
        meta.source_register_bits = tuple(source_register_bits)
        meta.destination_bits = destination_bits
        meta.destination_is_pointer = destination_is_pointer
        return meta

    def to_fields(self) -> Tuple:
        """The serialisable field tuple :meth:`from_fields` round-trips."""
        return (
            self.function_name,
            self.static_index,
            self.opcode,
            self.source_register_bits,
            self.destination_bits,
            self.destination_is_pointer,
        )

    def record_at(self, dynamic_index: int) -> DynamicInstructionRecord:
        return DynamicInstructionRecord(
            dynamic_index=dynamic_index,
            function_name=self.function_name,
            static_index=self.static_index,
            opcode=self.opcode,
            source_register_bits=self.source_register_bits,
            destination_bits=self.destination_bits,
            destination_is_pointer=self.destination_is_pointer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StaticInstructionMeta {self.opcode} @{self.function_name}"
            f"#{self.static_index}>"
        )


def static_meta(instruction: Instruction) -> StaticInstructionMeta:
    """The (cached) static trace metadata of an instruction.

    The cache is invalidated when the function is re-finalised with a
    different static numbering (e.g. after instructions were inserted).
    """
    meta = getattr(instruction, "_static_meta", None)
    if meta is None or meta.static_index != instruction.static_index:
        meta = StaticInstructionMeta(instruction)
        instruction._static_meta = meta
    return meta


def _intern_metas(
    metas: Iterable[StaticInstructionMeta],
) -> Tuple[Tuple[StaticInstructionMeta, ...], array]:
    """Intern a per-tick meta stream into (table, per-tick id column)."""
    table: List[StaticInstructionMeta] = []
    ids_by_identity: dict = {}
    meta_ids = array("I")
    append_id = meta_ids.append
    for meta in metas:
        key = id(meta)
        meta_id = ids_by_identity.get(key)
        if meta_id is None:
            meta_id = ids_by_identity[key] = len(table)
            table.append(meta)
        append_id(meta_id)
    return tuple(table), meta_ids


class GoldenTrace:
    """The complete dynamic instruction stream of a fault-free run.

    Tick data lives in two columns — an interned :attr:`meta_table` of the
    distinct static metas and the per-tick :attr:`meta_ids` array — plus the
    run outputs.  The legacy per-tick record objects are materialised lazily.
    """

    def __init__(
        self,
        records: Optional[Sequence[DynamicInstructionRecord]] = None,
        output: Tuple = (),
        return_value=None,
        checkpoint_ticks: Sequence[int] = (),
        *,
        meta_table: Optional[Sequence[StaticInstructionMeta]] = None,
        meta_ids: Optional[array] = None,
    ) -> None:
        if meta_table is not None and meta_ids is not None:
            self.meta_table: Tuple[StaticInstructionMeta, ...] = tuple(meta_table)
            self.meta_ids: array = meta_ids
            self._records: Optional[List[DynamicInstructionRecord]] = None
        else:
            # Legacy construction from materialised records: derive the
            # columns by interning the records' static parts.
            records = list(records or [])
            table: List[StaticInstructionMeta] = []
            index_of: dict = {}
            ids = array("I")
            for record in records:
                key = (
                    record.function_name,
                    record.static_index,
                    record.opcode,
                    record.source_register_bits,
                    record.destination_bits,
                    record.destination_is_pointer,
                )
                meta_id = index_of.get(key)
                if meta_id is None:
                    meta_id = index_of[key] = len(table)
                    table.append(StaticInstructionMeta.from_fields(*key))
                ids.append(meta_id)
            self.meta_table = tuple(table)
            self.meta_ids = ids
            self._records = records
        #: The fault-free program output (golden output for SDC comparison).
        self.output = output
        #: The fault-free return value of the entry function.
        self.return_value = return_value
        #: Dynamic ticks at which VM checkpoints were captured during the
        #: profiling run (sorted ascending; empty when profiling ran without
        #: checkpointing).  The snapshots themselves live in the
        #: :class:`~repro.vm.snapshot.CheckpointStore` cached alongside this
        #: trace — this is the metadata fast-forward scheduling bisects over.
        self.checkpoint_ticks: Tuple[int, ...] = tuple(checkpoint_ticks)
        self._checkpoint_tick_column = array("q", self.checkpoint_ticks)
        # Candidate-record views are scanned once per *experiment* by the
        # sampling code, so they are computed lazily and cached.
        self._with_destination: Optional[List[DynamicInstructionRecord]] = None
        self._with_sources: Optional[List[DynamicInstructionRecord]] = None
        self._register_accesses: Optional[Tuple[RegisterAccess, ...]] = None

    @classmethod
    def from_columns(
        cls,
        meta_table: Sequence[StaticInstructionMeta],
        meta_ids: array,
        output: Tuple,
        return_value,
        checkpoint_ticks: Sequence[int] = (),
    ) -> "GoldenTrace":
        return cls(
            None,
            output,
            return_value,
            checkpoint_ticks,
            meta_table=meta_table,
            meta_ids=meta_ids,
        )

    # -- columnar access ---------------------------------------------------------
    def meta_at(self, index: int) -> StaticInstructionMeta:
        """The static meta executed at one dynamic tick (O(1) index math)."""
        return self.meta_table[self.meta_ids[index]]

    def iter_metas(self) -> Iterable[StaticInstructionMeta]:
        """Stream the per-tick static metas without materialising records."""
        table = self.meta_table
        for meta_id in self.meta_ids:
            yield table[meta_id]

    @property
    def records(self) -> List[DynamicInstructionRecord]:
        """The legacy per-tick record list, materialised lazily and cached."""
        if self._records is None:
            table = self.meta_table
            self._records = [
                table[meta_id].record_at(index)
                for index, meta_id in enumerate(self.meta_ids)
            ]
        return self._records

    def __len__(self) -> int:
        return len(self.meta_ids)

    def __getitem__(self, index: int) -> DynamicInstructionRecord:
        if self._records is not None:
            return self._records[index]
        if isinstance(index, slice):
            return self.records[index]
        position = range(len(self.meta_ids))[index]  # normalises negatives
        return self.meta_table[self.meta_ids[position]].record_at(position)

    def __iter__(self):
        return iter(self.records)

    @property
    def dynamic_instruction_count(self) -> int:
        return len(self.meta_ids)

    def records_with_destination(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-write times (cached)."""
        if self._with_destination is None:
            self._with_destination = [
                record for record in self.records if record.destination_bits is not None
            ]
        return self._with_destination

    def records_with_sources(self) -> List[DynamicInstructionRecord]:
        """Records usable as inject-on-read times (cached)."""
        if self._with_sources is None:
            self._with_sources = [
                record for record in self.records if record.source_register_bits
            ]
        return self._with_sources

    def _access_patterns(self) -> List[Tuple[Tuple[int, int, int], ...]]:
        """(slot-or--1, bits, kind-byte) expansion per distinct meta.

        The expansion pattern (which slots are read, whether a destination is
        written, each access's width) is a pure function of the static meta,
        so it is computed once per distinct meta and replayed per tick —
        index arithmetic over the meta-id column instead of per-record
        attribute walks.
        """
        patterns: List[Tuple[Tuple[int, int, int], ...]] = []
        for meta in self.meta_table:
            pattern: List[Tuple[int, int, int]] = []
            for slot, bits in enumerate(meta.source_register_bits):
                if bits:
                    pattern.append((slot, bits, ord("r")))
            if meta.destination_bits:
                pattern.append((-1, meta.destination_bits, ord("w")))
            patterns.append(tuple(pattern))
        return patterns

    def access_columns(self) -> AccessColumns:
        """Every register access of the run as flat parallel columns.

        Derived on demand (not cached — the namedtuple stream of
        :meth:`iter_register_accesses` is the long-lived representation;
        holding both would double the resident expansion).
        """
        patterns = self._access_patterns()
        ticks = array("q")
        slots = array("i")
        bit_widths = array("H")
        kinds = bytearray()
        meta_ids_out = array("I")
        for tick, meta_id in enumerate(self.meta_ids):
            for slot, bits, kind in patterns[meta_id]:
                ticks.append(tick)
                slots.append(slot)
                bit_widths.append(bits)
                kinds.append(kind)
                meta_ids_out.append(meta_id)
        return AccessColumns(ticks, slots, bit_widths, kinds, meta_ids_out)

    def iter_register_accesses(self) -> Tuple[RegisterAccess, ...]:
        """Every register access of the run, in execution order (cached).

        This is the one walk both the injection techniques and the
        error-space enumerator (:mod:`repro.errorspace`) derive their
        candidate spaces from: each *read* access is an inject-on-read
        candidate, each *write* access an inject-on-write candidate.  Built
        by replaying the per-meta expansion patterns over the tick column.
        """
        if self._register_accesses is None:
            patterns = self._access_patterns()
            read = ord("r")
            table = self.meta_table
            accesses: List[RegisterAccess] = []
            for tick, meta_id in enumerate(self.meta_ids):
                for slot, bits, kind in patterns[meta_id]:
                    accesses.append(
                        RegisterAccess(
                            tick,
                            "read" if kind == read else "write",
                            slot if slot >= 0 else None,
                            bits,
                            table[meta_id].opcode,
                        )
                    )
            self._register_accesses = tuple(accesses)
        return self._register_accesses

    def latest_checkpoint_at(self, tick: int) -> Optional[int]:
        """The largest checkpoint tick ``<= tick``, or None (O(log n)).

        Fast-forward execution restores the snapshot captured at this tick
        and replays only the remaining suffix of the run.
        """
        column = self._checkpoint_tick_column
        index = bisect_right(column, tick) - 1
        return column[index] if index >= 0 else None

    def pointer_destination_fraction(self) -> float:
        """Fraction of destination registers that hold addresses."""
        with_destination = self.records_with_destination()
        if not with_destination:
            return 0.0
        pointer_count = sum(1 for record in with_destination if record.destination_is_pointer)
        return pointer_count / len(with_destination)


class TraceCollector:
    """Collects the dynamic instruction stream during execution.

    Passed to the interpreter as the ``trace_collector`` argument.  The
    decoded execution path appends pre-built :class:`StaticInstructionMeta`
    objects through the bound :attr:`append_meta` fast path; the reference
    interpreter calls the legacy :meth:`record` signature.  Both produce
    bit-identical golden traces.  The collected meta stream is interned into
    the trace's columnar form at :meth:`build` time, so the per-tick hot
    path stays a single list append.
    """

    __slots__ = ("_metas", "append_meta")

    def __init__(self) -> None:
        self._metas: List[StaticInstructionMeta] = []
        #: Bound-method fast path used by the decoded interpreter's tick.
        self.append_meta = self._metas.append

    def record(self, dynamic_index: int, instruction: Instruction) -> None:
        """Record one executed instruction (legacy per-instruction signature).

        ``dynamic_index`` is implied by the append position — the interpreter
        calls this exactly once per tick, starting at zero.
        """
        self._metas.append(static_meta(instruction))

    def __len__(self) -> int:
        return len(self._metas)

    @property
    def records(self) -> List[DynamicInstructionRecord]:
        """The collected stream, materialised as full dynamic records."""
        return [meta.record_at(index) for index, meta in enumerate(self._metas)]

    def build(
        self, output: Tuple, return_value, checkpoint_ticks: Sequence[int] = ()
    ) -> GoldenTrace:
        """Finalise the collected stream into a columnar :class:`GoldenTrace`."""
        table, meta_ids = _intern_metas(self._metas)
        return GoldenTrace.from_columns(
            table, meta_ids, output, return_value, checkpoint_ticks
        )
