"""Simulated hardware exceptions raised by the MiniIR virtual machine.

The paper classifies an experiment as *Detected by Hardware Exceptions* when
the injected error makes the native binary hit an OS-visible exception:
segmentation faults, misaligned memory accesses, aborts, and arithmetic
errors such as division by zero (§III-E).  The VM raises the corresponding
:class:`HardwareFault` subclasses; the experiment driver catches them and
maps them onto the outcome taxonomy.

``HangDetected`` models LLFI's watchdog: the program failed to terminate
within a bound derived from the fault-free execution length.
"""

from __future__ import annotations

from typing import Optional


class HardwareFault(Exception):
    """Base class for all simulated hardware exceptions.

    Attributes
    ----------
    dynamic_index:
        The dynamic instruction index at which the fault was raised, or
        ``None`` if unknown.  Used by analyses that reason about how far a
        corrupted run progressed.
    """

    #: Short category label used in reports.
    category = "hardware-exception"

    def __init__(self, message: str, *, dynamic_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.dynamic_index = dynamic_index


class SegmentationFault(HardwareFault):
    """Access to an address outside every mapped memory segment."""

    category = "segmentation-fault"


class MisalignedAccessFault(HardwareFault):
    """Access whose address is not aligned to the accessed type's size."""

    category = "misaligned-access"


class ArithmeticFault(HardwareFault):
    """Integer division or remainder by zero (SIGFPE on real hardware)."""

    category = "arithmetic-fault"


class AbortFault(HardwareFault):
    """The program aborted itself (assert failure, explicit ``abort()``)."""

    category = "abort"


class InvalidJumpFault(HardwareFault):
    """Control transferred to a non-existent target.

    On real hardware a corrupted branch may land in unmapped or non-code
    memory and trap; the VM raises this when a corrupted value is used where
    a valid control-flow decision is impossible (for example a call frame
    that cannot be resolved).
    """

    category = "invalid-jump"


class HangDetected(Exception):
    """The watchdog limit on dynamic instructions was exceeded.

    Note: this is *not* a :class:`HardwareFault`; hangs form their own
    outcome category in the paper's classification.
    """

    def __init__(self, executed: int, limit: int) -> None:
        super().__init__(
            f"program exceeded the watchdog limit "
            f"({executed} dynamic instructions, limit {limit})"
        )
        self.executed = executed
        self.limit = limit
