"""Decode-once executable program representation (the VM hot path).

A fault-injection campaign executes the same workload thousands of times —
one golden profiling run plus one faulty run per experiment.  Walking the IR
tree on every run pays for ``isinstance`` dispatch, type-keyed handler
lookup, ``id(register)`` frame hashing and phi scans on every executed
instruction.  This module performs that work **once**, lowering a finalized
:class:`~repro.ir.module.Module` into a dense, slot-indexed form that the
driver in :mod:`repro.vm.interpreter` executes directly:

* every virtual register of a function is numbered into a flat frame array
  (``frame[slot]`` instead of ``registers[id(register)]``);
* every operand is pre-resolved to a ``(kind, slot-or-constant, register,
  hook-slot, canonicalizer)`` record, so operand fetch is a tuple index;
* every instruction gets a pre-bound handler and pre-extracted immutable
  facts (wrap functions, strides, value types, intrinsic bindings), so the
  inner loop performs no ``isinstance`` checks at all;
* phi moves are precomputed per ``(predecessor, successor)`` control-flow
  edge;
* terminators are pre-classified into small integer kinds the driver
  switches on;
* each instruction carries its (shared) static trace metadata, so golden
  profiling is a single list append per tick.

Decoding is deterministic and side-effect free with respect to execution
state: a :class:`DecodedProgram` is immutable and shared — the golden-trace
profiling run and every injection run of a campaign execute the same decoded
artifact.  :func:`decode_module` caches the decoded form on the module and
re-decodes automatically when the module is structurally modified.

Behavioural contract: executing a decoded program is **bit-identical** to
the reference tree-walking interpreter — same golden traces, same hook call
sequence (and therefore identical injected faults for identical seeds), same
fault classification.  ``tests/test_decoded_differential.py`` enforces this
across every registry program.
"""

from __future__ import annotations

import math
import operator
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionSetupError
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import FloatType, IntType, IRType, PointerType, I64
from repro.ir.values import Constant, GlobalVariable, Value, VirtualRegister
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    ArithmeticFault,
    HardwareFault,
    MisalignedAccessFault,
    SegmentationFault,
)
from repro.vm.runtime import MATH_INTRINSICS, ProgramExit, RuntimeScalar, guard_float
from repro.vm.trace import StaticInstructionMeta, static_meta

_MASK64 = (1 << 64) - 1

#: Sentinel stored in frame slots that have not been written yet.
UNDEFINED = object()

# Operand kinds (first element of an operand record).
OP_CONSTANT = 0
OP_REGISTER = 1
OP_GLOBAL = 2

#: A pre-resolved operand: ``(kind, payload, register, hook_slot, canon)``.
#: ``payload`` is the constant value, the frame slot, or the global index;
#: ``hook_slot`` is the operand's index among the instruction's register
#: operands (the inject-on-read slot); ``canon`` re-canonicalizes a value the
#: read hook may have replaced.
OperandRecord = Tuple[int, object, Optional[VirtualRegister], int, Optional[Callable]]

# Instruction kinds the driver loop switches on.
KIND_SIMPLE = 0
KIND_BRANCH = 1
KIND_COND_BRANCH = 2
KIND_RETURN = 3
KIND_UNREACHABLE = 4


# --------------------------------------------------------------------------- canonicalizers
def _canon_f32(value: RuntimeScalar) -> float:
    # Round-trip through 32-bit storage so f32 arithmetic stays f32.
    return bitops.bits_to_float(bitops.float_to_bits(float(value), 32), 32)


def _canon_pointer(value: RuntimeScalar) -> int:
    return int(value) & _MASK64


def canonicalizer_for(ir_type: IRType) -> Callable[[RuntimeScalar], RuntimeScalar]:
    """A pre-bound equivalent of ``bitops.canonicalize(value, ir_type)``."""
    if isinstance(ir_type, IntType):
        wrap = ir_type.wrap

        def canon_int(value: RuntimeScalar, _wrap=wrap) -> int:
            return _wrap(int(value))

        return canon_int
    if isinstance(ir_type, FloatType):
        if ir_type.width == 32:
            return _canon_f32
        return float
    if isinstance(ir_type, PointerType):
        return _canon_pointer

    def canon_invalid(value: RuntimeScalar, _type=ir_type) -> RuntimeScalar:
        raise TypeError(f"cannot canonicalise a value of type {_type}")

    return canon_invalid


# --------------------------------------------------------------------------- decoded objects
class DecodedInstruction:
    """One pre-decoded instruction: handler plus pre-extracted facts.

    Instances are plain data — all execution state lives on the driver.  The
    object intentionally exposes ``opcode`` (and the originating ``result``
    register through ``result_reg``) so injection hooks written against the
    IR instruction interface keep working unchanged.
    """

    __slots__ = (
        "kind",
        "handler",
        "opcode",
        "operands",
        "dest_slot",
        "result_reg",
        "canon",
        "canon_in",
        "meta",
        "func_name",
        "operation",
        "to_unsigned",
        "nan_flag",
        "compare_fn",
        "element_size",
        "element_align",
        "value_type",
        "mem_size",
        "mem_align",
        "loader",
        "storer",
        "stride",
        "callee",
        "intrinsic_fn",
        "target",
        "if_true",
        "if_false",
        "ret_type",
        "error_message",
    )

    def __init__(self, opcode: str, meta: StaticInstructionMeta, func_name: str) -> None:
        self.kind = KIND_SIMPLE
        self.handler = None
        self.opcode = opcode
        self.operands: Tuple[OperandRecord, ...] = ()
        self.dest_slot = -1
        self.result_reg: Optional[VirtualRegister] = None
        self.canon: Optional[Callable] = None
        self.canon_in: Optional[Callable] = None
        self.meta = meta
        self.func_name = func_name
        self.operation = None
        self.to_unsigned = None
        self.nan_flag = False
        self.compare_fn = None
        self.element_size = 0
        self.element_align = 1
        self.value_type: Optional[IRType] = None
        self.mem_size = 0
        self.mem_align = 1
        self.loader = None
        self.storer = None
        self.stride = 0
        self.callee: Optional["DecodedFunction"] = None
        self.intrinsic_fn = None
        self.target: Optional["DecodedBlock"] = None
        self.if_true: Optional["DecodedBlock"] = None
        self.if_false: Optional["DecodedBlock"] = None
        self.ret_type: Optional[IRType] = None
        self.error_message: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedInstruction {self.opcode} @{self.func_name}>"


class DecodedBlock:
    """One basic block in decoded form."""

    __slots__ = (
        "index",
        "name",
        "code",
        "code_len",
        "phi_count",
        "phi_dins",
        "phi_edges",
    )

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        #: Non-phi instructions in order, terminator (pre-classified) last.
        self.code: Tuple[DecodedInstruction, ...] = ()
        self.code_len = 0
        self.phi_count = 0
        #: The block's phi instructions in order — the canonical walk order
        #: shared by the codegen backend (``phi_edges`` values may be
        #: truncated on failure edges, so they cannot serve as a walk source).
        self.phi_dins: Tuple[DecodedInstruction, ...] = ()
        #: pred block index (-1 = function entry) ->
        #: ``(moves, failure_message)``; ``moves`` is a tuple of
        #: ``(operand_record, phi_din)`` pairs, truncated before the first
        #: phi lacking an incoming value for that predecessor (in which case
        #: ``failure_message`` carries the fault text).
        self.phi_edges: Dict[int, Tuple[Tuple[Tuple[OperandRecord, DecodedInstruction], ...], Optional[str]]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedBlock %{self.name} ({self.code_len} instructions)>"


class DecodedFunction:
    """One function in decoded form: dense frame plus decoded blocks."""

    __slots__ = (
        "name",
        "frame_size",
        "arg_count",
        "arg_canons",
        "blocks",
        "entry",
        "return_type",
        "function",
    )

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self.frame_size = 0
        self.arg_count = len(function.arguments)
        #: Per-argument canonicalizers; argument ``i`` lives in frame slot ``i``.
        self.arg_canons: Tuple[Callable, ...] = ()
        self.blocks: Tuple[DecodedBlock, ...] = ()
        self.entry: Optional[DecodedBlock] = None
        self.return_type = function.return_type
        #: The IR function this was decoded from (debugging / introspection).
        self.function = function

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecodedFunction @{self.name} ({self.frame_size} slots, "
            f"{len(self.blocks)} blocks)>"
        )


class DecodedProgram:
    """A module lowered to its dense executable form.

    Immutable once built; the interpreter only reads it, so one decoded
    program is shared by the profiling run and every injection run of a
    campaign (and, under ``fork``-based pools, by every worker process).
    """

    def __init__(self, module: Module) -> None:
        if not module.is_finalized:
            module.finalize()
        self.module = module
        #: Globals in materialisation order; operand records index into this.
        self.global_variables: Tuple[GlobalVariable, ...] = tuple(module.globals.values())
        self._global_index: Dict[str, int] = {
            name: index for index, name in enumerate(module.globals)
        }
        # Two passes: create shells first so calls can bind their callee
        # directly to the decoded function, then decode the bodies.
        self.functions: Dict[str, DecodedFunction] = {
            name: DecodedFunction(function) for name, function in module.functions.items()
        }
        for name, function in module.functions.items():
            _FunctionDecoder(self, function, self.functions[name]).decode()
        self.signature = module_signature(module)

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def get_function(self, name: str) -> DecodedFunction:
        return self.functions[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedProgram {self.module.name}: {len(self.functions)} functions>"


def module_signature(module: Module) -> Tuple:
    """A cheap structural fingerprint used to validate the decode cache."""
    return (
        tuple(
            (name, function.instruction_count(), len(function.blocks))
            for name, function in module.functions.items()
        ),
        tuple(module.globals),
    )


def decode_module(module: Module) -> DecodedProgram:
    """Decode ``module``, reusing the cached decoded form when still valid.

    The cache lives on the module object itself and is invalidated whenever
    the module is structurally modified (adding blocks, appending or
    rewriting instructions marks the module non-finalized, which forces a
    re-decode here).
    """
    cached: Optional[DecodedProgram] = getattr(module, "_decoded_program", None)
    if (
        cached is not None
        and module.is_finalized
        and cached.signature == module_signature(module)
    ):
        return cached
    program = DecodedProgram(module)
    module._decoded_program = program
    return program


# --------------------------------------------------------------------------- read helpers
def _read_op(vm, frame, din: DecodedInstruction, op: OperandRecord):
    """Fetch one pre-resolved operand, applying the inject-on-read hook."""
    kind = op[0]
    if kind == OP_REGISTER:
        value = frame[op[1]]
        if value is UNDEFINED:
            raise ExecutionSetupError(
                f"register {op[2].short_name()} used before definition in "
                f"@{din.func_name}"
            )
        hook = vm.read_hook
        if hook is not None:
            value = hook(vm.dynamic_index - 1, din, op[3], op[2], value)
            value = op[4](value)
        return value
    if kind == OP_CONSTANT:
        return op[1]
    return vm.global_values[op[1]]


def _finish(vm, frame, din: DecodedInstruction, value):
    """Store an (already canonical) result, applying the write hook."""
    hook = vm.write_hook
    if hook is not None:
        value = hook(vm.dynamic_index - 1, din, din.result_reg, value)
        value = din.canon(value)
    frame[din.dest_slot] = value


# --------------------------------------------------------------------------- handlers
#
# The hottest handlers inline the no-hook register/constant operand fetch;
# undefined slots and active read hooks fall back to _read_op, which raises
# or applies the hook with identical semantics.


def _h_int_binop(vm, frame, din):
    op0, op1 = din.operands
    kind = op0[0]
    if kind == 1:
        lhs = frame[op0[1]]
        if lhs is UNDEFINED or vm.read_hook is not None:
            lhs = _read_op(vm, frame, din, op0)
    elif kind == 0:
        lhs = op0[1]
    else:
        lhs = vm.global_values[op0[1]]
    kind = op1[0]
    if kind == 1:
        rhs = frame[op1[1]]
        if rhs is UNDEFINED or vm.read_hook is not None:
            rhs = _read_op(vm, frame, din, op1)
    elif kind == 0:
        rhs = op1[1]
    else:
        rhs = vm.global_values[op1[1]]
    value = din.operation(vm, int(lhs), int(rhs))
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_float_binop(vm, frame, din):
    op0, op1 = din.operands
    kind = op0[0]
    if kind == 1:
        lhs = frame[op0[1]]
        if lhs is UNDEFINED or vm.read_hook is not None:
            lhs = _read_op(vm, frame, din, op0)
    else:
        lhs = op0[1] if kind == 0 else vm.global_values[op0[1]]
    kind = op1[0]
    if kind == 1:
        rhs = frame[op1[1]]
        if rhs is UNDEFINED or vm.read_hook is not None:
            rhs = _read_op(vm, frame, din, op1)
    else:
        rhs = op1[1] if kind == 0 else vm.global_values[op1[1]]
    value = din.canon(din.operation(float(lhs), float(rhs)))
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_compare(vm, frame, din):
    op0, op1 = din.operands
    kind = op0[0]
    if kind == 1:
        lhs = frame[op0[1]]
        if lhs is UNDEFINED or vm.read_hook is not None:
            lhs = _read_op(vm, frame, din, op0)
    else:
        lhs = op0[1] if kind == 0 else vm.global_values[op0[1]]
    kind = op1[0]
    if kind == 1:
        rhs = frame[op1[1]]
        if rhs is UNDEFINED or vm.read_hook is not None:
            rhs = _read_op(vm, frame, din, op1)
    else:
        rhs = op1[1] if kind == 0 else vm.global_values[op1[1]]
    to_unsigned = din.to_unsigned
    if to_unsigned is not None:
        lhs = to_unsigned(int(lhs))
        rhs = to_unsigned(int(rhs))
    if (isinstance(lhs, float) and math.isnan(lhs)) or (
        isinstance(rhs, float) and math.isnan(rhs)
    ):
        result = din.nan_flag
    else:
        result = din.compare_fn(lhs, rhs)
    value = 1 if result else 0
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_cast(vm, frame, din):
    value = din.canon(din.operation(_read_op(vm, frame, din, din.operands[0])))
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_alloca(vm, frame, din):
    count = int(_read_op(vm, frame, din, din.operands[0]))
    if count < 0 or count > (1 << 24):
        raise SegmentationFault(
            f"alloca of {count} elements exceeds the stack segment",
            dynamic_index=vm.dynamic_index,
        )
    size = din.element_size * count
    try:
        address = vm.memory.allocate("stack", size, din.element_align)
    except MemoryError as exhausted:
        raise SegmentationFault(
            f"stack exhausted: {exhausted}", dynamic_index=vm.dynamic_index
        ) from None
    if vm.write_hook is None:
        frame[din.dest_slot] = address
    else:
        _finish(vm, frame, din, address)


def _h_load(vm, frame, din):
    op0 = din.operands[0]
    if op0[0] == 1:
        address = frame[op0[1]]
        if address is UNDEFINED or vm.read_hook is not None:
            address = _read_op(vm, frame, din, op0)
    else:
        address = op0[1] if op0[0] == 0 else vm.global_values[op0[1]]
    address = int(address)
    align = din.mem_align
    if align > 1 and address % align:
        raise MisalignedAccessFault(
            f"access of {din.value_type} at 0x{address:x} is not "
            f"{align}-byte aligned",
            dynamic_index=vm.dynamic_index,
        )
    try:
        raw = vm.memory.read_bytes(address, din.mem_size)
    except HardwareFault as fault:
        fault.dynamic_index = vm.dynamic_index
        raise
    value = din.loader(raw)
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_load_generic(vm, frame, din):
    # Non-scalar load types take the reference path (and its TypeError).
    address = int(_read_op(vm, frame, din, din.operands[0]))
    try:
        value = vm.memory.read_scalar(address, din.value_type)
    except HardwareFault as fault:
        fault.dynamic_index = vm.dynamic_index
        raise
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_store(vm, frame, din):
    op0, op1 = din.operands
    kind = op0[0]
    if kind == 1:
        value = frame[op0[1]]
        if value is UNDEFINED or vm.read_hook is not None:
            value = _read_op(vm, frame, din, op0)
    else:
        value = op0[1] if kind == 0 else vm.global_values[op0[1]]
    kind = op1[0]
    if kind == 1:
        address = frame[op1[1]]
        if address is UNDEFINED or vm.read_hook is not None:
            address = _read_op(vm, frame, din, op1)
    else:
        address = op1[1] if kind == 0 else vm.global_values[op1[1]]
    address = int(address)
    align = din.mem_align
    if align > 1 and address % align:
        raise MisalignedAccessFault(
            f"access of {din.value_type} at 0x{address:x} is not "
            f"{align}-byte aligned",
            dynamic_index=vm.dynamic_index,
        )
    try:
        vm.memory.write_bytes(address, din.storer(value))
    except HardwareFault as fault:
        fault.dynamic_index = vm.dynamic_index
        raise


def _h_store_generic(vm, frame, din):
    value = _read_op(vm, frame, din, din.operands[0])
    address = int(_read_op(vm, frame, din, din.operands[1]))
    try:
        vm.memory.write_scalar(address, value, din.value_type)
    except HardwareFault as fault:
        fault.dynamic_index = vm.dynamic_index
        raise


def _h_gep(vm, frame, din):
    op0, op1 = din.operands
    kind = op0[0]
    if kind == 1:
        base = frame[op0[1]]
        if base is UNDEFINED or vm.read_hook is not None:
            base = _read_op(vm, frame, din, op0)
    else:
        base = op0[1] if kind == 0 else vm.global_values[op0[1]]
    kind = op1[0]
    if kind == 1:
        index = frame[op1[1]]
        if index is UNDEFINED or vm.read_hook is not None:
            index = _read_op(vm, frame, din, op1)
    else:
        index = op1[1] if kind == 0 else vm.global_values[op1[1]]
    address = (int(base) + int(index) * din.stride) & _MASK64
    if vm.write_hook is None:
        frame[din.dest_slot] = address
    else:
        _finish(vm, frame, din, address)


def _h_select(vm, frame, din):
    condition = _read_op(vm, frame, din, din.operands[0])
    value = din.canon(
        _read_op(vm, frame, din, din.operands[1 if condition else 2])
    )
    if vm.write_hook is None:
        frame[din.dest_slot] = value
    else:
        _finish(vm, frame, din, value)


def _h_call(vm, frame, din):
    operands = din.operands
    args = [_read_op(vm, frame, din, op) for op in operands]
    callee = din.callee
    if callee is not None:
        value = vm._run_function(callee, args)
    else:
        value = din.intrinsic_fn(vm, args)
    if din.dest_slot >= 0:
        if value is None:
            value = 0
        _finish(vm, frame, din, din.canon(value))


def _h_call_unknown(vm, frame, din):
    # The reference semantics read (and hook) every argument before the
    # unknown-callee error is raised; keep that ordering.
    for op in din.operands:
        _read_op(vm, frame, din, op)
    raise ExecutionSetupError(din.error_message)


def _h_unsupported(vm, frame, din):
    raise ExecutionSetupError(din.error_message)


# --------------------------------------------------------------------------- operation factories
def _int_operation(opcode: str, type_: IRType):
    """Pre-bound integer/pointer arithmetic closure ``(vm, lhs, rhs) -> int``.

    Mirrors the reference interpreter's ``_int_binop`` exactly, including the
    C-style ``int(lhs / rhs)`` truncation and the fault messages.
    """
    if isinstance(type_, PointerType):
        width = 64
        wrap = _canon_pointer_wrap
        to_unsigned = _canon_pointer_wrap
    else:
        assert isinstance(type_, IntType)
        width = type_.width
        wrap = type_.wrap
        to_unsigned = type_.to_unsigned
    min_signed = -(1 << (width - 1))

    if opcode == "add":
        return lambda vm, lhs, rhs: wrap(lhs + rhs)
    if opcode == "sub":
        return lambda vm, lhs, rhs: wrap(lhs - rhs)
    if opcode == "mul":
        return lambda vm, lhs, rhs: wrap(lhs * rhs)
    if opcode == "and":
        return lambda vm, lhs, rhs: wrap(lhs & rhs)
    if opcode == "or":
        return lambda vm, lhs, rhs: wrap(lhs | rhs)
    if opcode == "xor":
        return lambda vm, lhs, rhs: wrap(lhs ^ rhs)
    if opcode == "shl":
        return lambda vm, lhs, rhs: wrap(to_unsigned(lhs) << (to_unsigned(rhs) % width))
    if opcode == "lshr":
        return lambda vm, lhs, rhs: wrap(to_unsigned(lhs) >> (to_unsigned(rhs) % width))
    if opcode == "ashr":
        return lambda vm, lhs, rhs: wrap(lhs >> (to_unsigned(rhs) % width))
    if opcode == "sdiv":

        def sdiv(vm, lhs, rhs):
            if rhs == 0:
                raise ArithmeticFault(
                    "integer sdiv by zero", dynamic_index=vm.dynamic_index
                )
            if width > 1 and lhs == min_signed and rhs == -1:
                raise ArithmeticFault(
                    "signed division overflow", dynamic_index=vm.dynamic_index
                )
            return wrap(int(lhs / rhs))  # C-style truncation toward zero

        return sdiv
    if opcode == "srem":

        def srem(vm, lhs, rhs):
            if rhs == 0:
                raise ArithmeticFault(
                    "integer srem by zero", dynamic_index=vm.dynamic_index
                )
            if width > 1 and lhs == min_signed and rhs == -1:
                raise ArithmeticFault(
                    "signed remainder overflow", dynamic_index=vm.dynamic_index
                )
            return wrap(lhs - int(lhs / rhs) * rhs)

        return srem
    if opcode == "udiv":

        def udiv(vm, lhs, rhs):
            if rhs == 0:
                raise ArithmeticFault(
                    "integer udiv by zero", dynamic_index=vm.dynamic_index
                )
            return wrap(to_unsigned(lhs) // to_unsigned(rhs))

        return udiv
    if opcode == "urem":

        def urem(vm, lhs, rhs):
            if rhs == 0:
                raise ArithmeticFault(
                    "integer urem by zero", dynamic_index=vm.dynamic_index
                )
            return wrap(to_unsigned(lhs) % to_unsigned(rhs))

        return urem

    def unhandled(vm, lhs, rhs, _opcode=opcode):
        raise ExecutionSetupError(f"unhandled integer opcode {_opcode}")

    return unhandled


def _canon_pointer_wrap(value: int) -> int:
    return value & _MASK64


def _float_operation(opcode: str):
    """Pre-bound float arithmetic closure ``(lhs, rhs) -> float``."""
    if opcode == "fadd":
        return lambda lhs, rhs: guard_float(lhs + rhs)
    if opcode == "fsub":
        return lambda lhs, rhs: guard_float(lhs - rhs)
    if opcode == "fmul":

        def fmul(lhs, rhs):
            try:
                return guard_float(lhs * rhs)
            except OverflowError:
                return math.inf if (lhs > 0) == (rhs > 0) else -math.inf

        return fmul
    if opcode == "fdiv":

        def fdiv(lhs, rhs):
            if rhs == 0.0:
                if lhs == 0.0 or math.isnan(lhs):
                    return math.nan
                return math.inf if lhs > 0 else -math.inf
            try:
                return guard_float(lhs / rhs)
            except OverflowError:
                return math.inf if (lhs > 0) == (rhs > 0) else -math.inf

        return fdiv
    if opcode == "frem":

        def frem(lhs, rhs):
            if rhs == 0.0:
                return math.nan
            return math.fmod(lhs, rhs)

        return frem

    def unhandled(lhs, rhs, _opcode=opcode):
        raise ExecutionSetupError(f"unhandled float opcode {_opcode}")

    return unhandled


_STRUCT_F64 = struct.Struct("<d")
_STRUCT_F32 = struct.Struct("<f")


def _scalar_loader(ir_type: IRType):
    """Pre-bound ``raw bytes -> runtime value`` decoder for one scalar type.

    Matches ``Memory.read_scalar`` bit for bit; returns ``None`` for
    non-scalar types (which keep the generic path and its TypeError).
    """
    if isinstance(ir_type, IntType):
        wrap = ir_type.wrap
        return lambda raw: wrap(int.from_bytes(raw, "little"))
    if isinstance(ir_type, FloatType):
        unpack = _STRUCT_F64.unpack if ir_type.width == 64 else _STRUCT_F32.unpack
        return lambda raw: unpack(raw)[0]
    if isinstance(ir_type, PointerType):
        return lambda raw: int.from_bytes(raw, "little")
    return None


def _scalar_storer(ir_type: IRType):
    """Pre-bound ``runtime value -> raw bytes`` encoder for one scalar type.

    Matches ``Memory.write_scalar`` bit for bit; returns ``None`` for
    non-scalar types.
    """
    if isinstance(ir_type, IntType):
        to_unsigned = ir_type.to_unsigned
        size = ir_type.size_bytes()
        return lambda value: to_unsigned(int(value)).to_bytes(size, "little")
    if isinstance(ir_type, FloatType):
        pack = _STRUCT_F64.pack if ir_type.width == 64 else _STRUCT_F32.pack
        canon = canonicalizer_for(ir_type)
        return lambda value: pack(canon(value))
    if isinstance(ir_type, PointerType):
        return lambda value: (int(value) & _MASK64).to_bytes(8, "little")
    return None


_COMPARE_FUNCTIONS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "ult": operator.lt,
    "sle": operator.le,
    "ule": operator.le,
    "sgt": operator.gt,
    "ugt": operator.gt,
    "sge": operator.ge,
    "uge": operator.ge,
}


def _cast_operation(instruction: Cast):
    """Pre-bound cast closure ``(value) -> result`` (reference semantics)."""
    source_type = instruction.value.type
    target = instruction.to_type
    opcode = instruction.opcode

    if opcode in ("trunc", "zext", "sext"):
        assert isinstance(target, IntType)
        wrap = target.wrap
        if opcode == "zext" and isinstance(source_type, IntType):
            to_unsigned = source_type.to_unsigned
            return lambda value: wrap(int(to_unsigned(int(value))))
        return lambda value: wrap(int(value))
    if opcode == "sitofp":
        return lambda value: float(int(value))
    if opcode == "fptosi":
        assert isinstance(target, IntType)
        wrap = target.wrap
        max_value = target.max_value()
        min_value = target.min_value()

        def fptosi(value):
            fvalue = float(value)
            if math.isnan(fvalue):
                return 0
            if math.isinf(fvalue):
                return max_value if fvalue > 0 else min_value
            return wrap(int(fvalue))

        return fptosi
    if opcode in ("fpext", "fptrunc"):
        return float
    if opcode == "ptrtoint":
        assert isinstance(target, IntType)
        wrap = target.wrap
        return lambda value: wrap(int(value))
    if opcode == "inttoptr":
        return lambda value: int(value) & _MASK64
    if opcode == "bitcast":
        return lambda value: bitops.bits_to_value(
            bitops.value_to_bits(value, source_type), target
        )

    def unhandled(value, _opcode=opcode):  # pragma: no cover - guarded by Cast
        raise ExecutionSetupError(f"unhandled cast opcode {_opcode}")

    return unhandled


def _intrinsic_binding(name: str, instruction: Call):
    """Pre-bound intrinsic closure ``(vm, args) -> value``."""
    if name == "__output":
        operand_type = instruction.operands[0].type if instruction.operands else I64
        type_name = str(operand_type)

        def output(vm, args):
            vm.output.append((type_name, bitops.value_to_bits(args[0], operand_type)))
            return None

        return output
    if name == "__abort":

        def abort(vm, args):
            raise AbortFault("program called abort()", dynamic_index=vm.dynamic_index)

        return abort
    if name == "__assert":

        def assert_(vm, args):
            if not args[0]:
                raise AbortFault("assertion failed", dynamic_index=vm.dynamic_index)
            return None

        return assert_
    if name == "__exit":

        def exit_(vm, args):
            raise ProgramExit(int(args[0]) if args else 0)

        return exit_
    if name == "__malloc":

        def malloc(vm, args):
            size = int(args[0])
            if size < 0 or size > (1 << 26):
                raise SegmentationFault(
                    f"malloc of {size} bytes rejected", dynamic_index=vm.dynamic_index
                )
            try:
                return vm.memory.allocate("heap", size, 8)
            except MemoryError as exhausted:
                raise SegmentationFault(
                    f"heap exhausted: {exhausted}", dynamic_index=vm.dynamic_index
                ) from None

        return malloc
    if name in MATH_INTRINSICS:
        fn = MATH_INTRINSICS[name]

        def math_intrinsic(vm, args, _fn=fn):
            return _fn(*[float(a) for a in args])

        return math_intrinsic

    def unknown(vm, args, _name=name):
        raise ExecutionSetupError(f"unknown intrinsic {_name}")

    return unknown


# --------------------------------------------------------------------------- the decoder
class _FunctionDecoder:
    """Decodes one IR function into its :class:`DecodedFunction` shell."""

    def __init__(
        self, program: DecodedProgram, function: Function, decoded: DecodedFunction
    ) -> None:
        self.program = program
        self.function = function
        self.decoded = decoded
        self._slots: Dict[int, int] = {}
        self._slot_count = 0

    # -- register numbering -------------------------------------------------
    def _slot_of(self, register: VirtualRegister) -> int:
        key = id(register)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slot_count
            self._slots[key] = slot
            self._slot_count += 1
        return slot

    # -- operand resolution -------------------------------------------------
    def _operand(self, value: Value, hook_slot: int) -> OperandRecord:
        if isinstance(value, Constant):
            return (OP_CONSTANT, value.value, None, -1, None)
        if isinstance(value, GlobalVariable):
            return (OP_GLOBAL, self.program._global_index[value.name], None, -1, None)
        if isinstance(value, VirtualRegister):
            return (
                OP_REGISTER,
                self._slot_of(value),
                value,
                hook_slot,
                canonicalizer_for(value.type),
            )
        raise ExecutionSetupError(f"cannot evaluate operand {value!r}")

    def _operands(self, instruction: Instruction) -> Tuple[OperandRecord, ...]:
        records: List[OperandRecord] = []
        hook_slot = 0
        for value in instruction.operands:
            records.append(self._operand(value, hook_slot))
            if isinstance(value, VirtualRegister):
                hook_slot += 1
        return tuple(records)

    # -- instruction decoding -----------------------------------------------
    def _new_din(self, instruction: Instruction) -> DecodedInstruction:
        din = DecodedInstruction(
            instruction.opcode, static_meta(instruction), self.function.name
        )
        result = instruction.result
        if result is not None:
            din.dest_slot = self._slot_of(result)
            din.result_reg = result
            din.canon = canonicalizer_for(result.type)
        return din

    def _decode_instruction(
        self, instruction: Instruction, blocks_by_id: Dict[int, DecodedBlock]
    ) -> DecodedInstruction:
        din = self._new_din(instruction)

        if isinstance(instruction, Branch):
            din.kind = KIND_BRANCH
            din.target = blocks_by_id[id(instruction.target)]
            return din
        if isinstance(instruction, CondBranch):
            din.kind = KIND_COND_BRANCH
            din.operands = self._operands(instruction)
            din.if_true = blocks_by_id[id(instruction.if_true)]
            din.if_false = blocks_by_id[id(instruction.if_false)]
            return din
        if isinstance(instruction, Return):
            din.kind = KIND_RETURN
            din.operands = self._operands(instruction)
            din.ret_type = self.function.return_type
            return din
        if isinstance(instruction, Unreachable):
            din.kind = KIND_UNREACHABLE
            return din

        din.operands = self._operands(instruction)
        if isinstance(instruction, BinaryOp):
            result_type = instruction.result.type
            if isinstance(result_type, FloatType):
                din.handler = _h_float_binop
                din.operation = _float_operation(instruction.opcode)
            else:
                din.handler = _h_int_binop
                din.operation = _int_operation(instruction.opcode, result_type)
        elif isinstance(instruction, Compare):
            din.handler = _h_compare
            predicate = instruction.predicate
            if predicate in ("ult", "ule", "ugt", "uge") and not instruction.is_float:
                operand_type = instruction.lhs.type
                if isinstance(operand_type, IntType):
                    din.to_unsigned = operand_type.to_unsigned
            din.nan_flag = predicate == "ne"
            din.compare_fn = _COMPARE_FUNCTIONS[predicate]
        elif isinstance(instruction, Cast):
            din.handler = _h_cast
            din.operation = _cast_operation(instruction)
        elif isinstance(instruction, Alloca):
            din.handler = _h_alloca
            element = instruction.allocated_type
            din.element_size = element.size_bytes()
            din.element_align = max(element.alignment(), 1)
        elif isinstance(instruction, Load):
            value_type = instruction.result.type
            din.value_type = value_type
            din.loader = _scalar_loader(value_type)
            if din.loader is not None:
                din.handler = _h_load
                din.mem_size = value_type.size_bytes()
                din.mem_align = value_type.alignment()
            else:
                din.handler = _h_load_generic
        elif isinstance(instruction, Store):
            value_type = instruction.value.type
            din.value_type = value_type
            din.storer = _scalar_storer(value_type)
            if din.storer is not None:
                din.handler = _h_store
                din.mem_align = value_type.alignment()
            else:
                din.handler = _h_store_generic
        elif isinstance(instruction, GetElementPtr):
            din.handler = _h_gep
            din.stride = instruction.element_type.size_bytes()
        elif isinstance(instruction, Select):
            din.handler = _h_select
        elif isinstance(instruction, Call):
            self._decode_call(instruction, din)
        else:
            # Includes phi nodes not at the head of their block: the reference
            # interpreter has no straight-line handler for them either.
            din.handler = _h_unsupported
            din.error_message = (
                f"no interpreter handler for {type(instruction).__name__}"
            )
        return din

    def _decode_call(self, instruction: Call, din: DecodedInstruction) -> None:
        if instruction.is_intrinsic:
            din.handler = _h_call
            din.intrinsic_fn = _intrinsic_binding(instruction.callee_name, instruction)
            return
        name = instruction.callee_name
        callee = self.program.functions.get(name)
        if callee is None:
            din.handler = _h_call_unknown
            din.error_message = f"call to unknown function @{name}"
            return
        din.handler = _h_call
        din.callee = callee

    def _decode_phi(self, phi: Phi) -> DecodedInstruction:
        din = self._new_din(phi)
        din.canon_in = canonicalizer_for(phi.type)
        return din

    # -- whole-function decode ------------------------------------------------
    def decode(self) -> None:
        function = self.function
        decoded = self.decoded

        # Arguments occupy the first slots, in declaration order.
        for argument in function.arguments:
            self._slot_of(argument)
        decoded.arg_canons = tuple(
            canonicalizer_for(argument.type) for argument in function.arguments
        )

        shells = [DecodedBlock(index, block.name) for index, block in enumerate(function.blocks)]
        blocks_by_id = {
            id(block): shell for block, shell in zip(function.blocks, shells)
        }

        phi_lists: List[List[Tuple[Phi, DecodedInstruction]]] = []
        for block, shell in zip(function.blocks, shells):
            instructions = block.instructions
            position = 0
            phis: List[Tuple[Phi, DecodedInstruction]] = []
            while position < len(instructions) and isinstance(instructions[position], Phi):
                phi = instructions[position]
                phis.append((phi, self._decode_phi(phi)))
                position += 1
            shell.phi_count = len(phis)
            shell.phi_dins = tuple(din for _, din in phis)
            phi_lists.append(phis)
            code = tuple(
                self._decode_instruction(instruction, blocks_by_id)
                for instruction in instructions[position:]
            )
            shell.code = code
            shell.code_len = len(code)

        # Control-flow predecessors (needed for per-edge phi moves).
        predecessors: Dict[int, List[int]] = {shell.index: [] for shell in shells}
        for shell in shells:
            if not shell.code:
                continue
            terminator = shell.code[-1]
            if terminator.kind == KIND_BRANCH:
                targets = [terminator.target]
            elif terminator.kind == KIND_COND_BRANCH:
                targets = [terminator.if_true, terminator.if_false]
            else:
                targets = []
            for target in targets:
                if shell.index not in predecessors[target.index]:
                    predecessors[target.index].append(shell.index)

        blocks_by_index = {shell.index: shell for shell in shells}
        names_by_index = {
            shell.index: block.name for block, shell in zip(function.blocks, shells)
        }
        for block, shell, phis in zip(function.blocks, shells, phi_lists):
            if not phis:
                continue
            edge_keys = predecessors[shell.index] + [-1]
            for pred_index in edge_keys:
                pred_name = names_by_index.get(pred_index)
                moves: List[Tuple[OperandRecord, DecodedInstruction]] = []
                failure: Optional[str] = None
                for phi, phi_din in phis:
                    if pred_name is None or pred_name not in phi.incoming:
                        failure = (
                            f"phi {phi.describe()!r} has no incoming value for the "
                            f"executed predecessor"
                        )
                        break
                    moves.append((self._operand(phi.incoming[pred_name], -1), phi_din))
                shell.phi_edges[pred_index] = (tuple(moves), failure)

        decoded.blocks = tuple(shells)
        decoded.entry = shells[0] if shells else None
        decoded.frame_size = self._slot_count
