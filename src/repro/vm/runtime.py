"""Execution primitives shared by both MiniIR execution backends.

The VM has two interchangeable execution paths — the decode-once driver in
:mod:`repro.vm.interpreter` (the production hot path) and the tree-walking
:class:`~repro.vm.reference.ReferenceInterpreter` (the semantic oracle the
differential test suite compares against).  Everything both paths must agree
on, bit for bit, lives here:

* :class:`ExecutionLimits` / :class:`ExecutionResult` — run bounds and the
  classified outcome of one VM run;
* the ``__exit`` control-flow exception and the float-guard helpers;
* the math intrinsic table (``__sqrt``, ``__sin``, …) with the paper's
  "hardware returns a value instead of trapping" conventions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.vm.faults import HardwareFault

RuntimeScalar = Union[int, float]

#: One entry of the program output buffer: ``(type_name, bit_pattern)``.
OutputEntry = Tuple[str, int]


@dataclass(frozen=True)
class ExecutionLimits:
    """Bounds the VM enforces on a single run.

    ``max_dynamic_instructions`` is the hang watchdog.  LLFI sets its
    watchdog to one or two orders of magnitude above the fault-free run
    time; campaign code computes this limit from the golden trace via
    :meth:`for_golden_length`.
    """

    max_dynamic_instructions: int = 2_000_000
    max_call_depth: int = 256

    @classmethod
    def for_golden_length(cls, golden_length: int, multiplier: int = 20) -> "ExecutionLimits":
        """A watchdog sized relative to the fault-free dynamic length."""
        return cls(max_dynamic_instructions=max(1000, golden_length * multiplier))


@dataclass
class ExecutionResult:
    """Outcome of one VM run (fault-free or with injections)."""

    #: True when the program ran to completion (reached a top-level return
    #: or called ``__exit``); False when a fault or hang ended the run.
    completed: bool
    #: The program output buffer: a tuple of ``(type_name, bit_pattern)``.
    output: Tuple[OutputEntry, ...]
    #: Return value of the entry function (None if void or not completed).
    return_value: Optional[RuntimeScalar]
    #: Number of dynamic instructions executed.
    dynamic_instructions: int
    #: The simulated hardware exception that ended the run, if any.
    fault: Optional[HardwareFault] = None
    #: True when the watchdog fired.
    hang: bool = False

    @property
    def raised_hardware_exception(self) -> bool:
        return self.fault is not None

    @property
    def produced_output(self) -> bool:
        return len(self.output) > 0


class ProgramExit(Exception):
    """Internal control-flow exception for the ``__exit`` intrinsic."""

    def __init__(self, code: int) -> None:
        super().__init__(f"program exit with code {code}")
        self.code = code


def guard_float(value: float) -> float:
    """Clamp pathological float results (overflow to inf rather than raise)."""
    try:
        if value > 1e308:
            return math.inf
        if value < -1e308:
            return -math.inf
    except TypeError:  # pragma: no cover - defensive
        return value
    return value


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0 else math.nan


def _safe_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    return -math.inf if x == 0 else math.nan


def _safe_exp(x: float) -> float:
    try:
        return math.exp(min(x, 700.0))
    except OverflowError:  # pragma: no cover - min() prevents this
        return math.inf


def _safe_pow(x: float, y: float) -> float:
    try:
        result = math.pow(x, y)
    except (OverflowError, ValueError):
        return math.nan
    return guard_float(result)


def _safe_trig(fn: Callable[[float], float]) -> Callable[[float], float]:
    def wrapper(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        # Very large arguments lose all precision; hardware returns a value,
        # so reduce the argument instead of raising.
        if abs(x) > 1e15:
            x = math.fmod(x, 2 * math.pi)
        return fn(x)

    return wrapper


def _safe_asin(x: float) -> float:
    return math.asin(x) if -1.0 <= x <= 1.0 else math.nan


def _safe_acos(x: float) -> float:
    return math.acos(x) if -1.0 <= x <= 1.0 else math.nan


MATH_INTRINSICS: Dict[str, Callable[..., float]] = {
    "__sqrt": _safe_sqrt,
    "__sin": _safe_trig(math.sin),
    "__cos": _safe_trig(math.cos),
    "__tan": _safe_trig(math.tan),
    "__atan": math.atan,
    "__asin": _safe_asin,
    "__acos": _safe_acos,
    "__fabs": abs,
    "__floor": lambda x: math.floor(x) if math.isfinite(x) else x,
    "__ceil": lambda x: math.ceil(x) if math.isfinite(x) else x,
    "__log": _safe_log,
    "__exp": _safe_exp,
    "__pow": _safe_pow,
    "__fmin": min,
    "__fmax": max,
}
