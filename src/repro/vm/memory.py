"""Segmented byte-addressable memory for the MiniIR virtual machine.

The layout mimics a conventional process address space:

* a **null guard** region (low addresses) that is never mapped, so that
  corrupted pointers landing near zero raise a segmentation fault;
* a **globals** segment holding module-level variables;
* a **heap** segment used by the ``__malloc`` intrinsic;
* a **stack** segment used by ``alloca`` — grown per call frame with a bump
  pointer and released on return.

All accesses are checked:

* an address outside every mapped segment raises
  :class:`~repro.vm.faults.SegmentationFault`;
* an address that is not aligned to the accessed type's natural alignment
  raises :class:`~repro.vm.faults.MisalignedAccessFault` (the paper lists
  misaligned accesses as one of the hardware exceptions LLFI observes).

Scalars are stored little-endian in two's-complement / IEEE-754 formats, so
a bit flipped in a register and then stored round-trips exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.types import FloatType, IntType, IRType, PointerType
from repro.vm import bitops
from repro.vm.faults import MisalignedAccessFault, SegmentationFault

RuntimeScalar = Union[int, float]

#: Default segment layout (base address, size in bytes).
DEFAULT_LAYOUT: Dict[str, Tuple[int, int]] = {
    "globals": (0x0001_0000, 1 << 20),
    "heap": (0x1000_0000, 1 << 22),
    "stack": (0x7000_0000, 1 << 20),
}

#: Addresses below this value are never mapped (null-pointer guard).
NULL_GUARD_LIMIT = 0x1000


@dataclass
class MemorySegment:
    """A contiguous mapped region of the simulated address space."""

    name: str
    base: int
    size: int
    data: bytearray = field(default_factory=bytearray)
    #: Bump-allocation cursor (offset from ``base``).
    cursor: int = 0

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)
        if len(self.data) != self.size:
            raise ValueError(
                f"segment {self.name}: data length {len(self.data)} != size {self.size}"
            )

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def allocate(self, size: int, align: int = 8) -> int:
        """Bump-allocate ``size`` bytes aligned to ``align``; return address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        offset = self.cursor
        if align > 0 and offset % align:
            offset += align - (offset % align)
        if offset + size > self.size:
            raise MemoryError(
                f"segment {self.name} exhausted: "
                f"requested {size} bytes at offset {offset}, size {self.size}"
            )
        self.cursor = offset + size
        return self.base + offset


class Memory:
    """The simulated address space: a set of segments with checked access."""

    def __init__(self, layout: Optional[Dict[str, Tuple[int, int]]] = None) -> None:
        layout = dict(layout or DEFAULT_LAYOUT)
        self.segments: Dict[str, MemorySegment] = {}
        for name, (base, size) in layout.items():
            self.add_segment(name, base, size)
        #: Count of bytes read/written — used by analyses and tests.
        self.bytes_read = 0
        self.bytes_written = 0

    # -- segment management ---------------------------------------------------
    def add_segment(self, name: str, base: int, size: int) -> MemorySegment:
        if base < NULL_GUARD_LIMIT:
            raise ValueError(f"segment {name} overlaps the null guard region")
        for other in self.segments.values():
            if base < other.end and other.base < base + size:
                raise ValueError(f"segment {name} overlaps segment {other.name}")
        segment = MemorySegment(name, base, size)
        self.segments[name] = segment
        return segment

    def segment(self, name: str) -> MemorySegment:
        return self.segments[name]

    def find_segment(self, address: int, length: int = 1) -> Optional[MemorySegment]:
        # Inlined bounds check: this runs once per memory access and the
        # attribute-light form is measurably faster than contains()/end.
        end = address + length
        for segment in self.segments.values():
            base = segment.base
            if base <= address and end <= base + segment.size:
                return segment
        return None

    # -- allocation -----------------------------------------------------------
    def allocate(self, segment_name: str, size: int, align: int = 8) -> int:
        return self.segments[segment_name].allocate(size, align)

    def stack_mark(self) -> int:
        """Record the current stack cursor (call-frame entry)."""
        return self.segments["stack"].cursor

    def stack_release(self, mark: int) -> None:
        """Pop the stack back to a previously recorded mark (call-frame exit)."""
        self.segments["stack"].cursor = mark

    # -- raw byte access --------------------------------------------------------
    def _locate(self, address: int, length: int, *, write: bool) -> Tuple[MemorySegment, int]:
        if address < NULL_GUARD_LIMIT:
            raise SegmentationFault(
                f"{'write' if write else 'read'} of {length} bytes at "
                f"0x{address:x} hits the null guard page"
            )
        segment = self.find_segment(address, length)
        if segment is None:
            raise SegmentationFault(
                f"{'write' if write else 'read'} of {length} bytes at "
                f"0x{address:x} is outside every mapped segment"
            )
        return segment, address - segment.base

    def read_bytes(self, address: int, length: int) -> bytes:
        # Hot path: the locate loop is inlined (one call per memory access).
        if address >= NULL_GUARD_LIMIT:
            end = address + length
            for segment in self.segments.values():
                base = segment.base
                if base <= address and end <= base + segment.size:
                    self.bytes_read += length
                    offset = address - base
                    return bytes(segment.data[offset : offset + length])
        self._locate(address, length, write=False)
        raise AssertionError("unreachable")  # pragma: no cover

    def write_bytes(self, address: int, payload: bytes) -> None:
        length = len(payload)
        if address >= NULL_GUARD_LIMIT:
            end = address + length
            for segment in self.segments.values():
                base = segment.base
                if base <= address and end <= base + segment.size:
                    self.bytes_written += length
                    offset = address - base
                    segment.data[offset : offset + length] = payload
                    return
        self._locate(address, length, write=True)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- typed scalar access ------------------------------------------------------
    @staticmethod
    def _check_alignment(address: int, ir_type: IRType) -> None:
        align = ir_type.alignment()
        if align > 1 and address % align:
            raise MisalignedAccessFault(
                f"access of {ir_type} at 0x{address:x} is not {align}-byte aligned"
            )

    def read_scalar(self, address: int, ir_type: IRType) -> RuntimeScalar:
        """Read a typed scalar; raises on unmapped or misaligned addresses."""
        self._check_alignment(address, ir_type)
        size = ir_type.size_bytes()
        raw = self.read_bytes(address, size)
        if isinstance(ir_type, IntType):
            unsigned = int.from_bytes(raw, "little", signed=False)
            return ir_type.wrap(unsigned)
        if isinstance(ir_type, FloatType):
            fmt = "<d" if ir_type.width == 64 else "<f"
            return struct.unpack(fmt, raw)[0]
        if isinstance(ir_type, PointerType):
            return int.from_bytes(raw, "little", signed=False)
        raise TypeError(f"cannot read a scalar of type {ir_type}")

    def write_scalar(self, address: int, value: RuntimeScalar, ir_type: IRType) -> None:
        """Write a typed scalar; raises on unmapped or misaligned addresses."""
        self._check_alignment(address, ir_type)
        size = ir_type.size_bytes()
        if isinstance(ir_type, IntType):
            raw = ir_type.to_unsigned(int(value)).to_bytes(size, "little", signed=False)
        elif isinstance(ir_type, FloatType):
            fmt = "<d" if ir_type.width == 64 else "<f"
            raw = struct.pack(fmt, bitops.canonicalize(value, ir_type))
        elif isinstance(ir_type, PointerType):
            raw = (int(value) & ((1 << 64) - 1)).to_bytes(size, "little", signed=False)
        else:
            raise TypeError(f"cannot write a scalar of type {ir_type}")
        self.write_bytes(address, raw)

    # -- bulk helpers ----------------------------------------------------------------
    def write_array(self, address: int, values, element_type: IRType) -> None:
        """Write a sequence of scalars starting at ``address``."""
        stride = element_type.size_bytes()
        for index, value in enumerate(values):
            self.write_scalar(address + index * stride, value, element_type)

    def read_array(self, address: int, count: int, element_type: IRType) -> List[RuntimeScalar]:
        """Read ``count`` scalars starting at ``address``."""
        stride = element_type.size_bytes()
        return [
            self.read_scalar(address + index * stride, element_type) for index in range(count)
        ]
