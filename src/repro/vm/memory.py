"""Segmented byte-addressable memory for the MiniIR virtual machine.

The layout mimics a conventional process address space:

* a **null guard** region (low addresses) that is never mapped, so that
  corrupted pointers landing near zero raise a segmentation fault;
* a **globals** segment holding module-level variables;
* a **heap** segment used by the ``__malloc`` intrinsic;
* a **stack** segment used by ``alloca`` — grown per call frame with a bump
  pointer and released on return.

All accesses are checked:

* an address outside every mapped segment raises
  :class:`~repro.vm.faults.SegmentationFault`;
* an address that is not aligned to the accessed type's natural alignment
  raises :class:`~repro.vm.faults.MisalignedAccessFault` (the paper lists
  misaligned accesses as one of the hardware exceptions LLFI observes).

Scalars are stored little-endian in two's-complement / IEEE-754 formats, so
a bit flipped in a register and then stored round-trips exactly.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.types import FloatType, IntType, IRType, PointerType
from repro.vm import bitops
from repro.vm.faults import MisalignedAccessFault, SegmentationFault

RuntimeScalar = Union[int, float]

#: Default segment layout (base address, size in bytes).
DEFAULT_LAYOUT: Dict[str, Tuple[int, int]] = {
    "globals": (0x0001_0000, 1 << 20),
    "heap": (0x1000_0000, 1 << 22),
    "stack": (0x7000_0000, 1 << 20),
}

#: Addresses below this value are never mapped (null-pointer guard).
NULL_GUARD_LIMIT = 0x1000


@dataclass
class MemorySegment:
    """A contiguous mapped region of the simulated address space.

    The backing ``data`` buffer is grown lazily: it starts empty and is
    extended (with zeros, geometrically) the first time a write lands past
    its current length.  Reads beyond ``len(data)`` — untouched memory —
    return zeros, so the observable contents are identical to an eagerly
    zero-filled buffer while a fresh address space costs no multi-megabyte
    memset per interpreter (the dominant golden-run setup cost).
    """

    name: str
    base: int
    size: int
    data: bytearray = field(default_factory=bytearray)
    #: Bump-allocation cursor (offset from ``base``).
    cursor: int = 0
    #: Highest offset ever written through :meth:`Memory.write_bytes`.
    #: Bytes at or beyond this offset are guaranteed still zero, which lets
    #: snapshot restore re-zero only the dirty prefix of a segment.
    high_water: int = 0
    #: Lowest offset written since the last :meth:`Memory.restore_state`
    #: (``size`` = clean).  Together with ``high_water`` this brackets every
    #: byte that can differ from the last-restored state, so re-restoring
    #: the *same* state only rewrites ``[dirty_low, high_water)`` instead of
    #: the whole dirty prefix — the dominant cost when a campaign executes
    #: many short faulty suffixes from one shared checkpoint.  0 (fully
    #: dirty) until a first restore establishes a baseline.
    dirty_low: int = 0

    def __post_init__(self) -> None:
        if len(self.data) > self.size:
            raise ValueError(
                f"segment {self.name}: data length {len(self.data)} > size {self.size}"
            )

    def grow(self, length: int) -> None:
        """Extend the backing buffer with zeros to cover ``length`` bytes."""
        current = len(self.data)
        target = min(self.size, max(length, 2 * current, 4096))
        self.data.extend(bytes(target - current))

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def allocate(self, size: int, align: int = 8) -> int:
        """Bump-allocate ``size`` bytes aligned to ``align``; return address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        offset = self.cursor
        if align > 0 and offset % align:
            offset += align - (offset % align)
        if offset + size > self.size:
            raise MemoryError(
                f"segment {self.name} exhausted: "
                f"requested {size} bytes at offset {offset}, size {self.size}"
            )
        self.cursor = offset + size
        return self.base + offset


@dataclass(frozen=True)
class MemoryState:
    """A compact snapshot of one :class:`Memory`'s mutable state.

    Per segment only the dirty prefix (bytes up to the high-water mark,
    trailing zeros stripped) is stored, so snapshots of a mostly-empty
    address space cost kilobytes, not the mapped megabytes.  The payloads
    are immutable ``bytes``, so snapshots can be shared freely between
    restores (and between forked worker processes).
    """

    #: Per segment, in base-address order: ``(name, base, payload, cursor)``.
    segments: Tuple[Tuple[str, int, bytes, int], ...]
    bytes_read: int
    bytes_written: int


_ZERO_BLOCK = bytes(1 << 12)


def _zeros(length: int) -> memoryview:
    """A shared all-zero buffer of ``length`` bytes (grown on demand)."""
    global _ZERO_BLOCK
    if len(_ZERO_BLOCK) < length:
        _ZERO_BLOCK = bytes(length)
    return memoryview(_ZERO_BLOCK)[:length]


class Memory:
    """The simulated address space: a set of segments with checked access."""

    def __init__(self, layout: Optional[Dict[str, Tuple[int, int]]] = None) -> None:
        layout = dict(layout or DEFAULT_LAYOUT)
        self.segments: Dict[str, MemorySegment] = {}
        #: Segments sorted by base address plus the parallel base list the
        #: bisect-based address lookup searches.
        self._ordered: List[MemorySegment] = []
        self._bases: List[int] = []
        for name, (base, size) in layout.items():
            self.add_segment(name, base, size)
        #: One-entry lookup cache: accesses cluster heavily per segment, so
        #: the common case skips the bisect entirely.  The dummy (set when
        #: the layout is empty) contains no address and always defers to the
        #: slow path.
        if not self._ordered:
            self._hot = MemorySegment("<unmapped>", NULL_GUARD_LIMIT, 0)
        #: Count of bytes read/written — used by analyses and tests.
        self.bytes_read = 0
        self.bytes_written = 0
        #: The state most recently restored onto this memory (identity key
        #: for the delta-restore fast path in :meth:`restore_state`).
        self._last_restore: Optional[MemoryState] = None

    # -- segment management ---------------------------------------------------
    def add_segment(self, name: str, base: int, size: int) -> MemorySegment:
        if base < NULL_GUARD_LIMIT:
            raise ValueError(f"segment {name} overlaps the null guard region")
        for other in self.segments.values():
            if base < other.end and other.base < base + size:
                raise ValueError(f"segment {name} overlaps segment {other.name}")
        segment = MemorySegment(name, base, size)
        self.segments[name] = segment
        index = bisect_right(self._bases, base)
        self._ordered.insert(index, segment)
        self._bases.insert(index, base)
        self._hot = segment
        # A layout change invalidates the delta-restore baseline.
        self._last_restore = None
        return segment

    def segment(self, name: str) -> MemorySegment:
        return self.segments[name]

    def find_segment(self, address: int, length: int = 1) -> Optional[MemorySegment]:
        # Segments are disjoint and sorted by base, so the only candidate is
        # the one with the largest base <= address: one bisect, one check.
        index = bisect_right(self._bases, address) - 1
        if index >= 0:
            segment = self._ordered[index]
            if address + length <= segment.base + segment.size:
                return segment
        return None

    # -- snapshot support -------------------------------------------------------
    def capture_state(self) -> MemoryState:
        """Snapshot all mutable memory state (compact; see :class:`MemoryState`)."""
        segments = []
        for segment in self._ordered:
            payload = bytes(memoryview(segment.data)[: segment.high_water])
            segments.append(
                (segment.name, segment.base, payload.rstrip(b"\x00"), segment.cursor)
            )
        return MemoryState(tuple(segments), self.bytes_read, self.bytes_written)

    def restore_state(self, state: MemoryState) -> None:
        """Restore a previously captured state onto this (same-layout) memory.

        Every byte that may have changed since the capture — up to each
        segment's current high-water mark — is rewritten or re-zeroed, so the
        restored address space is bit-identical to the captured one even when
        a faulty run scribbled over it in between.

        Restoring the *same* state object that was restored last takes a
        delta path: only ``[dirty_low, high_water)`` — the bytes actually
        written since that restore — are undone.  Tick-sorted campaign chunks
        restore one shared checkpoint dozens of times in a row, and a short
        faulty suffix dirties a few hundred bytes of a multi-kilobyte image.
        """
        if state is self._last_restore:
            for (name, base, payload, cursor), segment in zip(
                state.segments, self._ordered
            ):
                low = segment.dirty_low
                high = segment.high_water
                length = len(payload)
                if low < high:
                    data = segment.data
                    if low < length:
                        stop = length if length < high else high
                        data[low:stop] = payload[low:stop]
                    if high > length:
                        start = length if length > low else low
                        data[start:high] = _zeros(high - start)
                segment.cursor = cursor
                segment.high_water = length
                segment.dirty_low = segment.size
            self.bytes_read = state.bytes_read
            self.bytes_written = state.bytes_written
            return
        if len(state.segments) != len(self._ordered):
            raise ValueError("memory layout mismatch: segment count differs")
        for (name, base, payload, cursor), segment in zip(state.segments, self._ordered):
            if segment.name != name or segment.base != base:
                raise ValueError(
                    f"memory layout mismatch: expected segment {name}@0x{base:x}, "
                    f"found {segment.name}@0x{segment.base:x}"
                )
            length = len(payload)
            data = segment.data
            if length:
                data[:length] = payload
            high = segment.high_water
            if high > length:
                data[length:high] = _zeros(high - length)
            segment.cursor = cursor
            segment.high_water = length
            segment.dirty_low = segment.size
        self.bytes_read = state.bytes_read
        self.bytes_written = state.bytes_written
        self._last_restore = state

    # -- allocation -----------------------------------------------------------
    def allocate(self, segment_name: str, size: int, align: int = 8) -> int:
        return self.segments[segment_name].allocate(size, align)

    def stack_mark(self) -> int:
        """Record the current stack cursor (call-frame entry)."""
        return self.segments["stack"].cursor

    def stack_release(self, mark: int) -> None:
        """Pop the stack back to a previously recorded mark (call-frame exit)."""
        self.segments["stack"].cursor = mark

    # -- raw byte access --------------------------------------------------------
    def _locate(self, address: int, length: int, *, write: bool) -> Tuple[MemorySegment, int]:
        if address < NULL_GUARD_LIMIT:
            raise SegmentationFault(
                f"{'write' if write else 'read'} of {length} bytes at "
                f"0x{address:x} hits the null guard page"
            )
        segment = self.find_segment(address, length)
        if segment is None:
            raise SegmentationFault(
                f"{'write' if write else 'read'} of {length} bytes at "
                f"0x{address:x} is outside every mapped segment"
            )
        return segment, address - segment.base

    def _relocate(self, address: int, length: int, *, write: bool) -> Tuple[MemorySegment, int]:
        # Cold path for read_bytes/write_bytes: refresh the one-entry segment
        # cache via bisect, or raise through _locate for unmapped accesses.
        if address >= NULL_GUARD_LIMIT:
            index = bisect_right(self._bases, address) - 1
            if index >= 0:
                segment = self._ordered[index]
                offset = address - segment.base
                if offset + length <= segment.size:
                    self._hot = segment
                    return segment, offset
        self._locate(address, length, write=write)
        raise AssertionError("unreachable")  # pragma: no cover

    def read_bytes(self, address: int, length: int) -> bytes:
        # Hot path: one-entry segment cache, no further calls.  Returns a
        # bytearray slice (callers only ever decode it) to skip a second copy.
        segment = self._hot
        offset = address - segment.base
        end = offset + length
        if offset < 0 or end > segment.size:
            segment, offset = self._relocate(address, length, write=False)
            end = offset + length
        self.bytes_read += length
        data = segment.data
        if end <= len(data):
            return data[offset:end]
        # Beyond the grown prefix: untouched memory reads as zeros.
        written = len(data) - offset
        if written <= 0:
            return bytes(length)
        return data[offset:] + bytes(length - written)

    def write_bytes(self, address: int, payload: bytes) -> None:
        length = len(payload)
        segment = self._hot
        offset = address - segment.base
        end = offset + length
        if offset < 0 or end > segment.size:
            segment, offset = self._relocate(address, length, write=True)
            end = offset + length
        self.bytes_written += length
        data = segment.data
        if end > len(data):
            segment.grow(end)
            data = segment.data
        data[offset:end] = payload
        if end > segment.high_water:
            segment.high_water = end
        if offset < segment.dirty_low:
            segment.dirty_low = offset

    # -- typed scalar access ------------------------------------------------------
    @staticmethod
    def _check_alignment(address: int, ir_type: IRType) -> None:
        align = ir_type.alignment()
        if align > 1 and address % align:
            raise MisalignedAccessFault(
                f"access of {ir_type} at 0x{address:x} is not {align}-byte aligned"
            )

    def read_scalar(self, address: int, ir_type: IRType) -> RuntimeScalar:
        """Read a typed scalar; raises on unmapped or misaligned addresses."""
        self._check_alignment(address, ir_type)
        size = ir_type.size_bytes()
        raw = self.read_bytes(address, size)
        if isinstance(ir_type, IntType):
            unsigned = int.from_bytes(raw, "little", signed=False)
            return ir_type.wrap(unsigned)
        if isinstance(ir_type, FloatType):
            fmt = "<d" if ir_type.width == 64 else "<f"
            return struct.unpack(fmt, raw)[0]
        if isinstance(ir_type, PointerType):
            return int.from_bytes(raw, "little", signed=False)
        raise TypeError(f"cannot read a scalar of type {ir_type}")

    def write_scalar(self, address: int, value: RuntimeScalar, ir_type: IRType) -> None:
        """Write a typed scalar; raises on unmapped or misaligned addresses."""
        self._check_alignment(address, ir_type)
        size = ir_type.size_bytes()
        if isinstance(ir_type, IntType):
            raw = ir_type.to_unsigned(int(value)).to_bytes(size, "little", signed=False)
        elif isinstance(ir_type, FloatType):
            fmt = "<d" if ir_type.width == 64 else "<f"
            raw = struct.pack(fmt, bitops.canonicalize(value, ir_type))
        elif isinstance(ir_type, PointerType):
            raw = (int(value) & ((1 << 64) - 1)).to_bytes(size, "little", signed=False)
        else:
            raise TypeError(f"cannot write a scalar of type {ir_type}")
        self.write_bytes(address, raw)

    # -- bulk helpers ----------------------------------------------------------------
    def write_array(self, address: int, values, element_type: IRType) -> None:
        """Write a sequence of scalars starting at ``address``."""
        stride = element_type.size_bytes()
        for index, value in enumerate(values):
            self.write_scalar(address + index * stride, value, element_type)

    def read_array(self, address: int, count: int, element_type: IRType) -> List[RuntimeScalar]:
        """Read ``count`` scalars starting at ``address``."""
        stride = element_type.size_bytes()
        return [
            self.read_scalar(address + index * stride, element_type) for index in range(count)
        ]
