"""The MiniIR virtual machine.

The VM executes MiniIR modules while exposing the hooks the fault injector
needs:

* every dynamic instruction has a monotonically increasing index (its
  *dynamic time*), used by LLFI-style time–location fault specifications;
* per-instruction *read* and *write* hooks can rewrite register values just
  before they are consumed and just after they are produced — these are the
  insertion points for inject-on-read and inject-on-write bit flips;
* a segmented memory model raises simulated hardware exceptions
  (segmentation fault, misaligned access, arithmetic fault, abort) so that
  fault outcomes can be classified exactly as in the paper;
* a dynamic-instruction watchdog detects hangs;
* program output is collected into an output buffer compared bit-wise
  against a golden run to detect silent data corruptions.

Execution has three backends sharing one semantic contract:
:class:`Interpreter` drives the decode-once representation of
:mod:`repro.vm.program` (registers numbered into flat frames, handlers
pre-bound, phi moves precomputed per edge),
:class:`~repro.vm.codegen.CompiledInterpreter` runs Python source transpiled
from that decoded form (the campaign hot path), and
:class:`~repro.vm.reference.ReferenceInterpreter` walks the IR tree directly
and serves as the oracle for the differential test suite.
"""

from repro.vm.faults import (
    AbortFault,
    ArithmeticFault,
    HangDetected,
    HardwareFault,
    InvalidJumpFault,
    MisalignedAccessFault,
    SegmentationFault,
)
from repro.vm.codegen import (
    CompiledCode,
    CompiledInterpreter,
    compile_module,
    persist_compiled_source,
)
from repro.vm.memory import Memory, MemorySegment, MemoryState
from repro.vm.program import (
    DecodedFunction,
    DecodedInstruction,
    DecodedProgram,
    decode_module,
)
from repro.vm.interpreter import (
    ExecutionLimits,
    ExecutionResult,
    Interpreter,
    ReadHook,
    WriteHook,
)
from repro.vm.reference import ReferenceInterpreter
from repro.vm.snapshot import (
    CheckpointingInterpreter,
    CheckpointStore,
    FrameSnapshot,
    VMSnapshot,
    capture_checkpoints,
    golden_with_checkpoints,
)
from repro.vm.trace import (
    DynamicInstructionRecord,
    GoldenTrace,
    StaticInstructionMeta,
    TraceCollector,
)

__all__ = [
    "AbortFault",
    "ArithmeticFault",
    "capture_checkpoints",
    "CheckpointingInterpreter",
    "CheckpointStore",
    "CompiledCode",
    "CompiledInterpreter",
    "compile_module",
    "persist_compiled_source",
    "DecodedFunction",
    "DecodedInstruction",
    "DecodedProgram",
    "decode_module",
    "DynamicInstructionRecord",
    "ExecutionLimits",
    "ExecutionResult",
    "FrameSnapshot",
    "GoldenTrace",
    "golden_with_checkpoints",
    "HangDetected",
    "HardwareFault",
    "Interpreter",
    "InvalidJumpFault",
    "Memory",
    "MemorySegment",
    "MemoryState",
    "MisalignedAccessFault",
    "ReadHook",
    "ReferenceInterpreter",
    "SegmentationFault",
    "StaticInstructionMeta",
    "TraceCollector",
    "VMSnapshot",
    "WriteHook",
]
