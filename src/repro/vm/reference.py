"""The reference tree-walking MiniIR interpreter.

This is the original, direct-over-the-IR execution engine: per-step
``isinstance`` dispatch, ``id(register)`` keyed frames, phi scans on block
entry.  The production hot path is the decode-once driver in
:mod:`repro.vm.interpreter`; this class is retained as the **semantic
oracle** — the differential test suite executes every registry program
through both backends and asserts bit-identical golden traces, injection
records and campaign results.

Semantics follow the "hardware-like" conventions the paper relies on:
integer arithmetic wraps at the register width, shifts mask their shift
amount, integer division by zero (and ``INT_MIN / -1``) raises a simulated
arithmetic fault, memory accesses are bounds- and alignment-checked, and a
dynamic-instruction watchdog detects hangs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionSetupError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Compare,
    CondBranch,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    I64,
)
from repro.ir.values import Constant, GlobalVariable, Value, VirtualRegister
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    ArithmeticFault,
    HangDetected,
    HardwareFault,
    InvalidJumpFault,
    SegmentationFault,
)
from repro.vm.memory import Memory
from repro.vm.runtime import (
    ExecutionLimits,
    ExecutionResult,
    MATH_INTRINSICS,
    ProgramExit,
    RuntimeScalar,
    guard_float,
)
from repro.vm.trace import TraceCollector


@dataclass
class _Frame:
    """One call frame: register file plus control-flow position."""

    function: Function
    registers: Dict[int, RuntimeScalar] = field(default_factory=dict)
    stack_mark: int = 0

    def set(self, register: VirtualRegister, value: RuntimeScalar) -> None:
        self.registers[id(register)] = value

    def get(self, register: VirtualRegister) -> RuntimeScalar:
        try:
            return self.registers[id(register)]
        except KeyError:
            raise ExecutionSetupError(
                f"register {register.short_name()} used before definition in "
                f"@{self.function.name}"
            ) from None


class ReferenceInterpreter:
    """Executes a MiniIR module by walking the IR tree (the semantic oracle)."""

    def __init__(
        self,
        module: Module,
        *,
        entry: str = "main",
        limits: Optional[ExecutionLimits] = None,
        read_hook=None,
        write_hook=None,
        trace_collector: Optional[TraceCollector] = None,
    ) -> None:
        if not module.has_function(entry):
            raise ExecutionSetupError(f"module {module.name} has no entry function @{entry}")
        if not module.is_finalized:
            module.finalize()
        self.module = module
        self.entry = entry
        self.limits = limits or ExecutionLimits()
        self.read_hook = read_hook
        self.write_hook = write_hook
        self.trace_collector = trace_collector

        self.memory = Memory()
        self.output: List[Tuple[str, int]] = []
        self.dynamic_index = 0
        self._call_depth = 0
        self._global_addresses: Dict[str, int] = {}
        self._materialise_globals()

        self._dispatch = {
            BinaryOp: self._exec_binop,
            Compare: self._exec_compare,
            Cast: self._exec_cast,
            Alloca: self._exec_alloca,
            Load: self._exec_load,
            Store: self._exec_store,
            GetElementPtr: self._exec_gep,
            Select: self._exec_select,
            Call: self._exec_call,
        }

    # ------------------------------------------------------------------ setup
    def _materialise_globals(self) -> None:
        for name, variable in self.module.globals.items():
            value_type = variable.value_type
            size = value_type.size_bytes()
            align = value_type.alignment()
            address = self.memory.allocate("globals", max(size, 1), max(align, 1))
            self._global_addresses[name] = address
            if variable.initializer:
                if isinstance(value_type, ArrayType):
                    self.memory.write_array(address, variable.initializer, value_type.element)
                else:
                    self.memory.write_scalar(address, variable.initializer[0], value_type)

    def global_address(self, name: str) -> int:
        """Address of a module global (useful in tests and program setup)."""
        return self._global_addresses[name]

    # ------------------------------------------------------------------ running
    def run(self, args: Sequence[RuntimeScalar] = ()) -> ExecutionResult:
        """Execute the entry function and classify how the run ended."""
        entry_function = self.module.get_function(self.entry)
        if len(args) != len(entry_function.arguments):
            raise ExecutionSetupError(
                f"entry @{self.entry} takes {len(entry_function.arguments)} arguments, "
                f"got {len(args)}"
            )
        try:
            return_value = self._run_function(entry_function, list(args))
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=return_value,
                dynamic_instructions=self.dynamic_index,
            )
        except ProgramExit as exit_request:
            return ExecutionResult(
                completed=True,
                output=tuple(self.output),
                return_value=exit_request.code,
                dynamic_instructions=self.dynamic_index,
            )
        except HardwareFault as fault:
            if fault.dynamic_index is None:
                fault.dynamic_index = self.dynamic_index
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                fault=fault,
            )
        except HangDetected:
            return ExecutionResult(
                completed=False,
                output=tuple(self.output),
                return_value=None,
                dynamic_instructions=self.dynamic_index,
                hang=True,
            )

    # ------------------------------------------------------------------ frames
    def _run_function(
        self, function: Function, args: List[RuntimeScalar]
    ) -> Optional[RuntimeScalar]:
        if self._call_depth >= self.limits.max_call_depth:
            raise SegmentationFault(
                f"call depth exceeded {self.limits.max_call_depth} (stack overflow)",
                dynamic_index=self.dynamic_index,
            )
        self._call_depth += 1
        frame = _Frame(function=function, stack_mark=self.memory.stack_mark())
        try:
            for formal, actual in zip(function.arguments, args):
                frame.set(formal, bitops.canonicalize(actual, formal.type))
            return self._run_blocks(frame)
        finally:
            self.memory.stack_release(frame.stack_mark)
            self._call_depth -= 1

    def _run_blocks(self, frame: _Frame) -> Optional[RuntimeScalar]:
        block = frame.function.entry_block
        previous_block: Optional[BasicBlock] = None
        limit = self.limits.max_dynamic_instructions

        while True:
            # Phi nodes are evaluated together on block entry, reading the
            # values that were live at the end of the predecessor block.
            phi_updates: List[Tuple[Phi, RuntimeScalar]] = []
            position = 0
            instructions = block.instructions
            while position < len(instructions) and isinstance(instructions[position], Phi):
                phi = instructions[position]
                if previous_block is None or previous_block.name not in phi.incoming:
                    raise InvalidJumpFault(
                        f"phi {phi.describe()!r} has no incoming value for the "
                        f"executed predecessor",
                        dynamic_index=self.dynamic_index,
                    )
                incoming = phi.incoming[previous_block.name]
                value = self._value_of(frame, incoming)
                phi_updates.append((phi, bitops.canonicalize(value, phi.type)))
                self._tick(phi)
                position += 1
            for phi, value in phi_updates:
                value = self._apply_write_hook(phi, phi.result, value)
                frame.set(phi.result, value)

            while position < len(instructions):
                instruction = instructions[position]
                if self.dynamic_index >= limit:
                    raise HangDetected(self.dynamic_index, limit)
                self._tick(instruction)

                if isinstance(instruction, Branch):
                    previous_block, block = block, instruction.target
                    break
                if isinstance(instruction, CondBranch):
                    condition = self._read_operand(frame, instruction, 0)
                    target = instruction.if_true if condition else instruction.if_false
                    previous_block, block = block, target
                    break
                if isinstance(instruction, Return):
                    if instruction.value is None:
                        return None
                    value = self._read_operand(frame, instruction, 0)
                    return bitops.canonicalize(value, frame.function.return_type)
                if isinstance(instruction, Unreachable):
                    raise AbortFault(
                        "executed an unreachable instruction",
                        dynamic_index=self.dynamic_index,
                    )

                handler = self._dispatch.get(type(instruction))
                if handler is None:
                    raise ExecutionSetupError(
                        f"no interpreter handler for {type(instruction).__name__}"
                    )
                handler(frame, instruction)
                position += 1
            else:
                # Fell off the end of a block without a terminator: treat as a
                # wild jump (cannot happen for verified IR, can happen if a
                # fault corrupts control state).
                raise InvalidJumpFault(
                    f"control fell off the end of block %{block.name}",
                    dynamic_index=self.dynamic_index,
                )

    # ------------------------------------------------------------------ helpers
    def _tick(self, instruction: Instruction) -> None:
        if self.trace_collector is not None:
            self.trace_collector.record(self.dynamic_index, instruction)
        self.dynamic_index += 1

    def _value_of(self, frame: _Frame, operand: Value) -> RuntimeScalar:
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, GlobalVariable):
            return self._global_addresses[operand.name]
        if isinstance(operand, VirtualRegister):
            return frame.get(operand)
        raise ExecutionSetupError(f"cannot evaluate operand {operand!r}")

    def _read_operand(self, frame: _Frame, instruction: Instruction, index: int) -> RuntimeScalar:
        """Fetch operand ``index``, applying the inject-on-read hook."""
        operand = instruction.operands[index]
        value = self._value_of(frame, operand)
        if (
            self.read_hook is not None
            and isinstance(operand, VirtualRegister)
            and not isinstance(operand, GlobalVariable)
        ):
            slot = 0
            for previous in instruction.operands[:index]:
                if isinstance(previous, VirtualRegister) and not isinstance(
                    previous, GlobalVariable
                ):
                    slot += 1
            value = self.read_hook(self.dynamic_index - 1, instruction, slot, operand, value)
            value = bitops.canonicalize(value, operand.type)
        return value

    def _apply_write_hook(
        self, instruction: Instruction, register: VirtualRegister, value: RuntimeScalar
    ) -> RuntimeScalar:
        if self.write_hook is not None:
            value = self.write_hook(self.dynamic_index - 1, instruction, register, value)
            value = bitops.canonicalize(value, register.type)
        return value

    def _write_result(
        self, frame: _Frame, instruction: Instruction, value: RuntimeScalar
    ) -> None:
        register = instruction.result
        if register is None:
            return
        value = bitops.canonicalize(value, register.type)
        value = self._apply_write_hook(instruction, register, value)
        frame.set(register, value)

    def _emit_output(self, value: RuntimeScalar, ir_type: IRType) -> None:
        self.output.append((str(ir_type), bitops.value_to_bits(value, ir_type)))

    # ------------------------------------------------------------------ instruction handlers
    def _exec_binop(self, frame: _Frame, instruction: BinaryOp) -> None:
        lhs = self._read_operand(frame, instruction, 0)
        rhs = self._read_operand(frame, instruction, 1)
        opcode = instruction.opcode
        result_type = instruction.result.type

        if isinstance(result_type, FloatType):
            value = self._float_binop(opcode, float(lhs), float(rhs))
        else:
            value = self._int_binop(opcode, int(lhs), int(rhs), result_type)
        self._write_result(frame, instruction, value)

    def _int_binop(self, opcode: str, lhs: int, rhs: int, type_: IRType) -> int:
        if isinstance(type_, PointerType):
            width = 64
            wrap = lambda v: v & ((1 << 64) - 1)  # noqa: E731 - tiny local helper
            to_unsigned = wrap
        else:
            assert isinstance(type_, IntType)
            width = type_.width
            wrap = type_.wrap
            to_unsigned = type_.to_unsigned

        if opcode == "add":
            return wrap(lhs + rhs)
        if opcode == "sub":
            return wrap(lhs - rhs)
        if opcode == "mul":
            return wrap(lhs * rhs)
        if opcode in ("sdiv", "srem", "udiv", "urem"):
            if rhs == 0:
                raise ArithmeticFault(
                    f"integer {opcode} by zero", dynamic_index=self.dynamic_index
                )
            if opcode == "sdiv":
                if width > 1 and lhs == -(1 << (width - 1)) and rhs == -1:
                    raise ArithmeticFault(
                        "signed division overflow", dynamic_index=self.dynamic_index
                    )
                return wrap(int(lhs / rhs))  # C-style truncation toward zero
            if opcode == "srem":
                if width > 1 and lhs == -(1 << (width - 1)) and rhs == -1:
                    raise ArithmeticFault(
                        "signed remainder overflow", dynamic_index=self.dynamic_index
                    )
                return wrap(lhs - int(lhs / rhs) * rhs)
            ulhs, urhs = to_unsigned(lhs), to_unsigned(rhs)
            if opcode == "udiv":
                return wrap(ulhs // urhs)
            return wrap(ulhs % urhs)
        if opcode == "and":
            return wrap(lhs & rhs)
        if opcode == "or":
            return wrap(lhs | rhs)
        if opcode == "xor":
            return wrap(lhs ^ rhs)
        if opcode in ("shl", "lshr", "ashr"):
            shift = to_unsigned(rhs) % max(width, 1)
            if opcode == "shl":
                return wrap(to_unsigned(lhs) << shift)
            if opcode == "lshr":
                return wrap(to_unsigned(lhs) >> shift)
            return wrap(lhs >> shift)
        raise ExecutionSetupError(f"unhandled integer opcode {opcode}")

    def _float_binop(self, opcode: str, lhs: float, rhs: float) -> float:
        if opcode == "fadd":
            return guard_float(lhs + rhs)
        if opcode == "fsub":
            return guard_float(lhs - rhs)
        if opcode == "fmul":
            try:
                return guard_float(lhs * rhs)
            except OverflowError:
                return math.inf if (lhs > 0) == (rhs > 0) else -math.inf
        if opcode == "fdiv":
            if rhs == 0.0:
                if lhs == 0.0 or math.isnan(lhs):
                    return math.nan
                return math.inf if lhs > 0 else -math.inf
            try:
                return guard_float(lhs / rhs)
            except OverflowError:
                return math.inf if (lhs > 0) == (rhs > 0) else -math.inf
        if opcode == "frem":
            if rhs == 0.0:
                return math.nan
            return math.fmod(lhs, rhs)
        raise ExecutionSetupError(f"unhandled float opcode {opcode}")

    def _exec_compare(self, frame: _Frame, instruction: Compare) -> None:
        lhs = self._read_operand(frame, instruction, 0)
        rhs = self._read_operand(frame, instruction, 1)
        predicate = instruction.predicate

        if predicate in ("ult", "ule", "ugt", "uge") and not instruction.is_float:
            operand_type = instruction.lhs.type
            if isinstance(operand_type, IntType):
                lhs = operand_type.to_unsigned(int(lhs))
                rhs = operand_type.to_unsigned(int(rhs))

        if math.isnan(lhs) if isinstance(lhs, float) else False:
            result = predicate == "ne"
        elif math.isnan(rhs) if isinstance(rhs, float) else False:
            result = predicate == "ne"
        elif predicate == "eq":
            result = lhs == rhs
        elif predicate == "ne":
            result = lhs != rhs
        elif predicate in ("slt", "ult"):
            result = lhs < rhs
        elif predicate in ("sle", "ule"):
            result = lhs <= rhs
        elif predicate in ("sgt", "ugt"):
            result = lhs > rhs
        elif predicate in ("sge", "uge"):
            result = lhs >= rhs
        else:  # pragma: no cover - guarded by Compare constructor
            raise ExecutionSetupError(f"unhandled predicate {predicate}")
        self._write_result(frame, instruction, 1 if result else 0)

    def _exec_cast(self, frame: _Frame, instruction: Cast) -> None:
        value = self._read_operand(frame, instruction, 0)
        source_type = instruction.value.type
        target = instruction.to_type
        opcode = instruction.opcode

        if opcode in ("trunc", "zext", "sext"):
            assert isinstance(target, IntType)
            if opcode == "zext" and isinstance(source_type, IntType):
                result: RuntimeScalar = source_type.to_unsigned(int(value))
            else:
                result = int(value)
            result = target.wrap(int(result))
        elif opcode == "sitofp":
            result = float(int(value))
        elif opcode == "fptosi":
            assert isinstance(target, IntType)
            fvalue = float(value)
            if math.isnan(fvalue):
                result = 0
            elif math.isinf(fvalue):
                result = target.max_value() if fvalue > 0 else target.min_value()
            else:
                result = target.wrap(int(fvalue))
        elif opcode in ("fpext", "fptrunc"):
            result = float(value)
        elif opcode == "ptrtoint":
            assert isinstance(target, IntType)
            result = target.wrap(int(value))
        elif opcode == "inttoptr":
            result = int(value) & ((1 << 64) - 1)
        elif opcode == "bitcast":
            result = bitops.bits_to_value(
                bitops.value_to_bits(value, source_type), target
            )
        else:  # pragma: no cover - guarded by Cast constructor
            raise ExecutionSetupError(f"unhandled cast opcode {opcode}")
        self._write_result(frame, instruction, result)

    def _exec_alloca(self, frame: _Frame, instruction: Alloca) -> None:
        count = int(self._read_operand(frame, instruction, 0))
        element = instruction.allocated_type
        if count < 0 or count > (1 << 24):
            raise SegmentationFault(
                f"alloca of {count} elements exceeds the stack segment",
                dynamic_index=self.dynamic_index,
            )
        size = element.size_bytes() * count
        try:
            address = self.memory.allocate("stack", size, max(element.alignment(), 1))
        except MemoryError as exhausted:
            raise SegmentationFault(
                f"stack exhausted: {exhausted}", dynamic_index=self.dynamic_index
            ) from None
        self._write_result(frame, instruction, address)

    def _exec_load(self, frame: _Frame, instruction: Load) -> None:
        address = int(self._read_operand(frame, instruction, 0))
        value_type = instruction.result.type
        try:
            value = self.memory.read_scalar(address, value_type)
        except HardwareFault as fault:
            fault.dynamic_index = self.dynamic_index
            raise
        self._write_result(frame, instruction, value)

    def _exec_store(self, frame: _Frame, instruction: Store) -> None:
        value = self._read_operand(frame, instruction, 0)
        address = int(self._read_operand(frame, instruction, 1))
        value_type = instruction.value.type
        try:
            self.memory.write_scalar(address, value, value_type)
        except HardwareFault as fault:
            fault.dynamic_index = self.dynamic_index
            raise

    def _exec_gep(self, frame: _Frame, instruction: GetElementPtr) -> None:
        base = int(self._read_operand(frame, instruction, 0))
        index = int(self._read_operand(frame, instruction, 1))
        stride = instruction.element_type.size_bytes()
        address = (base + index * stride) & ((1 << 64) - 1)
        self._write_result(frame, instruction, address)

    def _exec_select(self, frame: _Frame, instruction: Select) -> None:
        condition = self._read_operand(frame, instruction, 0)
        if condition:
            value = self._read_operand(frame, instruction, 1)
        else:
            value = self._read_operand(frame, instruction, 2)
        self._write_result(frame, instruction, value)

    # ------------------------------------------------------------------ calls & intrinsics
    def _exec_call(self, frame: _Frame, instruction: Call) -> None:
        args = [
            self._read_operand(frame, instruction, index)
            for index in range(len(instruction.operands))
        ]
        if instruction.is_intrinsic:
            value = self._call_intrinsic(instruction.callee_name, args, instruction)
        else:
            name = instruction.callee_name
            if not self.module.has_function(name):
                raise ExecutionSetupError(f"call to unknown function @{name}")
            value = self._run_function(self.module.get_function(name), args)
        if instruction.result is not None:
            if value is None:
                value = 0
            self._write_result(frame, instruction, value)

    def _call_intrinsic(
        self, name: str, args: List[RuntimeScalar], instruction: Call
    ) -> Optional[RuntimeScalar]:
        if name == "__output":
            operand_type = instruction.operands[0].type if instruction.operands else I64
            self._emit_output(args[0], operand_type)
            return None
        if name == "__abort":
            raise AbortFault("program called abort()", dynamic_index=self.dynamic_index)
        if name == "__assert":
            if not args[0]:
                raise AbortFault("assertion failed", dynamic_index=self.dynamic_index)
            return None
        if name == "__exit":
            raise ProgramExit(int(args[0]) if args else 0)
        if name == "__malloc":
            size = int(args[0])
            if size < 0 or size > (1 << 26):
                raise SegmentationFault(
                    f"malloc of {size} bytes rejected", dynamic_index=self.dynamic_index
                )
            try:
                return self.memory.allocate("heap", size, 8)
            except MemoryError as exhausted:
                raise SegmentationFault(
                    f"heap exhausted: {exhausted}", dynamic_index=self.dynamic_index
                ) from None
        if name in MATH_INTRINSICS:
            return MATH_INTRINSICS[name](*[float(a) for a in args])
        raise ExecutionSetupError(f"unknown intrinsic {name}")
