"""Typed bit manipulation for register values.

The fault injector needs to flip individual bits of a *typed* runtime value
exactly as LLFI does on the machine representation:

* integers are treated as two's-complement bit patterns of their declared
  width;
* floats are reinterpreted as IEEE-754 bit patterns (``f32``/``f64``) so a
  flipped exponent or sign bit has the realistic, often dramatic, effect;
* pointers are 64-bit addresses.

All helpers are pure functions over ``(value, ir_type)`` pairs so they are
easy to property-test (flip twice == identity, flipped bit differs, etc.).
"""

from __future__ import annotations

import math
import struct
from typing import Union

from repro.ir.types import FloatType, IntType, IRType, PointerType

RuntimeScalar = Union[int, float]


def bit_width(ir_type: IRType) -> int:
    """Number of addressable bits in a register of ``ir_type``."""
    if isinstance(ir_type, IntType):
        return ir_type.width
    if isinstance(ir_type, FloatType):
        return ir_type.width
    if isinstance(ir_type, PointerType):
        return 64
    raise TypeError(f"values of type {ir_type} are not bit-addressable")


def float_to_bits(value: float, width: int) -> int:
    """Reinterpret a float as its IEEE-754 bit pattern.

    Values outside the f32 range overflow to the correctly-signed infinity,
    matching what storing the value in a 32-bit register would produce.
    """
    if width == 64:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    if width == 32:
        try:
            return struct.unpack("<I", struct.pack("<f", value))[0]
        except OverflowError:
            infinity = math.inf if value > 0 else -math.inf
            return struct.unpack("<I", struct.pack("<f", infinity))[0]
    raise ValueError(f"unsupported float width {width}")


def bits_to_float(bits: int, width: int) -> float:
    """Reinterpret an IEEE-754 bit pattern as a float."""
    if width == 64:
        return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]
    if width == 32:
        return struct.unpack("<f", struct.pack("<I", bits & ((1 << 32) - 1)))[0]
    raise ValueError(f"unsupported float width {width}")


def value_to_bits(value: RuntimeScalar, ir_type: IRType) -> int:
    """Encode a runtime value as an unsigned bit pattern of the type's width."""
    if isinstance(ir_type, IntType):
        return ir_type.to_unsigned(int(value))
    if isinstance(ir_type, FloatType):
        return float_to_bits(float(value), ir_type.width)
    if isinstance(ir_type, PointerType):
        return int(value) & ((1 << 64) - 1)
    raise TypeError(f"values of type {ir_type} are not bit-addressable")


def bits_to_value(bits: int, ir_type: IRType) -> RuntimeScalar:
    """Decode an unsigned bit pattern back into the runtime representation."""
    if isinstance(ir_type, IntType):
        return ir_type.wrap(bits)
    if isinstance(ir_type, FloatType):
        return bits_to_float(bits, ir_type.width)
    if isinstance(ir_type, PointerType):
        return bits & ((1 << 64) - 1)
    raise TypeError(f"values of type {ir_type} are not bit-addressable")


def flip_bit(value: RuntimeScalar, ir_type: IRType, bit: int) -> RuntimeScalar:
    """Return ``value`` with bit ``bit`` (0 = least significant) flipped."""
    width = bit_width(ir_type)
    if not 0 <= bit < width:
        raise ValueError(f"bit index {bit} out of range for {ir_type} ({width} bits)")
    bits = value_to_bits(value, ir_type)
    return bits_to_value(bits ^ (1 << bit), ir_type)


def flip_bits(value: RuntimeScalar, ir_type: IRType, bits_to_flip) -> RuntimeScalar:
    """Flip several bit positions of the same register value at once."""
    result = value
    for bit in bits_to_flip:
        result = flip_bit(result, ir_type, bit)
    return result


def values_equal(a: RuntimeScalar, b: RuntimeScalar, ir_type: IRType) -> bool:
    """Bit-wise equality of two runtime values of the same type.

    Floats are compared on their bit patterns (so ``NaN == NaN`` here, and
    ``+0.0 != -0.0``) because the paper's SDC definition is a bit-wise
    comparison of program output.
    """
    return value_to_bits(a, ir_type) == value_to_bits(b, ir_type)


def canonicalize(value: RuntimeScalar, ir_type: IRType) -> RuntimeScalar:
    """Normalise a raw Python number into the type's runtime representation."""
    if isinstance(ir_type, IntType):
        return ir_type.wrap(int(value))
    if isinstance(ir_type, FloatType):
        value = float(value)
        if ir_type.width == 32:
            # Round-trip through 32-bit storage so f32 arithmetic stays f32.
            return bits_to_float(float_to_bits(value, 32), 32)
        return value
    if isinstance(ir_type, PointerType):
        return int(value) & ((1 << 64) - 1)
    raise TypeError(f"cannot canonicalise a value of type {ir_type}")


def is_finite(value: RuntimeScalar) -> bool:
    """True when a float value is finite (always true for ints)."""
    if isinstance(value, float):
        return math.isfinite(value)
    return True
