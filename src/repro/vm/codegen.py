"""IR→Python transpiler backend: compile each workload once, run specialized code.

The decoded backend (:mod:`repro.vm.program`) already resolves operands,
handlers and phi moves at decode time, but its driver still pays per-tick
dispatch: a kind switch, tuple-indexed operand fetches and one pre-bound
closure call per instruction.  This module removes that last layer by
*transpiling* a :class:`~repro.vm.program.DecodedProgram` to Python source —
one function per IR function:

* frame slots become local variables (``r0``, ``r1``, ...);
* operand fetches, integer wrap/compare/shift codecs, memory load/store
  codecs, GEP arithmetic and fault checks are inlined as direct expressions;
* phi moves are emitted as parallel assignments per CFG edge;
* block transfer is a ``while``-over-label loop dispatched through a binary
  tree over block indices.

Two variants are generated per program:

* **bare** — no tracing, no hooks: the golden-run hot path, paying zero
  instrumentation cost;
* **instrumented** — trace appends plus read/write hook call sites compiled
  in behind ``is None`` guards, bit-identical in sequence and arguments to
  the decoded driver (the injection hot path), and carrying the resume entry
  points used by checkpoint fast-forward.

Generated source references no live objects: every decode-time object it
needs (fault classes, :class:`DecodedInstruction` instances, canonicalizer
tuples) is passed positionally through a const table built by
:func:`build_consts` — a deterministic walk of the decoded program.  The
source text is therefore *portable*: it is persisted in the content-addressed
artifact cache (:mod:`repro.artifacts`, kind ``"codegen"``) keyed by the
module fingerprint, so spawned workers and repeated CLI invocations ``exec``
cached source instead of re-generating.  Generations are counted via
``CODEGEN_GENERATIONS`` and the ``REPRO_DERIVATION_LOG`` machinery.

The compiled artifact is cached on the module (``module._compiled_program``)
next to the decode cache and is invalidated together with it: validity is
pinned to the identity of the decoded program, and the structural-mutation
hooks (:meth:`Instruction._invalidate_static_views`) clear it explicitly.

Behavioural contract: bit-identical to the decoded driver — same golden
traces, same hook call sequences, same faults (messages included), same
``dynamic_index`` bookkeeping at every exit.  Enforced across every registry
program by ``tests/test_compiled_differential.py``.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionSetupError
from repro.ir.types import FloatType, IntType, PointerType
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    ArithmeticFault,
    HangDetected,
    HardwareFault,
    InvalidJumpFault,
    MisalignedAccessFault,
    SegmentationFault,
)
from repro.telemetry import metrics as telemetry_metrics
from repro.vm.interpreter import Interpreter, _PauseSignal
from repro.vm.program import (
    KIND_BRANCH,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SIMPLE,
    OP_CONSTANT,
    OP_GLOBAL,
    OP_REGISTER,
    UNDEFINED,
    DecodedProgram,
    _finish,
    _h_alloca,
    _h_call,
    _h_call_unknown,
    _h_cast,
    _h_compare,
    _h_float_binop,
    _h_gep,
    _h_int_binop,
    _h_load,
    _h_load_generic,
    _h_select,
    _h_store,
    _h_store_generic,
    _h_unsupported,
    _read_op,
    canonicalizer_for,
    decode_module,
)

_MASK64 = (1 << 64) - 1

#: Version tag of the generator, mixed into the artifact-cache key.  Bump
#: whenever the emitted source or the const-table walk changes shape.
CODEGEN_VERSION = "2"

#: Number of from-scratch source generations performed by this process.
#: Mirrors ``snapshot.GOLDEN_DERIVATIONS``: cache hits never increment it.
CODEGEN_GENERATIONS = 0


def _note_generation(module_name: str) -> None:
    """Count one source generation (telemetry counter + compat shims).

    Canonical count: ``repro_derivations_total{kind="codegen"}``.  The
    module-level mirror and the ``REPRO_DERIVATION_LOG`` append survive as
    shims for the cross-process cache tests.
    """
    global CODEGEN_GENERATIONS
    CODEGEN_GENERATIONS += 1
    telemetry_metrics.note_derivation("codegen", f"codegen:{module_name}")


# --------------------------------------------------------------------------- const table
#: Fixed header of every const table; the walk below appends to it.
_CONST_HEADER = (
    HangDetected,
    AbortFault,
    InvalidJumpFault,
    SegmentationFault,
    ArithmeticFault,
    MisalignedAccessFault,
    HardwareFault,
    ExecutionSetupError,
    UNDEFINED,
    _PauseSignal,
)


def build_consts(decoded: DecodedProgram) -> List:
    """The const table generated source is exec'd against.

    A deterministic walk of the decoded program: the fixed header, then per
    function its argument-canonicalizer tuple, its return canonicalizer, and
    every phi/code :class:`DecodedInstruction` in block order.  The generator
    assigns const indices by the *same* walk, which is what makes cached
    source re-executable against a freshly decoded program without any
    generation work.
    """
    consts: List = list(_CONST_HEADER)
    for dfunc in decoded.functions.values():
        consts.append(dfunc.arg_canons)
        consts.append(canonicalizer_for(dfunc.return_type))
        for block in dfunc.blocks:
            consts.extend(block.phi_dins)
            consts.extend(block.code)
    return consts


class _ConstIndex:
    """Const-table indices assigned by the :func:`build_consts` walk."""

    def __init__(self, decoded: DecodedProgram) -> None:
        self.din: Dict[int, int] = {}
        self.fn_args: Dict[str, int] = {}
        self.fn_ret: Dict[str, int] = {}
        index = len(_CONST_HEADER)
        for name, dfunc in decoded.functions.items():
            self.fn_args[name] = index
            index += 1
            self.fn_ret[name] = index
            index += 1
            for block in dfunc.blocks:
                for phi_din in block.phi_dins:
                    self.din[id(phi_din)] = index
                    index += 1
                for din in block.code:
                    self.din[id(din)] = index
                    index += 1
        self.size = index


# --------------------------------------------------------------------------- emitter
_COMPARE_SYMBOLS = {
    operator.eq: "==",
    operator.ne: "!=",
    operator.lt: "<",
    operator.le: "<=",
    operator.gt: ">",
    operator.ge: ">=",
}

#: ``_build`` prologue shared by both variants (fault classes by header
#: index, plus cheap builtin aliases that become closure cells).
_FIXED_PROLOGUE = (
    "E_HANG = C[0]",
    "E_ABORT = C[1]",
    "E_IJF = C[2]",
    "E_SEG = C[3]",
    "E_ARITH = C[4]",
    "E_MIS = C[5]",
    "E_HWF = C[6]",
    "E_ESE = C[7]",
    "FB = int.from_bytes",
    "FLT = float",
    'INF = float("inf")',
    'NINF = float("-inf")',
    'NAN = float("nan")',
    "E_PAUSE = C[9]",
)

_INT_BINOP_SYMBOLS = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "and": "&",
    "or": "|",
    "xor": "^",
}


class _Emitter:
    """Generates one source variant (bare or instrumented) for a program."""

    def __init__(self, decoded: DecodedProgram, instrumented: bool) -> None:
        self.decoded = decoded
        self.instrumented = instrumented
        self.cindex = _ConstIndex(decoded)
        self.fn_symbol = {
            name: f"f_{j}" for j, name in enumerate(decoded.functions)
        }
        self.lines: List[str] = []
        self._indent = 1
        #: alias name -> defining expression, in dependency order.
        self.aliases: Dict[str, str] = {}
        #: Bare variant: ticks accumulated since the last point where the
        #: local ``n`` was materialised (block entry or call return).  The
        #: instrumented variant keeps ``n`` exact per instruction (hooks and
        #: traces observe it), so its delta is always zero.
        self._dn = 0
        #: Set by :meth:`emit_function` for the function being emitted —
        #: needed by the bare variant's watchdog delegation.
        self._fn: Optional[Tuple[int, str, object]] = None
        #: Block / code position currently being emitted (pause-site labels).
        self._block = None
        self._pos = 0

    def cur(self) -> str:
        """Expression for the current dynamic index (post-tick)."""
        if self._dn:
            return f"n + {self._dn}"
        return "n"

    # -- low-level writing -------------------------------------------------
    def w(self, line: str) -> None:
        self.lines.append("    " * self._indent + line)

    def push(self) -> None:
        self._indent += 1

    def pop(self) -> None:
        self._indent -= 1

    def _capture(self, fn: Callable[[], None]) -> List[str]:
        saved_lines, saved_indent = self.lines, self._indent
        self.lines, self._indent = [], 0
        fn()
        captured = self.lines
        self.lines, self._indent = saved_lines, saved_indent
        return captured

    def _splice(self, captured: List[str], depth: int) -> None:
        prefix = "    " * depth
        for line in captured:
            self.lines.append(prefix + line)

    # -- aliases -----------------------------------------------------------
    def alias(self, name: str, expr: str) -> str:
        if name not in self.aliases:
            self.aliases[name] = expr
        return name

    def din_base(self, din) -> str:
        index = self.cindex.din[id(din)]
        return self.alias(f"D{index}", f"C[{index}]")

    def din_attr(self, din, attr: str, suffix: str) -> str:
        base = self.din_base(din)
        return self.alias(f"{base}_{suffix}", f"{base}.{attr}")

    def op_reg_alias(self, din, opi: int) -> str:
        base = self.din_base(din)
        return self.alias(f"{base}_r{opi}", f"{base}.operands[{opi}][2]")

    def op_canon_alias(self, din, opi: int) -> str:
        base = self.din_base(din)
        return self.alias(f"{base}_c{opi}", f"{base}.operands[{opi}][4]")

    # -- literals and operand reads ----------------------------------------
    @staticmethod
    def lit(value) -> str:
        if isinstance(value, float):
            if value != value:
                return "NAN"
            if value == float("inf"):
                return "INF"
            if value == float("-inf"):
                return "NINF"
        return repr(value)

    def read(self, din, opi: int, tmp: str) -> str:
        """Emit/return one operand read with decoded-driver hook semantics."""
        op = din.operands[opi]
        kind = op[0]
        if kind == OP_CONSTANT:
            return self.lit(op[1])
        if kind == OP_GLOBAL:
            return f"G[{op[1]}]"
        if not self.instrumented:
            return f"r{op[1]}"
        base = self.din_base(din)
        reg = self.op_reg_alias(din, opi)
        canon = self.op_canon_alias(din, opi)
        self.w(f"{tmp} = r{op[1]}")
        self.w("if RH is not None:")
        self.w(f"    {tmp} = {canon}(RH(n - 1, {base}, {op[3]}, {reg}, {tmp}))")
        return tmp

    def write_result(self, din, expr: str) -> None:
        """Store an (already canonical) result with write-hook semantics."""
        if not self.instrumented:
            self.w(f"r{din.dest_slot} = {expr}")
            return
        base = self.din_base(din)
        canon = self.din_attr(din, "canon", "cn")
        reg = self.din_attr(din, "result_reg", "rr")
        self.w(f"t = {expr}")
        self.w("if WH is not None:")
        self.w(f"    t = {canon}(WH(n - 1, {base}, {reg}, t))")
        self.w(f"r{din.dest_slot} = t")

    # -- integer codec helpers ---------------------------------------------
    def _bitwise_closed(self, din, width: int) -> bool:
        """True when a bitwise and/or/xor provably cannot leave the width.

        Bare-variant register reads hold canonically wrapped values by
        construction; constants are checked against the canonical range at
        generation time.  Hooked reads (instrumented variant) and globals may
        carry arbitrary ints, so they keep the full wrap.
        """
        if self.instrumented or width <= 1:
            return False
        low, high = -(1 << (width - 1)), 1 << (width - 1)
        for op in din.operands:
            kind = op[0]
            if kind == OP_REGISTER:
                continue
            if kind == OP_CONSTANT and low <= op[1] < high:
                continue
            return False
        return True

    @staticmethod
    def _int_shape(result_type) -> Tuple[int, int, bool]:
        """(width, mask, signed) of an int/pointer result type."""
        if isinstance(result_type, PointerType):
            return 64, _MASK64, False
        width = result_type.width
        return width, (1 << width) - 1, width > 1

    @staticmethod
    def _wrap_expr(expr: str, mask: int, signed: bool, width: int) -> str:
        if not signed:
            return f"({expr}) & {mask}"
        sign_bit = 1 << (width - 1)
        return f"((({expr}) & {mask}) ^ {sign_bit}) - {sign_bit}"

    def _frame_tuple(self) -> str:
        """Source tuple packing every frame slot (pause-site capture)."""
        dfunc = self._fn[2]
        if dfunc.frame_size == 0:
            return "()"
        regs = ", ".join(f"r{slot}" for slot in range(dfunc.frame_size))
        if dfunc.frame_size == 1:
            return f"({regs},)"
        return f"({regs})"

    # -- per-instruction emitters ------------------------------------------
    def emit_tick(self, din) -> None:
        if not self.instrumented:
            # The bare variant has no per-tick observers: the watchdog (and
            # any armed pause tick — ``limit`` hoists ``vm._stop``) is
            # enforced by the block-entry/post-call delegation checks, and
            # fault sites embed their tick offset as a literal.
            self._dn += 1
            return
        # ``limit`` is ``vm._stop`` = min(watchdog, pause tick); ``SC``
        # raises HangDetected or a pause signal carrying this exact site.
        self.w("if n >= limit:")
        self.w("    vm.dynamic_index = n")
        self.w(
            f"    SC(n, {self._block.index}, {self._pos}, {self._frame_tuple()})"
        )
        meta = self.din_attr(din, "meta", "m")
        self.w("if TR is not None:")
        self.w(f"    TR({meta})")
        self.w("n += 1")

    def emit_int_binop(self, din) -> None:
        a = self.read(din, 0, "x")
        b = self.read(din, 1, "y")
        width, mask, signed = self._int_shape(din.result_reg.type)
        opcode = din.opcode
        symbol = _INT_BINOP_SYMBOLS.get(opcode)
        if symbol is not None:
            expr = f"({a}) {symbol} ({b})"
            if opcode in ("and", "or", "xor") and self._bitwise_closed(din, width):
                # Bitwise ops on canonical two's-complement operands stay in
                # range: the wrap is a provable no-op, so skip it.
                pass
            else:
                expr = self._wrap_expr(expr, mask, signed, width)
        elif opcode == "shl":
            expr = self._wrap_expr(
                f"(({a}) & {mask}) << ((({b}) & {mask}) % {width})",
                mask, signed, width,
            )
        elif opcode == "lshr":
            expr = self._wrap_expr(
                f"(({a}) & {mask}) >> ((({b}) & {mask}) % {width})",
                mask, signed, width,
            )
        elif opcode == "ashr":
            expr = self._wrap_expr(
                f"({a}) >> ((({b}) & {mask}) % {width})", mask, signed, width
            )
        elif opcode in ("sdiv", "srem", "udiv", "urem"):
            cur = self.cur()
            self.w(f"if ({b}) == 0:")
            self.w(f"    vm.dynamic_index = {cur}")
            self.w(
                f"    raise E_ARITH('integer {opcode} by zero', "
                f"dynamic_index={cur})"
            )
            if opcode in ("sdiv", "srem") and width > 1:
                overflow = (
                    "signed division overflow"
                    if opcode == "sdiv"
                    else "signed remainder overflow"
                )
                self.w(f"if ({a}) == {-(1 << (width - 1))} and ({b}) == -1:")
                self.w(f"    vm.dynamic_index = {cur}")
                self.w(f"    raise E_ARITH({overflow!r}, dynamic_index={cur})")
            if opcode == "sdiv":
                body = f"int(({a}) / ({b}))"
            elif opcode == "srem":
                body = f"({a}) - int(({a}) / ({b})) * ({b})"
            elif opcode == "udiv":
                body = f"(({a}) & {mask}) // (({b}) & {mask})"
            else:
                body = f"(({a}) & {mask}) % (({b}) & {mask})"
            expr = self._wrap_expr(body, mask, signed, width)
        else:  # pragma: no cover - decoder guards opcodes
            op_alias = self.din_attr(din, "operation", "op")
            expr = f"{op_alias}(vm, {a}, {b})"
        self.write_result(din, expr)

    def emit_float_binop(self, din) -> None:
        a = self.read(din, 0, "x")
        b = self.read(din, 1, "y")
        op_alias = self.din_attr(din, "operation", "op")
        canon = self.din_attr(din, "canon", "cn")
        self.write_result(din, f"{canon}({op_alias}(FLT({a}), FLT({b})))")

    @staticmethod
    def _op_may_float(op) -> bool:
        if op[0] == OP_REGISTER:
            return isinstance(op[2].type, FloatType)
        if op[0] == OP_CONSTANT:
            return isinstance(op[1], float)
        return False

    def emit_compare(self, din) -> None:
        a = self.read(din, 0, "x")
        b = self.read(din, 1, "y")
        ops = din.operands
        if din.to_unsigned is not None:
            mask = (1 << din.to_unsigned.__self__.width) - 1
            a, b = f"(({a}) & {mask})", f"(({b}) & {mask})"
            may_float = False
        else:
            may_float = self._op_may_float(ops[0]) or self._op_may_float(ops[1])
        symbol = _COMPARE_SYMBOLS[din.compare_fn]
        plain = f"1 if ({a}) {symbol} ({b}) else 0"
        if may_float:
            nan_result = 1 if din.nan_flag else 0
            expr = (
                f"{nan_result} if ({a}) != ({a}) or ({b}) != ({b}) "
                f"else ({plain})"
            )
        else:
            expr = plain
        self.write_result(din, expr)

    def emit_cast(self, din) -> None:
        value = self.read(din, 0, "x")
        inlined = self._inline_cast_expr(din, value)
        if inlined is not None:
            self.write_result(din, inlined)
            return
        op_alias = self.din_attr(din, "operation", "op")
        canon = self.din_attr(din, "canon", "cn")
        self.write_result(din, f"{canon}({op_alias}({value}))")

    def _inline_cast_expr(self, din, value: str) -> Optional[str]:
        """Closed-form source for int/pointer casts of a register operand.

        Register reads are canonical in the source type in both variants
        (bare by construction, instrumented because the read hook's result is
        re-canonicalized), which lets most width changes collapse to a wrap
        expression or the identity.  Returns ``None`` when the generic
        ``canon(operation(x))`` closure pair must be kept (float-involved
        casts, bitcast, constant/global operands).
        """
        op = din.operands[0]
        if op[0] != OP_REGISTER:
            return None
        source_type = op[2].type
        target_type = din.result_reg.type
        opcode = din.opcode
        if opcode in ("trunc", "sext", "ptrtoint", "zext", "inttoptr"):
            if isinstance(source_type, IntType):
                src_width = source_type.width
            elif isinstance(source_type, PointerType):
                src_width = 64
            else:
                return None
            if opcode == "inttoptr":
                # Canonical pointers and i1 values are already in [0, 2**64).
                if isinstance(source_type, PointerType) or src_width == 1:
                    return value
                return f"({value}) & {_MASK64}"
            if not isinstance(target_type, IntType):
                return None
            width, mask, signed = self._int_shape(target_type)
            if opcode == "zext":
                src_mask = (1 << src_width) - 1
                unsigned = f"({value}) & {src_mask}"
                if src_width < width:
                    # The zero-extended value is < 2**src_width <= 2**(width-1).
                    return unsigned
                return self._wrap_expr(unsigned, mask, signed, width)
            # trunc/sext/ptrtoint compute wrap(value); that is the identity
            # when the canonical source range is a subset of the target range.
            if (
                opcode != "ptrtoint"
                and isinstance(source_type, IntType)
                and src_width <= width
                and (signed or src_width == 1)
            ):
                return value
            if (
                opcode == "ptrtoint"
                and isinstance(source_type, PointerType)
                and signed
                and width == 64
            ):
                # value < 2**64 already: the pre-mask is a no-op.
                sign_bit = 1 << 63
                return f"(({value}) ^ {sign_bit}) - {sign_bit}"
            return self._wrap_expr(value, mask, signed, width)
        return None

    def emit_alloca(self, din) -> None:
        op = din.operands[0]
        static_count = (
            op[1]
            if op[0] == OP_CONSTANT and 0 <= op[1] <= (1 << 24)
            else None
        )
        count = self.read(din, 0, "x")
        cur = self.cur()
        if static_count is None:
            self.w(f"if ({count}) < 0 or ({count}) > {1 << 24}:")
            self.w(f"    vm.dynamic_index = {cur}")
            self.w(
                f'    raise E_SEG(f"alloca of {{{count}}} elements exceeds the '
                f'stack segment", dynamic_index={cur})'
            )
            size = f"{din.element_size} * ({count})"
        else:
            size = str(din.element_size * static_count)
        self.w("try:")
        self.w(f'    addr = _mem.allocate("stack", {size}, {din.element_align})')
        self.w("except MemoryError as exc:")
        self.w(f"    vm.dynamic_index = {cur}")
        self.w(
            f'    raise E_SEG(f"stack exhausted: {{exc}}", dynamic_index={cur}) '
            "from None"
        )
        self.write_result(din, "addr")

    def _emit_align_check(self, din, addr: str) -> None:
        align = din.mem_align
        if align <= 1:
            return
        cur = self.cur()
        vt_text = str(din.value_type)
        self.w(f"if ({addr}) % {align}:")
        self.w(f"    vm.dynamic_index = {cur}")
        self.w(
            f'    raise E_MIS(f"access of {vt_text} at 0x{{{addr}:x}} is not '
            f'{align}-byte aligned", dynamic_index={cur})'
        )

    def _emit_mem_guard(self, body: str) -> None:
        cur = self.cur()
        self.w("try:")
        self.w(f"    {body}")
        self.w("except E_HWF as fault:")
        self.w(f"    vm.dynamic_index = {cur}")
        self.w(f"    fault.dynamic_index = {cur}")
        self.w("    raise")

    def emit_load(self, din) -> None:
        addr = self.read(din, 0, "x")
        self._emit_align_check(din, addr)
        # Inline the segment-cache hit (len(data) <= size always holds, so one
        # bound check covers both); anything else falls back to Memory.read_bytes.
        size = din.mem_size
        self.w("_sg = _mem._hot")
        self.w("_d = _sg.data")
        self.w(f"_o = ({addr}) - _sg.base")
        self.w(f"_e = _o + {size}")
        self.w("if 0 <= _o and _e <= len(_d):")
        self.w(f"    _mem.bytes_read += {size}")
        self.w("    raw = _d[_o:_e]")
        self.w("else:")
        self.push()
        self._emit_mem_guard(f"raw = MR({addr}, {size})")
        self.pop()
        value_type = din.value_type
        if isinstance(value_type, IntType):
            width, mask, signed = self._int_shape(value_type)
            if width == 8 * size:
                # A size-byte read is already < 2**width: the mask is a no-op.
                if signed:
                    sign_bit = 1 << (width - 1)
                    expr = f'((FB(raw, "little")) ^ {sign_bit}) - {sign_bit}'
                else:
                    expr = 'FB(raw, "little")'
            else:
                expr = self._wrap_expr('FB(raw, "little")', mask, signed, width)
        elif isinstance(value_type, FloatType):
            loader = self.din_attr(din, "loader", "ld")
            expr = f"{loader}(raw)"
        else:
            expr = 'FB(raw, "little")'
        self.write_result(din, expr)

    def emit_load_generic(self, din) -> None:
        addr = self.read(din, 0, "x")
        vt = self.din_attr(din, "value_type", "vt")
        self._emit_mem_guard(f"val = _mem.read_scalar(int({addr}), {vt})")
        self.write_result(din, "val")

    def emit_store(self, din) -> None:
        value = self.read(din, 0, "x")
        addr = self.read(din, 1, "y")
        self._emit_align_check(din, addr)
        value_type = din.value_type
        if isinstance(value_type, IntType):
            mask = (1 << value_type.width) - 1
            size = value_type.size_bytes()
            encoded = f'(({value}) & {mask}).to_bytes({size}, "little")'
        elif isinstance(value_type, FloatType):
            storer = self.din_attr(din, "storer", "st")
            encoded = f"{storer}({value})"
        else:
            encoded = f'(({value}) & {_MASK64}).to_bytes(8, "little")'
        size = din.value_type.size_bytes()
        self.w(f"_b = {encoded}")
        self.w("_sg = _mem._hot")
        self.w("_d = _sg.data")
        self.w(f"_o = ({addr}) - _sg.base")
        self.w(f"_e = _o + {size}")
        self.w("if 0 <= _o and _e <= len(_d):")
        self.w(f"    _mem.bytes_written += {size}")
        self.w("    _d[_o:_e] = _b")
        self.w("    if _e > _sg.high_water:")
        self.w("        _sg.high_water = _e")
        self.w("    if _o < _sg.dirty_low:")
        self.w("        _sg.dirty_low = _o")
        self.w("else:")
        self.push()
        self._emit_mem_guard(f"MW({addr}, _b)")
        self.pop()

    def emit_store_generic(self, din) -> None:
        value = self.read(din, 0, "x")
        addr = self.read(din, 1, "y")
        vt = self.din_attr(din, "value_type", "vt")
        self._emit_mem_guard(
            f"_mem.write_scalar(int({addr}), {value}, {vt})"
        )

    def emit_gep(self, din) -> None:
        base = self.read(din, 0, "x")
        index = self.read(din, 1, "y")
        self.write_result(
            din, f"(({base}) + ({index}) * {din.stride}) & {_MASK64}"
        )

    def emit_select(self, din) -> None:
        condition = self.read(din, 0, "x")
        canon = self.din_attr(din, "canon", "cn")
        if not self.instrumented:
            true_expr = self.read(din, 1, "y")
            false_expr = self.read(din, 2, "z")
            self.write_result(
                din, f"{canon}({true_expr} if {condition} else {false_expr})"
            )
            return
        self.w(f"if {condition}:")
        self.push()
        chosen = self.read(din, 1, "y")
        self.w(f"sel = {chosen}")
        self.pop()
        self.w("else:")
        self.push()
        chosen = self.read(din, 2, "y")
        self.w(f"sel = {chosen}")
        self.pop()
        self.write_result(din, f"{canon}(sel)")

    def emit_call(self, din) -> None:
        values = [
            self.read(din, i, f"x{i}") for i in range(len(din.operands))
        ]
        self.w(f"vm.dynamic_index = {self.cur()}")
        if din.callee is not None:
            symbol = self.fn_symbol[din.callee.name]
            call_args = "".join(f", {value}" for value in values)
            # A pause inside the callee unwinds through this frame: record
            # this call site so the level can be rebuilt on resume.
            self.w("try:")
            self.w(f"    t = {symbol}(vm{call_args})")
            self.w("except E_PAUSE as p:")
            self.w(
                f"    p.site({self._block.index}, {self._pos}, "
                f"{self._frame_tuple()})"
            )
            self.w("    raise")
            # The callee advanced the counter; rebase the local and (in the
            # bare variant) restart the pending-tick delta from zero.
            self.w("n = vm.dynamic_index")
            self._dn = 0
            needs_recheck = not self.instrumented
        else:
            # Intrinsics never advance the counter: ``n`` plus the pending
            # delta stays exact, no rebase needed.
            fn = self.din_attr(din, "intrinsic_fn", "fn")
            tail = "," if len(values) == 1 else ""
            self.w(f"t = {fn}(vm, ({', '.join(values)}{tail}))")
            needs_recheck = False
        if din.dest_slot >= 0:
            canon = self.din_attr(din, "canon", "cn")
            self.write_result(din, f"{canon}(0 if t is None else t)")
        if needs_recheck:
            # The callee may have consumed the distance to the stop tick
            # (watchdog or pause): re-check before finishing this block
            # bare, delegating the remainder to the interpretive driver
            # mid-block when the stop is in reach.  Emitted after the
            # result write so the delegated frame holds the call result.
            remaining = self._block.code_len - self._pos - 1
            _j, name, dfunc = self._fn
            frame = ", ".join(f"r{slot}" for slot in range(dfunc.frame_size))
            self.w(f"if n + {remaining} > limit:")
            self.w("    vm.dynamic_index = n")
            self.w(
                f"    return vm._tail_interpret({name!r}, [{frame}], "
                f"{self._block.index}, P, {self._pos + 1})"
            )

    def emit_call_unknown(self, din) -> None:
        if self.instrumented:
            for i in range(len(din.operands)):
                self.read(din, i, f"x{i}")
        self.w(f"vm.dynamic_index = {self.cur()}")
        self.w(f"raise E_ESE({din.error_message!r})")

    def emit_unsupported(self, din) -> None:
        self.w(f"vm.dynamic_index = {self.cur()}")
        self.w(f"raise E_ESE({din.error_message!r})")

    # -- phis, blocks, dispatch --------------------------------------------
    def phi_read(self, phi_din, op) -> str:
        kind = op[0]
        if kind == OP_CONSTANT:
            return self.lit(phi_din.canon_in(op[1]))
        canon_in = self.din_attr(phi_din, "canon_in", "ci")
        if kind == OP_GLOBAL:
            return f"{canon_in}(G[{op[1]}])"
        # Same-typed register sources are already canonical for the phi.
        source_type = op[2].type
        phi_type = phi_din.result_reg.type
        if source_type is phi_type or source_type == phi_type:
            return f"r{op[1]}"
        return f"{canon_in}(r{op[1]})"

    def emit_phi_edge(self, moves, failure) -> None:
        temps: List[str] = []
        for mi, (op, phi_din) in enumerate(moves):
            expr = self.phi_read(phi_din, op)
            if self.instrumented:
                meta = self.din_attr(phi_din, "meta", "m")
                self.w(f"t{mi} = {expr}")
                self.w("if TR is not None:")
                self.w(f"    TR({meta})")
                temps.append(f"t{mi}")
            else:
                temps.append(expr)
        if moves:
            self.w(f"n += {len(moves)}")
        if failure is not None:
            self.w("vm.dynamic_index = n")
            self.w(f"raise E_IJF({failure!r}, dynamic_index=n)")
            return
        if not moves:
            return
        if not self.instrumented:
            dests = ", ".join(f"r{pd.dest_slot}" for _, pd in moves)
            self.w(f"{dests} = {', '.join(temps)}")
            return
        self.w("if WH is not None:")
        self.push()
        for mi, (op, phi_din) in enumerate(moves):
            base = self.din_base(phi_din)
            canon = self.din_attr(phi_din, "canon", "cn")
            reg = self.din_attr(phi_din, "result_reg", "rr")
            self.w(f"t{mi} = {canon}(WH(n - 1, {base}, {reg}, t{mi}))")
        self.pop()
        for mi, (op, phi_din) in enumerate(moves):
            self.w(f"r{phi_din.dest_slot} = t{mi}")

    def emit_block(self, block) -> None:
        self._dn = 0
        self._block = block
        if not self.instrumented:
            # Stop-tick delegation: if any tick of this block could cross
            # ``vm._stop`` (the watchdog limit, or an armed pause tick), hand
            # the rest of this invocation to the (bit-identical) interpretive
            # driver, which enforces the exact per-tick check.  Off the stop
            # this costs one compare per block.
            j, name, dfunc = self._fn
            frame = ", ".join(f"r{slot}" for slot in range(dfunc.frame_size))
            self.w(f"if n + {block.phi_count + block.code_len} > limit:")
            self.w("    vm.dynamic_index = n")
            self.w(
                f"    return vm._tail_interpret({name!r}, [{frame}], "
                f"{block.index}, P)"
            )
        elif block.phi_count:
            # Phi moves are one atomic parallel assignment: a pause tick
            # landing inside the group suspends at the block entry instead
            # (SCP no-ops when the trigger was only watchdog proximity —
            # hangs keep firing at code ticks, exactly like the driver).
            self.w(f"if n + {block.phi_count} > limit:")
            self.w("    vm.dynamic_index = n")
            self.w(
                f"    SCP(n, {block.phi_count}, {block.index}, "
                f"{self._frame_tuple()}, P)"
            )
        if block.phi_count:
            first = True
            for pred, (moves, failure) in block.phi_edges.items():
                self.w(f"{'if' if first else 'elif'} P == {pred}:")
                first = False
                self.push()
                self.emit_phi_edge(moves, failure)
                self.pop()
        terminated = False
        for position, din in enumerate(block.code):
            self._pos = position
            self.emit_tick(din)
            kind = din.kind
            if kind == KIND_SIMPLE:
                handler = din.handler
                if handler is _h_int_binop:
                    self.emit_int_binop(din)
                elif handler is _h_float_binop:
                    self.emit_float_binop(din)
                elif handler is _h_compare:
                    self.emit_compare(din)
                elif handler is _h_cast:
                    self.emit_cast(din)
                elif handler is _h_alloca:
                    self.emit_alloca(din)
                elif handler is _h_load:
                    self.emit_load(din)
                elif handler is _h_load_generic:
                    self.emit_load_generic(din)
                elif handler is _h_store:
                    self.emit_store(din)
                elif handler is _h_store_generic:
                    self.emit_store_generic(din)
                elif handler is _h_gep:
                    self.emit_gep(din)
                elif handler is _h_select:
                    self.emit_select(din)
                elif handler is _h_call:
                    self.emit_call(din)
                elif handler is _h_call_unknown:
                    self.emit_call_unknown(din)
                    terminated = True
                    break
                else:
                    assert handler is _h_unsupported
                    self.emit_unsupported(din)
                    terminated = True
                    break
                continue
            if kind == KIND_BRANCH:
                if self._dn:
                    self.w(f"n += {self._dn}")
                self.w(f"P = {block.index}")
                self.w(f"L = {din.target.index}")
                self.w("continue")
            elif kind == KIND_COND_BRANCH:
                condition = self.read(din, 0, "x")
                if self._dn:
                    self.w(f"n += {self._dn}")
                self.w(f"P = {block.index}")
                self.w(
                    f"L = {din.if_true.index} if {condition} "
                    f"else {din.if_false.index}"
                )
                self.w("continue")
            elif kind == KIND_RETURN:
                if not din.operands:
                    self.w(f"vm.dynamic_index = {self.cur()}")
                    self.w("return None")
                else:
                    value = self.read(din, 0, "x")
                    ret_canon = self.alias(
                        f"F{self.fn_symbol[din.func_name][2:]}_rc",
                        f"C[{self.cindex.fn_ret[din.func_name]}]",
                    )
                    self.w(f"vm.dynamic_index = {self.cur()}")
                    self.w(f"return {ret_canon}({value})")
            else:  # KIND_UNREACHABLE
                cur = self.cur()
                self.w(f"vm.dynamic_index = {cur}")
                self.w(
                    "raise E_ABORT('executed an unreachable instruction', "
                    f"dynamic_index={cur})"
                )
            terminated = True
            break
        if not terminated:
            message = f"control fell off the end of block %{block.name}"
            cur = self.cur()
            self.w(f"vm.dynamic_index = {cur}")
            self.w(f"raise E_IJF({message!r}, dynamic_index={cur})")

    def emit_dispatch(self, dfunc) -> None:
        blocks = dfunc.blocks

        def rec(lo: int, hi: int) -> None:
            if hi - lo == 1:
                self.emit_block(blocks[lo])
                return
            mid = (lo + hi) // 2
            self.w(f"if L < {mid}:")
            self.push()
            rec(lo, mid)
            self.pop()
            self.w("else:")
            self.push()
            rec(mid, hi)
            self.pop()

        if len(blocks) == 1:
            self.emit_block(blocks[0])
        else:
            rec(0, len(blocks))

    # -- function assembly --------------------------------------------------
    @staticmethod
    def _scan_function(dfunc) -> Dict[str, bool]:
        uses = {
            "globals": False,
            "read": False,
            "write": False,
            "mem": False,
            "phis": False,
        }
        for block in dfunc.blocks:
            if block.phi_count:
                uses["phis"] = True
            for moves, _failure in block.phi_edges.values():
                for op, _phi in moves:
                    if op[0] == OP_GLOBAL:
                        uses["globals"] = True
            for din in block.code:
                for op in din.operands:
                    if op[0] == OP_GLOBAL:
                        uses["globals"] = True
                handler = din.handler
                if handler is _h_load:
                    uses["read"] = True
                elif handler is _h_store:
                    uses["write"] = True
                elif handler in (_h_load_generic, _h_store_generic, _h_alloca):
                    uses["mem"] = True
        uses["mem"] = uses["mem"] or uses["read"] or uses["write"]
        return uses

    def _emit_hoists(self, uses: Dict[str, bool]) -> None:
        if uses["globals"]:
            self.w("G = vm.global_values")
        if uses["read"]:
            self.w("MR = _mem.read_bytes")
        if uses["write"]:
            self.w("MW = _mem.write_bytes")
        if self.instrumented:
            self.w("TR = vm._trace_append")
            self.w("RH = vm.read_hook")
            self.w("WH = vm.write_hook")
            self.w("SC = vm._stop_raise")
            if uses["phis"]:
                self.w("SCP = vm._stop_raise_prephi")
        # min(watchdog limit, armed pause tick) — segmented execution reuses
        # every existing stop check to pause at exact tick boundaries.
        self.w("limit = vm._stop")
        self.w("n = vm.dynamic_index")

    def emit_function(self, j: int, name: str, dfunc) -> None:
        self._fn = (j, name, dfunc)
        uses = self._scan_function(dfunc)
        if dfunc.entry is not None:
            body = self._capture(lambda: self.emit_dispatch(dfunc))
        else:
            body = None
        no_blocks_message = f"function @{dfunc.name} has no blocks"

        # -- normal entry point --------------------------------------------
        args = "".join(f", a{i}" for i in range(dfunc.arg_count))
        self.w(f"def f_{j}(vm{args}):")
        self.push()
        self.w("_l = vm.limits")
        self.w("if vm._call_depth >= _l.max_call_depth:")
        self.w(
            '    raise E_SEG(f"call depth exceeded {_l.max_call_depth} '
            '(stack overflow)", dynamic_index=vm.dynamic_index)'
        )
        self.w("vm._call_depth += 1")
        self.w("_mem = vm.memory")
        self.w("_mark = _mem.stack_mark()")
        self.w("try:")
        self.push()
        for i in range(dfunc.arg_count):
            arg_canon = self.alias(
                f"F{j}_a{i}", f"C[{self.cindex.fn_args[name]}][{i}]"
            )
            self.w(f"r{i} = {arg_canon}(a{i})")
        if dfunc.frame_size > dfunc.arg_count:
            # Pre-fill non-argument slots with the UNDEFINED sentinel (the
            # decoded driver's frame init) so stop-tick delegation and pause
            # sites can pack the full frame at any check point.
            und = self.alias("UND", "C[8]")
            slots = list(range(dfunc.arg_count, dfunc.frame_size))
            for start in range(0, len(slots), 12):
                chain = " = ".join(f"r{s}" for s in slots[start : start + 12])
                self.w(f"{chain} = {und}")
        if body is None:
            self.w(f"raise E_ESE({no_blocks_message!r})")
        else:
            self._emit_hoists(uses)
            self.w("L = 0")
            self.w("P = -1")
            self.w("while True:")
            self._splice(body, self._indent + 1)
        self.pop()
        # A pause unwinding through this invocation freezes it as one frame
        # level; the site (block/position/frame) was recorded by the raiser.
        self.w("except E_PAUSE as p:")
        self.w(f"    p.level(vm.program.functions[{name!r}], _mark)")
        self.w("    raise")
        self.w("finally:")
        self.w("    _mem.stack_release(_mark)")
        self.w("    vm._call_depth -= 1")
        self.pop()

        # -- fast-forward resume entry point -------------------------------
        # Depth accounting and stack release for this level belong to
        # CompiledInterpreter._resume_level (mirroring the decoded driver's
        # frame-record ownership), so the resume entry only re-enters the
        # block loop at the restored label.
        self.w(f"def f_{j}_r(vm, F, L, P):")
        self.push()
        if body is None:
            self.w(f"raise E_ESE({no_blocks_message!r})")
            self.pop()
            return
        for slot in range(dfunc.frame_size):
            self.w(f"r{slot} = F[{slot}]")
        if uses["mem"]:
            self.w("_mem = vm.memory")
        self._emit_hoists(uses)
        self.w("while True:")
        self._splice(body, self._indent + 1)
        self.pop()

    def generate(self) -> str:
        for j, (name, dfunc) in enumerate(self.decoded.functions.items()):
            self.emit_function(j, name, dfunc)
        lines = ["def _build(C):"]
        lines.extend(f"    {entry}" for entry in _FIXED_PROLOGUE)
        lines.extend(
            f"    {alias} = {expr}" for alias, expr in self.aliases.items()
        )
        lines.extend(self.lines)
        lines.append("    return {")
        for j, name in enumerate(self.decoded.functions):
            lines.append(f"        {name!r}: (f_{j}, f_{j}_r),")
        lines.append("    }")
        return "\n".join(lines) + "\n"


def generate_sources(decoded: DecodedProgram) -> Tuple[str, str]:
    """(bare, instrumented) source texts for one decoded program."""
    return (
        _Emitter(decoded, instrumented=False).generate(),
        _Emitter(decoded, instrumented=True).generate(),
    )


# --------------------------------------------------------------------------- exec & caching
class CompiledCode:
    """The compiled form of one decoded program: sources plus live functions.

    ``bare`` and ``instrumented`` map function name to ``(entry, resume)``
    pairs; ``entry(vm, *args)`` runs the function from its entry block,
    ``resume(vm, frame, label, previous)`` re-enters the block loop at a
    restored label (fast-forward interop).  Validity is pinned to the
    identity of ``program`` — the compiled cache dies with the decode cache.
    """

    __slots__ = (
        "program",
        "source_bare",
        "source_instrumented",
        "bare",
        "instrumented",
        "loaded_from_cache",
    )

    def __init__(
        self,
        program: DecodedProgram,
        source_bare: str,
        source_instrumented: str,
        bare: Dict[str, Tuple[Callable, Callable]],
        instrumented: Dict[str, Tuple[Callable, Callable]],
        loaded_from_cache: bool,
    ) -> None:
        self.program = program
        self.source_bare = source_bare
        self.source_instrumented = source_instrumented
        self.bare = bare
        self.instrumented = instrumented
        self.loaded_from_cache = loaded_from_cache


def _exec_source(source: str, consts: List, tag: str):
    """Execute one generated variant against its const table."""
    namespace: Dict = {}
    code = compile(source, f"<codegen:{tag}>", "exec")
    exec(code, namespace)
    return namespace["_build"](consts)


def codegen_key(cache, module) -> str:
    """Artifact-cache key for a module's generated source texts."""
    from repro.artifacts import module_fingerprint

    return cache.key_for("codegen", module_fingerprint(module), CODEGEN_VERSION)


def _cache_payload(decoded: DecodedProgram, sources: Tuple[str, str], consts_len: int) -> Dict:
    return {
        "version": CODEGEN_VERSION,
        "module": decoded.module.name,
        "functions": list(decoded.functions),
        "consts_len": consts_len,
        "source_bare": sources[0],
        "source_instrumented": sources[1],
    }


def _valid_payload(payload, decoded: DecodedProgram, consts_len: int) -> bool:
    try:
        return (
            payload is not None
            and payload.get("version") == CODEGEN_VERSION
            and payload.get("consts_len") == consts_len
            and set(payload.get("functions", ())) == set(decoded.functions)
        )
    except TypeError:  # pragma: no cover - corrupted payload shapes
        return False


def compile_program(decoded: DecodedProgram) -> CompiledCode:
    """Compile one decoded program, consulting the artifact cache for source.

    The const table is rebuilt from the decoded program on every call (it
    holds live objects and cannot be persisted); only the *source text* is
    cached, keyed by the module fingerprint and :data:`CODEGEN_VERSION`.
    A cache hit therefore skips generation entirely — the path worker pools
    take after warm-up.
    """
    from repro.artifacts import active_cache

    consts = build_consts(decoded)
    disk = active_cache()
    key = codegen_key(disk, decoded.module) if disk is not None else None
    sources: Optional[Tuple[str, str]] = None
    loaded = False
    if disk is not None:
        payload = disk.load("codegen", key)
        if _valid_payload(payload, decoded, len(consts)):
            sources = (payload["source_bare"], payload["source_instrumented"])
            loaded = True

    if sources is None:
        sources = generate_sources(decoded)
        _note_generation(decoded.module.name)
        if disk is not None:
            disk.store("codegen", key, _cache_payload(decoded, sources, len(consts)))

    try:
        bare = _exec_source(sources[0], consts, f"{decoded.module.name}:bare")
        instrumented = _exec_source(
            sources[1], consts, f"{decoded.module.name}:instr"
        )
    except Exception:
        if not loaded:
            raise
        # A stale/corrupt cached source (e.g. written by a different code
        # revision under the same CODEGEN_VERSION) must not poison the run:
        # regenerate from the decoded program and overwrite the artifact.
        sources = generate_sources(decoded)
        _note_generation(decoded.module.name)
        loaded = False
        if disk is not None:
            disk.store("codegen", key, _cache_payload(decoded, sources, len(consts)))
        bare = _exec_source(sources[0], consts, f"{decoded.module.name}:bare")
        instrumented = _exec_source(
            sources[1], consts, f"{decoded.module.name}:instr"
        )

    return CompiledCode(decoded, sources[0], sources[1], bare, instrumented, loaded)


def compile_module(module) -> CompiledCode:
    """Compile ``module``, reusing the on-module cache while still valid.

    Validity is delegated to the decode cache: the compiled artifact is
    reused exactly while ``decode_module`` keeps returning the same
    :class:`DecodedProgram` object.  Structural mutation hooks clear both
    caches together (see ``Instruction._invalidate_static_views``).
    """
    decoded = decode_module(module)
    cached: Optional[CompiledCode] = getattr(module, "_compiled_program", None)
    if cached is not None and cached.program is decoded:
        return cached
    code = compile_program(decoded)
    module._compiled_program = code
    return code


def persist_compiled_source(module) -> bool:
    """Ensure the module's generated source is stored in the artifact cache.

    Used by campaign warm-up so spawned workers ``exec`` cached source
    instead of re-generating.  Returns True when a new artifact was written.
    """
    from repro.artifacts import active_cache

    disk = active_cache()
    if disk is None:
        return False
    code = compile_module(module)
    key = codegen_key(disk, module)
    if disk.path_for("codegen", key).exists():
        return False
    disk.store(
        "codegen",
        key,
        _cache_payload(
            code.program,
            (code.source_bare, code.source_instrumented),
            len(build_consts(code.program)),
        ),
    )
    return True


# --------------------------------------------------------------------------- interpreter
class CompiledInterpreter(Interpreter):
    """An :class:`Interpreter` that runs transpiled code instead of the driver.

    Construction, memory/global materialisation, hook attributes, result
    classification (:meth:`_execute`), ``restore`` and the public surface are
    inherited unchanged; only the execution core is swapped: ``run`` calls
    the generated entry function, and function calls made *by* generated
    code dispatch straight back into generated code.

    Variant selection happens at ``run``/``resume`` time: with no trace
    collector and no hooks armed the bare variant executes (zero
    instrumentation cost); otherwise the instrumented variant provides
    bit-identical trace/hook sequences to the decoded driver.

    Fast-forward interop: snapshots are captured by the decoded driver
    against the *same* :class:`DecodedProgram` (slot numbering and block
    indices are shared), so ``resume`` rebuilds the captured call stack
    interpretively up to the next block boundary (:meth:`_finish_block`) and
    then re-enters the compiled block loop at the restored label.
    """

    def __init__(self, program, **kwargs) -> None:
        if isinstance(program, CompiledCode):
            code: Optional[CompiledCode] = program
            super().__init__(code.program, **kwargs)
        else:
            super().__init__(program, **kwargs)
            code = compile_module(self.module)
        if code.program is not self.program:
            code = compile_program(self.program)
        self.code = code
        self._active = code.instrumented

    # -- variant selection ---------------------------------------------------
    def _select_variant(self) -> None:
        if (
            self.read_hook is None
            and self.write_hook is None
            and self._trace_append is None
        ):
            self._active = self.code.bare
        else:
            self._active = self.code.instrumented

    # -- execution core ------------------------------------------------------
    def run(self, args: Sequence = ()) -> "ExecutionResult":
        self._select_variant()
        return super().run(args)

    def _run_function(self, dfunc, args):
        # Also the call dispatch target for ``_h_call`` during the
        # interpretive tail of a fast-forward resume.
        return self._active[dfunc.name][0](self, *args)

    def _tail_interpret(
        self, name: str, frame, block_index: int, previous: int, position: int = 0
    ):
        """Stop-tick delegation target for the bare variant.

        Generated bare code carries no per-instruction stop check; when a
        block's remaining ticks could cross ``vm._stop`` (the watchdog
        limit, or an armed pause tick) it hands the rest of the invocation
        to the inherited (bit-identical) interpretive driver, which raises
        :class:`HangDetected` — or pauses — at the exact tick.  Calls made
        by the driver still dispatch back into compiled code.  ``position``
        is non-zero for the post-call re-check, which delegates mid-block
        (past the phi group by construction).
        """
        block = self.program.functions[name].blocks[block_index]
        return self._block_loop(frame, block, previous, position, position > 0)

    # -- fast-forward --------------------------------------------------------
    def resume(self, snapshot) -> "ExecutionResult":
        self.restore(snapshot)
        self._select_variant()
        return self._execute(lambda: self._resume_level(snapshot.frames, 0))

    def run_segment(self, args, pause_tick):
        self._select_variant()
        return super().run_segment(args, pause_tick)

    def resume_segment(self, snapshot, pause_tick):
        self._select_variant()
        return super().resume_segment(snapshot, pause_tick)

    def continue_segment(self, suspended, pause_tick):
        self._select_variant()
        return super().continue_segment(suspended, pause_tick)

    def _resume_level(self, frames, level: int):
        record = frames[level]
        dfunc = record.dfunc
        self._call_depth += 1
        frame = list(record.frame)
        try:
            block = dfunc.blocks[record.block_index]
            if level + 1 < len(frames):
                value = self._resume_level(frames, level + 1)
                din = block.code[record.position]
                if din.dest_slot >= 0:
                    if value is None:
                        value = 0
                    _finish(self, frame, din, din.canon(value))
                outcome = self._finish_block(frame, block, record.position + 1)
            elif record.previous is not None:
                # Paused before the block's phi group: the compiled resume
                # entry runs the phis for the captured edge, then the body.
                return self._active[dfunc.name][1](
                    self, frame, block.index, record.previous
                )
            else:
                outcome = self._finish_block(frame, block, record.position)
            if outcome[0] == "ret":
                return outcome[1]
            _tag, previous, target = outcome
            return self._active[dfunc.name][1](self, frame, target.index, previous)
        except _PauseSignal as signal:
            if not signal._site_open:
                # Pause surfaced from the nested level's resume: this level
                # is still suspended at its original call site.
                signal.site(record.block_index, record.position, tuple(frame))
            signal.level(dfunc, record.stack_mark)
            raise
        finally:
            self.memory.stack_release(record.stack_mark)
            self._call_depth -= 1

    def _finish_block(self, frame, block, position: int):
        """Finish the restored (mid-)block interpretively, driver-identical.

        Returns ``("ret", value)`` when the block returns or ``("jump",
        previous, target)`` at the next block transfer — the point where
        control can re-enter the compiled loop (compiled code is addressable
        only at block boundaries).
        """
        limit = self.limits.max_dynamic_instructions
        stop = self._stop
        trace = self._trace_append
        code = block.code
        code_len = block.code_len
        try:
            while position < code_len:
                din = code[position]
                index = self.dynamic_index
                if index >= stop:
                    if index >= limit:
                        raise HangDetected(index, limit)
                    signal = _PauseSignal(self.memory.stack_mark())
                    signal.site(block.index, position, tuple(frame))
                    raise signal
                if trace is not None:
                    trace(din.meta)
                self.dynamic_index = index + 1

                kind = din.kind
                if kind == KIND_SIMPLE:
                    din.handler(self, frame, din)
                    position += 1
                    continue
                if kind == KIND_BRANCH:
                    return ("jump", block.index, din.target)
                if kind == KIND_COND_BRANCH:
                    condition = _read_op(self, frame, din, din.operands[0])
                    return (
                        "jump",
                        block.index,
                        din.if_true if condition else din.if_false,
                    )
                if kind == KIND_RETURN:
                    if not din.operands:
                        return ("ret", None)
                    value = _read_op(self, frame, din, din.operands[0])
                    return ("ret", bitops.canonicalize(value, din.ret_type))
                # KIND_UNREACHABLE
                raise AbortFault(
                    "executed an unreachable instruction",
                    dynamic_index=self.dynamic_index,
                )
            raise InvalidJumpFault(
                f"control fell off the end of block %{block.name}",
                dynamic_index=self.dynamic_index,
            )
        except _PauseSignal as signal:
            if not signal._site_open:
                # Pause inside a callee (din.handler running a call): this
                # frame is suspended at the call instruction.
                signal.site(block.index, position, tuple(frame))
            raise
