"""VM snapshot/restore: checkpoints of the decoded driver at a dynamic tick.

Every fault-injection experiment pins its first flip at a dynamic instruction
index taken from the golden trace, so all ticks before it are bit-identical
to the fault-free run the campaign already profiled.  This module makes that
prefix free to skip:

* :class:`VMSnapshot` captures everything mutable about an in-flight
  :class:`~repro.vm.interpreter.Interpreter` — the call stack (one
  :class:`FrameSnapshot` per live function invocation, frames frozen as
  tuples), the dirty prefix of every memory segment
  (:meth:`~repro.vm.memory.Memory.capture_state`), the output buffer and the
  dynamic-instruction counter.  Snapshots are immutable and
  copy-on-write-friendly: restoring never mutates the snapshot, so one
  snapshot serves every experiment whose injection time lies at or after it;
* :class:`CheckpointingInterpreter` is the profiling-run driver: it executes
  identically to the base interpreter (same ticks, trace and result) while
  maintaining an explicit shadow of the Python call recursion, and captures a
  snapshot every *K* ticks under a fixed snapshot budget
  (:data:`DEFAULT_MAX_CHECKPOINTS`): whenever the budget overflows, every
  other snapshot is dropped and the interval doubles — bounding capture
  memory at a spacing proportional to the golden length.  ``K`` starts at a
  fine default (auto-tune) or at an explicit ``checkpoint_interval``;
* :class:`CheckpointStore` holds the captured snapshots sorted by tick with
  an O(log n) ``latest_at`` lookup;
* :func:`golden_with_checkpoints` runs one checkpointed profiling run and
  caches ``(GoldenTrace, CheckpointStore)`` on the module object, keyed like
  the decode cache and invalidated with it: the cache entry pins the
  :class:`~repro.vm.program.DecodedProgram` it was captured from, so a
  structural mutation of the module (which forces a re-decode) also forces a
  re-capture.  Frame slot numbering and block indices are decode-specific —
  a snapshot must never be applied across a re-decode, and
  :meth:`Interpreter.restore` enforces the same identity check.

Restoring is implemented by :meth:`~repro.vm.interpreter.Interpreter.resume`:
the captured call stack is rebuilt by re-entering one Python frame per level
(outer levels complete their suspended ``call`` exactly like ``_h_call``
does), after which the ordinary inner loop executes the remaining suffix.
The differential suite proves resumed runs bit-identical to from-scratch
runs for every registry program.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionSetupError
from repro.ir.module import Module
from repro.telemetry import metrics as telemetry_metrics
from repro.vm import bitops
from repro.vm.faults import (
    AbortFault,
    HangDetected,
    InvalidJumpFault,
    SegmentationFault,
)
from repro.vm.interpreter import Interpreter
from repro.vm.memory import MemoryState
from repro.vm.program import (
    KIND_BRANCH,
    KIND_COND_BRANCH,
    KIND_RETURN,
    KIND_SIMPLE,
    UNDEFINED,
    DecodedFunction,
    DecodedProgram,
    _read_op,
    decode_module,
)
from repro.vm.runtime import ExecutionLimits, ExecutionResult, RuntimeScalar
from repro.vm.trace import GoldenTrace, TraceCollector

#: Upper bound on snapshots kept per golden run when auto-tuning.
DEFAULT_MAX_CHECKPOINTS = 32

#: Starting checkpoint spacing (in dynamic ticks) when auto-tuning.
DEFAULT_INITIAL_INTERVAL = 64

#: Number of checkpointed profiling runs this process actually executed
#: (artifact-cache hits do not count).  ``tests/test_engine.py`` asserts a
#: warm cache keeps this at zero across fresh processes.
GOLDEN_DERIVATIONS = 0


def _note_derivation(module_name: str) -> None:
    """Count one real profiling run (telemetry counter + compat shims).

    The canonical count lives in the telemetry registry
    (``repro_derivations_total{kind="golden"}``); the module-level
    ``GOLDEN_DERIVATIONS`` mirror and the ``REPRO_DERIVATION_LOG`` file
    append (``<pid> <module>`` lines) are kept so in-process and
    multi-process zero-re-derivation tests keep working unchanged.
    """
    global GOLDEN_DERIVATIONS
    GOLDEN_DERIVATIONS += 1
    telemetry_metrics.note_derivation("golden", module_name)


class FrameSnapshot:
    """One live function invocation, frozen at a capture point.

    ``block_index``/``position`` name the *next* instruction of this level:
    for the innermost level the one about to execute, for every outer level
    the ``call`` it is suspended in.

    ``previous`` is normally ``None`` (the captured position lies past the
    block's phi moves).  Segment pauses (windowed execution) can suspend a
    run *before* a block's phi group; such a record carries the incoming CFG
    edge in ``previous`` and resumes by executing the phis for that edge
    first.
    """

    __slots__ = ("dfunc", "block_index", "position", "frame", "stack_mark", "previous")

    def __init__(
        self,
        dfunc: DecodedFunction,
        block_index: int,
        position: int,
        frame: Tuple,
        stack_mark: int,
        previous: Optional[int] = None,
    ) -> None:
        self.dfunc = dfunc
        self.block_index = block_index
        self.position = position
        self.frame = frame
        self.stack_mark = stack_mark
        self.previous = previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FrameSnapshot @{self.dfunc.name} block={self.block_index} "
            f"position={self.position}>"
        )


class VMSnapshot:
    """Complete mutable VM state at one dynamic tick of a fault-free run."""

    __slots__ = ("tick", "frames", "memory", "output", "program")

    def __init__(
        self,
        tick: int,
        frames: Tuple[FrameSnapshot, ...],
        memory: MemoryState,
        output: Tuple,
        program: DecodedProgram,
    ) -> None:
        self.tick = tick
        self.frames = frames
        self.memory = memory
        self.output = output
        #: The decoded program this snapshot's slot/block numbering belongs
        #: to.  ``Interpreter.restore`` refuses snapshots whose program is not
        #: the interpreter's own (identity, not equality — see module docs).
        self.program = program

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VMSnapshot tick={self.tick} depth={len(self.frames)}>"


class CheckpointStore:
    """Snapshots of one golden run, sorted by tick, with bisect lookup."""

    __slots__ = ("program", "entry", "args_key", "interval", "snapshots", "ticks")

    def __init__(
        self,
        program: DecodedProgram,
        entry: str,
        args_key: Tuple,
        interval: int,
        snapshots: Sequence[VMSnapshot],
    ) -> None:
        self.program = program
        self.entry = entry
        self.args_key = args_key
        #: Final (possibly auto-tuned) spacing between checkpoints.
        self.interval = interval
        self.snapshots: List[VMSnapshot] = list(snapshots)
        self.ticks: List[int] = [snapshot.tick for snapshot in self.snapshots]

    def __len__(self) -> int:
        return len(self.snapshots)

    def latest_at(self, tick: int) -> Optional[VMSnapshot]:
        """The snapshot with the largest tick ``<= tick``, or None (O(log n))."""
        index = bisect_right(self.ticks, tick) - 1
        return self.snapshots[index] if index >= 0 else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CheckpointStore {len(self.snapshots)} snapshots, "
            f"interval={self.interval}>"
        )


class _LiveFrame:
    """Mutable shadow of one in-flight function invocation (capture only)."""

    __slots__ = ("dfunc", "frame", "stack_mark", "block_index", "position")

    def __init__(self, dfunc: DecodedFunction, frame: List, stack_mark: int) -> None:
        self.dfunc = dfunc
        self.frame = frame
        self.stack_mark = stack_mark
        self.block_index = 0
        self.position = 0


class CheckpointingInterpreter(Interpreter):
    """A driver that captures :class:`VMSnapshot`\\ s every *K* ticks.

    Execution is bit-identical to the base :class:`Interpreter` — same tick
    sequence, trace, hooks and result — at the cost of shadow-stack
    bookkeeping per instruction, which is why this driver is used for the
    once-per-workload profiling run only, never for experiments.
    """

    def __init__(
        self,
        program: Union[DecodedProgram, Module],
        *,
        checkpoint_interval: Optional[int] = None,
        max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
        **kwargs,
    ) -> None:
        super().__init__(program, **kwargs)
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ExecutionSetupError("checkpoint_interval must be positive")
        if max_checkpoints < 2:
            raise ExecutionSetupError("max_checkpoints must be at least 2")
        #: Starting spacing; an explicit interval pins the starting point but
        #: the snapshot budget still applies (thinning doubles the spacing),
        #: so capture memory stays bounded on arbitrarily long golden runs.
        self.interval = checkpoint_interval or DEFAULT_INITIAL_INTERVAL
        self._max_checkpoints = max_checkpoints
        self._next_checkpoint = self.interval
        self._live: List[_LiveFrame] = []
        #: Captured snapshots, in tick order.
        self.snapshots: List[VMSnapshot] = []

    # -- capture ------------------------------------------------------------
    def _capture(self, block, position: int) -> None:
        live = self._live
        frames = [
            FrameSnapshot(
                shadow.dfunc,
                shadow.block_index,
                shadow.position,
                tuple(shadow.frame),
                shadow.stack_mark,
            )
            for shadow in live[:-1]
        ]
        top = live[-1]
        frames.append(
            FrameSnapshot(
                top.dfunc, block.index, position, tuple(top.frame), top.stack_mark
            )
        )
        self.snapshots.append(
            VMSnapshot(
                tick=self.dynamic_index,
                frames=tuple(frames),
                memory=self.memory.capture_state(),
                output=tuple(self.output),
                program=self.program,
            )
        )
        if len(self.snapshots) > self._max_checkpoints:
            # Budget exceeded: keep every other snapshot and space the rest
            # twice as far apart — interval converges to O(length / budget).
            del self.snapshots[1::2]
            self.interval *= 2
        self._next_checkpoint = self.dynamic_index + self.interval

    # -- driver overrides ----------------------------------------------------
    def _run_function(
        self, dfunc: DecodedFunction, args: List[RuntimeScalar]
    ) -> Optional[RuntimeScalar]:
        if self._call_depth >= self.limits.max_call_depth:
            raise SegmentationFault(
                f"call depth exceeded {self.limits.max_call_depth} (stack overflow)",
                dynamic_index=self.dynamic_index,
            )
        self._call_depth += 1
        stack_mark = self.memory.stack_mark()
        frame: List = [UNDEFINED] * dfunc.frame_size
        self._live.append(_LiveFrame(dfunc, frame, stack_mark))
        try:
            slot = 0
            for canon, actual in zip(dfunc.arg_canons, args):
                frame[slot] = canon(actual)
                slot += 1
            return self._run_blocks(dfunc, frame)
        finally:
            self._live.pop()
            self.memory.stack_release(stack_mark)
            self._call_depth -= 1

    def _block_loop(
        self, frame: List, block, previous: int, position: int, skip_phis: bool
    ) -> Optional[RuntimeScalar]:
        # A copy of the base inner loop with two additions per instruction:
        # the checkpoint trigger and the shadow-stack position update (so an
        # outer level suspended in a call knows where to resume).  Keeping the
        # additions out of the base loop keeps experiments at full speed.
        limit = self.limits.max_dynamic_instructions
        trace = self._trace_append
        shadow = self._live[-1]

        while True:
            if block.phi_count and not skip_phis:
                self._run_phis(block, previous, frame, trace)
            skip_phis = False

            code = block.code
            code_len = block.code_len
            while position < code_len:
                din = code[position]
                index = self.dynamic_index
                if index >= self._next_checkpoint:
                    self._capture(block, position)
                if index >= limit:
                    raise HangDetected(index, limit)
                if trace is not None:
                    trace(din.meta)
                self.dynamic_index = index + 1

                kind = din.kind
                if kind == KIND_SIMPLE:
                    shadow.block_index = block.index
                    shadow.position = position
                    din.handler(self, frame, din)
                    position += 1
                    continue
                if kind == KIND_BRANCH:
                    previous, block = block.index, din.target
                    break
                if kind == KIND_COND_BRANCH:
                    condition = _read_op(self, frame, din, din.operands[0])
                    previous, block = (
                        block.index,
                        din.if_true if condition else din.if_false,
                    )
                    break
                if kind == KIND_RETURN:
                    if not din.operands:
                        return None
                    value = _read_op(self, frame, din, din.operands[0])
                    return bitops.canonicalize(value, din.ret_type)
                raise AbortFault(
                    "executed an unreachable instruction",
                    dynamic_index=self.dynamic_index,
                )
            else:
                raise InvalidJumpFault(
                    f"control fell off the end of block %{block.name}",
                    dynamic_index=self.dynamic_index,
                )
            position = 0


def capture_checkpoints(
    program: Union[DecodedProgram, Module],
    *,
    entry: str = "main",
    args: Sequence[RuntimeScalar] = (),
    limits: Optional[ExecutionLimits] = None,
    checkpoint_interval: Optional[int] = None,
    max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
    trace_collector: Optional[TraceCollector] = None,
) -> Tuple[CheckpointStore, ExecutionResult]:
    """Run the program fault-free and capture its checkpoint snapshots.

    Raises if the run does not complete (a program that crashes without any
    injected fault is a benchmark bug, exactly like golden profiling).
    """
    interpreter = CheckpointingInterpreter(
        program,
        entry=entry,
        limits=limits or ExecutionLimits(),
        trace_collector=trace_collector,
        checkpoint_interval=checkpoint_interval,
        max_checkpoints=max_checkpoints,
    )
    result = interpreter.run(list(args))
    if not result.completed:
        detail = result.fault.category if result.fault else "hang"
        raise RuntimeError(
            f"fault-free run of {interpreter.module.name} did not complete ({detail})"
        )
    store = CheckpointStore(
        interpreter.program,
        entry,
        tuple(args),
        interpreter.interval,
        interpreter.snapshots,
    )
    return store, result


def golden_with_checkpoints(
    module: Module,
    *,
    entry: str = "main",
    args: Sequence[RuntimeScalar] = (),
    limits: Optional[ExecutionLimits] = None,
    checkpoint_interval: Optional[int] = None,
    max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
) -> Tuple[GoldenTrace, CheckpointStore]:
    """One checkpointed profiling run: golden trace plus snapshots, cached.

    Two cache layers stack here.  The in-process cache lives on the module
    object next to the decode cache and shares its invalidation: each entry
    pins the :class:`DecodedProgram` it was captured from, and is rebuilt
    whenever :func:`decode_module` returns a different object (i.e. after
    any structural mutation of the module).  Beneath it, the persistent
    artifact cache (:mod:`repro.artifacts`, when active) is keyed by the
    module's *content* fingerprint plus the derivation knobs — a hit
    re-binds the stored trace and snapshots to this process's decode and
    skips the profiling run entirely, so derivation happens once per host
    rather than once per process.
    """
    decoded = decode_module(module)
    limits = limits or ExecutionLimits()
    key = (entry, tuple(args), checkpoint_interval, max_checkpoints, limits)
    cache = getattr(module, "_checkpoint_cache", None)
    if cache is None:
        cache = module._checkpoint_cache = {}
    cached = cache.get(key)
    if cached is not None and cached[0] is decoded:
        return cached[1], cached[2]

    from repro import artifacts

    disk = artifacts.active_cache()
    disk_key = None
    if disk is not None:
        disk_key = artifacts.golden_key(
            disk, module, entry, args, checkpoint_interval, max_checkpoints, limits
        )
        payload = disk.load("golden", disk_key)
        if payload is not None:
            try:
                golden, store = artifacts.deserialize_golden(payload, decoded)
            except Exception:
                golden = store = None  # corrupted artifact: recompute
            if golden is not None:
                cache[key] = (decoded, golden, store)
                return golden, store

    collector = TraceCollector()
    store, result = capture_checkpoints(
        decoded,
        entry=entry,
        args=args,
        limits=limits,
        checkpoint_interval=checkpoint_interval,
        max_checkpoints=max_checkpoints,
        trace_collector=collector,
    )
    golden = collector.build(
        result.output, result.return_value, checkpoint_ticks=tuple(store.ticks)
    )
    _note_derivation(module.name)
    cache[key] = (decoded, golden, store)
    if disk is not None and disk_key is not None:
        disk.store("golden", disk_key, artifacts.serialize_golden(golden, store))
    return golden, store


def persist_cached_golden(
    module: Module,
    *,
    entry: str = "main",
    args: Sequence[RuntimeScalar] = (),
    limits: Optional[ExecutionLimits] = None,
    checkpoint_interval: Optional[int] = None,
    max_checkpoints: int = DEFAULT_MAX_CHECKPOINTS,
) -> bool:
    """Ensure this workload's golden artifact is on disk (for worker pools).

    Covers the ordering gap where the golden trace was derived *before* the
    artifact cache was configured: the in-memory module cache is warm, so
    :func:`golden_with_checkpoints` would never reach its store step, yet
    freshly spawned workers (which share only the disk) would re-derive.
    Returns True when the artifact is (now) persisted.
    """
    from repro import artifacts

    disk = artifacts.active_cache()
    if disk is None:
        return False
    golden, store = golden_with_checkpoints(
        module,
        entry=entry,
        args=args,
        limits=limits,
        checkpoint_interval=checkpoint_interval,
        max_checkpoints=max_checkpoints,
    )
    disk_key = artifacts.golden_key(
        disk,
        module,
        entry,
        args,
        checkpoint_interval,
        max_checkpoints,
        limits or ExecutionLimits(),
    )
    if disk.path_for("golden", disk_key).exists():
        return True
    return disk.store("golden", disk_key, artifacts.serialize_golden(golden, store))
