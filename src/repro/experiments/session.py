"""Experiment sessions: shared campaign execution and result caching."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.campaign.config import CampaignConfig, ExperimentScale, SMOKE_SCALE
from repro.campaign.engine import (
    ExecutionEngine,
    MultiprocessEngine,
    ProgressCallback,
    RegistryProvider,
    SerialEngine,
)
from repro.campaign.results import ResultStore
from repro.campaign.runner import CampaignRunner
from repro.errors import ConfigurationError


class ExperimentSession:
    """Owns a campaign runner plus a result store shared across figures.

    Figures 2, 4 and 5, Table III and Table IV all reuse overlapping campaign
    grids; running them through one session means each campaign executes at
    most once.  A session can also persist its store to disk so repeated
    benchmark invocations do not re-run identical campaigns.

    ``jobs`` selects the execution engine: 1 (the default) runs campaigns
    serially in-process, larger values fan experiments out to a multiprocess
    worker pool; pass ``engine`` to supply a custom backend (mutually
    exclusive with ``jobs``).  ``fast_forward`` / ``checkpoint_interval``
    control checkpoint/restore fast-forwarding of each experiment's golden
    prefix (on by default; results are bit-identical either way).  Long sweeps checkpoint the store to
    ``checkpoint_path`` (falling back to ``cache_path``) after every
    ``checkpoint_every`` completed campaigns; a new session loads the store
    back from the cache or, failing that, the checkpoint, so interrupted
    runs resume from the last checkpoint.
    """

    def __init__(
        self,
        *,
        scale: ExperimentScale = SMOKE_SCALE,
        store: Optional[ResultStore] = None,
        cache_path: Optional[Union[str, Path]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        jobs: int = 1,
        engine: Optional[ExecutionEngine] = None,
        fast_forward: bool = True,
        checkpoint_interval: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        experiment_progress: Optional[ProgressCallback] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        if engine is not None and jobs != 1:
            raise ConfigurationError(
                "jobs and engine are mutually exclusive; size the worker pool "
                "on the engine instead"
            )
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be at least 1")
        self.scale = scale
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every
        if store is not None:
            self.store = store
        elif self.cache_path is not None and self.cache_path.exists():
            self.store = ResultStore.load(self.cache_path)
        elif self.checkpoint_path is not None and self.checkpoint_path.exists():
            self.store = ResultStore.load(self.checkpoint_path)
        else:
            self.store = ResultStore()
        if engine is None:
            engine = MultiprocessEngine(jobs) if jobs > 1 else SerialEngine()
        self.runner = CampaignRunner(
            RegistryProvider(
                fast_forward=fast_forward, checkpoint_interval=checkpoint_interval
            ),
            engine=engine,
            progress=progress,
            experiment_progress=experiment_progress,
        )

    @property
    def engine(self) -> ExecutionEngine:
        return self.runner.engine

    def ensure(self, configs: Sequence[CampaignConfig]) -> ResultStore:
        """Run any of ``configs`` not yet in the store; return the store."""
        scaled = [config.with_scale(self.scale) for config in configs]
        checkpoint = self.checkpoint_path or self.cache_path
        self.runner.run_campaigns(
            scaled,
            self.store,
            skip_existing=True,
            checkpoint_path=checkpoint,
            checkpoint_every=self.checkpoint_every,
        )
        if self.cache_path is not None:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.store.save(self.cache_path)
        return self.store

    def experiment_runner(self, program: str):
        """Direct access to a workload's experiment runner (used by Table IV)."""
        return self.runner.experiment_runner(program)
