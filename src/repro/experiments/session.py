"""Experiment sessions: shared campaign execution and result caching."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.campaign.config import CampaignConfig, ExperimentScale, SMOKE_SCALE
from repro.campaign.results import ResultStore
from repro.campaign.runner import CampaignRunner


class ExperimentSession:
    """Owns a campaign runner plus a result store shared across figures.

    Figures 2, 4 and 5, Table III and Table IV all reuse overlapping campaign
    grids; running them through one session means each campaign executes at
    most once.  A session can also persist its store to disk so repeated
    benchmark invocations do not re-run identical campaigns.
    """

    def __init__(
        self,
        *,
        scale: ExperimentScale = SMOKE_SCALE,
        store: Optional[ResultStore] = None,
        cache_path: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.scale = scale
        self.cache_path = Path(cache_path) if cache_path is not None else None
        if store is not None:
            self.store = store
        elif self.cache_path is not None and self.cache_path.exists():
            self.store = ResultStore.load(self.cache_path)
        else:
            self.store = ResultStore()
        self.runner = CampaignRunner(progress=progress)

    def ensure(self, configs: Sequence[CampaignConfig]) -> ResultStore:
        """Run any of ``configs`` not yet in the store; return the store."""
        scaled = [config.with_scale(self.scale) for config in configs]
        self.runner.run_campaigns(scaled, self.store, skip_existing=True)
        if self.cache_path is not None:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.store.save(self.cache_path)
        return self.store

    def experiment_runner(self, program: str):
        """Direct access to a workload's experiment runner (used by Table IV)."""
        return self.runner.experiment_runner(program)
