"""Experiment sessions: shared campaign execution and result caching."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

from repro.campaign.config import CampaignConfig, ExperimentScale, SMOKE_SCALE
from repro.campaign.engine import (
    ExecutionEngine,
    MultiprocessEngine,
    ProgressCallback,
    RegistryProvider,
    SerialEngine,
)
from repro.campaign.plan import ExhaustiveCampaignRequest
from repro.campaign.results import ExhaustiveCampaignResult, ResultStore
from repro.campaign.runner import CampaignRunner
from repro.errors import ConfigurationError
from repro.injection.outcome import OutcomeCounts
from repro import artifacts


def default_artifact_dir(cache_path: Union[str, Path]) -> Path:
    """The artifact-cache directory derived from a result-store path.

    ``results.json`` → ``results.json.artifacts`` — kept next to the store
    so clearing one campaign cache clears both predictably.
    """
    cache_path = Path(cache_path)
    return cache_path.with_name(cache_path.name + ".artifacts")


class ExperimentSession:
    """Owns a campaign runner plus a result store shared across figures.

    Figures 2, 4 and 5, Table III and Table IV all reuse overlapping campaign
    grids; running them through one session means each campaign executes at
    most once.  A session can also persist its store to disk so repeated
    benchmark invocations do not re-run identical campaigns.

    ``jobs`` selects the execution engine: 1 (the default) runs campaigns
    serially in-process, larger values fan experiments out to a multiprocess
    worker pool; pass ``engine`` to supply a custom backend (mutually
    exclusive with ``jobs``).  ``fast_forward`` / ``checkpoint_interval``
    control checkpoint/restore fast-forwarding of each experiment's golden
    prefix (on by default; results are bit-identical either way).
    ``backend`` selects the execution engine runners use (``decoded``,
    ``compiled`` or ``reference``).  Long sweeps checkpoint the store to
    ``checkpoint_path`` (falling back to ``cache_path``) after every
    ``checkpoint_every`` completed campaigns; a new session loads the store
    back from the cache or, failing that, the checkpoint, so interrupted
    runs resume from the last checkpoint.

    ``cache_dir`` activates the persistent artifact cache
    (:mod:`repro.artifacts`): golden traces, VM checkpoints, def-use indices
    and pruned plans round-trip through it, so repeated sessions and worker
    processes pay derivation cost once per host.  When only ``cache_path``
    is given, the artifact cache defaults to ``<cache_path>.artifacts``
    next to the result store.

    Fault tolerance (applies to the engine the session constructs; a custom
    ``engine`` carries its own knobs): ``max_retries`` / ``chunk_timeout`` /
    ``quarantine`` configure supervised chunk dispatch, and ``ledger_dir``
    (defaulting to ``<cache_dir>/ledger`` whenever an artifact cache is
    active) enables the durable chunk ledger so an interrupted run can be
    restarted with ``resume=True`` executing only the missing chunks.

    Whenever an artifact cache is active the session also points the engine
    at ``<cache_dir>/runlog``: every run appends a structured JSONL event
    stream there (:mod:`repro.telemetry.events`), which ``repro report``
    renders after the fact.

    ``hosts > 0`` makes the session a **distributed coordinator**: it opens
    a lease coordinator socket (``dist_bind``/``dist_port``; port 0 picks an
    ephemeral port, read :attr:`coordinator_address`) and dispatches chunks
    to connecting ``repro worker`` agents instead of a local pool — with the
    same ledger, resume and byte-identity guarantees (:mod:`repro.dist`).
    Close the session (or use it as a context manager) to release the
    socket.
    """

    def __init__(
        self,
        *,
        scale: ExperimentScale = SMOKE_SCALE,
        store: Optional[ResultStore] = None,
        cache_path: Optional[Union[str, Path]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        jobs: int = 1,
        engine: Optional[ExecutionEngine] = None,
        fast_forward: bool = True,
        checkpoint_interval: Optional[int] = None,
        backend: str = "decoded",
        windowed: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        experiment_progress: Optional[ProgressCallback] = None,
        max_retries: int = 3,
        chunk_timeout: Optional[float] = None,
        quarantine: bool = True,
        ledger_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        hosts: int = 0,
        dist_bind: str = "127.0.0.1",
        dist_port: int = 0,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        if hosts < 0:
            raise ConfigurationError("hosts cannot be negative")
        if engine is not None and jobs != 1:
            raise ConfigurationError(
                "jobs and engine are mutually exclusive; size the worker pool "
                "on the engine instead"
            )
        if engine is not None and hosts > 0:
            raise ConfigurationError(
                "hosts and engine are mutually exclusive; pass a distributed "
                "transport on the engine instead"
            )
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be at least 1")
        self.scale = scale
        self.cache_path = Path(cache_path) if cache_path is not None else None
        if cache_dir is None and self.cache_path is not None:
            cache_dir = default_artifact_dir(self.cache_path)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        # The latest session's choice wins process-wide: configuring with
        # None *clears* any earlier session's explicit cache directory, so a
        # session built without cache_dir never writes artifacts into a
        # stale path (the REPRO_CACHE_DIR env fallback still applies).
        self.artifact_cache = artifacts.configure(self.cache_dir)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every
        if store is not None:
            self.store = store
        elif self.cache_path is not None and self.cache_path.exists():
            self.store = ResultStore.load(self.cache_path)
        elif self.checkpoint_path is not None and self.checkpoint_path.exists():
            self.store = ResultStore.load(self.checkpoint_path)
        else:
            self.store = ResultStore()
        if ledger_dir is None and self.cache_dir is not None:
            ledger_dir = self.cache_dir / "ledger"
        self.ledger_dir = Path(ledger_dir) if ledger_dir is not None else None
        if resume and self.ledger_dir is None:
            raise ConfigurationError(
                "resume needs a chunk ledger; pass ledger_dir (or cache_path/"
                "cache_dir, which place one under the artifact cache)"
            )
        # Structured run-event logs land next to the chunk ledger under the
        # artifact cache; ``repro report`` reads them back from there.
        self.runlog_dir = (
            self.cache_dir / "runlog" if self.cache_dir is not None else None
        )
        #: The distributed lease coordinator, when ``hosts > 0``.
        self.coordinator = None
        if engine is None:
            ledger = str(self.ledger_dir) if self.ledger_dir is not None else None
            runlog = str(self.runlog_dir) if self.runlog_dir is not None else None
            if hosts > 0:
                from repro.dist import CoordinatorTransport

                self.coordinator = CoordinatorTransport(dist_bind, dist_port)
                # ``jobs`` still sizes the local-fallback pool; the remote
                # fan-out is governed by each worker host's own --jobs.
                engine = MultiprocessEngine(
                    max(jobs, hosts),
                    max_retries=max_retries,
                    chunk_timeout=chunk_timeout,
                    quarantine=quarantine,
                    ledger_dir=ledger,
                    resume=resume,
                    runlog_dir=runlog,
                    transport=self.coordinator,
                )
            elif jobs > 1:
                engine = MultiprocessEngine(
                    jobs,
                    max_retries=max_retries,
                    chunk_timeout=chunk_timeout,
                    quarantine=quarantine,
                    ledger_dir=ledger,
                    resume=resume,
                    runlog_dir=runlog,
                )
            else:
                engine = SerialEngine(
                    quarantine=quarantine,
                    ledger_dir=ledger,
                    resume=resume,
                    runlog_dir=runlog,
                )
        self._provider = RegistryProvider(
            fast_forward=fast_forward,
            checkpoint_interval=checkpoint_interval,
            cache_dir=str(self.cache_dir) if self.cache_dir is not None else None,
            backend=backend,
            windowed=windowed,
        )
        self.runner = CampaignRunner(
            self._provider,
            engine=engine,
            progress=progress,
            experiment_progress=experiment_progress,
        )
        #: Pruned plans keyed by (program, technique, infer) — planning costs
        #: one inference pass over the space, so it is never repeated.
        self._pruned_plans: Dict = {}

    @property
    def engine(self) -> ExecutionEngine:
        return self.runner.engine

    @property
    def coordinator_address(self):
        """``(host, port)`` of the lease coordinator, or None when local."""
        return self.coordinator.address if self.coordinator is not None else None

    def close(self) -> None:
        """Release the engine's transport (sockets, pools); idempotent."""
        self.engine.close()

    def __enter__(self) -> "ExperimentSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def ensure(self, configs: Sequence[CampaignConfig]) -> ResultStore:
        """Run any of ``configs`` not yet in the store; return the store."""
        scaled = [config.with_scale(self.scale) for config in configs]
        checkpoint = self.checkpoint_path or self.cache_path
        self.runner.run_campaigns(
            scaled,
            self.store,
            skip_existing=True,
            checkpoint_path=checkpoint,
            checkpoint_every=self.checkpoint_every,
        )
        if self.cache_path is not None:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.store.save(self.cache_path)
        return self.store

    def experiment_runner(self, program: str):
        """Direct access to a workload's experiment runner (used by Table IV)."""
        return self.runner.experiment_runner(program)

    # -- exhaustive error-space campaigns -----------------------------------------------
    def defuse_index(self, program: str):
        """The def-use index of a workload's golden run.

        Delegates to the process-wide registry cache — the index depends
        only on the compiled program and its golden trace, both of which are
        identical across execution knobs, so one build serves every session
        and the benchmark harness alike.
        """
        from repro.programs.registry import get_defuse_index

        return get_defuse_index(program)

    def pruned_plan(self, program: str, technique: str = "inject-on-read", *, infer: bool = True):
        """The (cached) pruned plan of a workload's single-bit error space.

        Three cache layers, cheapest first: the in-session memo, the
        persistent artifact cache (content-addressed; a warm hit costs one
        pickle load instead of the inference pass), then a fresh build —
        chunk-parallelised across the engine's worker pool when one is
        available.  All layers yield bit-identical plans.
        """
        from repro.errorspace import build_pruned_plan, enumerate_error_space

        key = (program, technique, infer)
        plan = self._pruned_plans.get(key)
        if plan is not None:
            return plan
        runner = self.experiment_runner(program)
        disk = self.artifact_cache or artifacts.active_cache()
        disk_key = None
        if disk is not None:
            disk_key = artifacts.plan_key(
                disk,
                runner.program.module,
                runner.program.entry,
                runner.args,
                technique,
                infer,
            )
            plan = artifacts.load_plan(disk, disk_key)
            if plan is not None:
                self._pruned_plans[key] = plan
                return plan
        space = enumerate_error_space(runner.golden, technique)
        index = self.defuse_index(program) if technique == "inject-on-read" else None
        infer_map = None
        if infer and index is not None:
            infer_map = self.engine.plan_infer_map(program, provider=self._provider)
        plan = build_pruned_plan(space, index, infer=infer, infer_map=infer_map)
        self._pruned_plans[key] = plan
        if disk is not None and disk_key is not None:
            artifacts.store_plan(disk, disk_key, plan)
        return plan

    def run_exhaustive(
        self,
        program: str,
        technique: str = "inject-on-read",
        *,
        mode: str = "pruned",
        budget: Optional[int] = None,
        validate: float = 0.0,
        seed: int = 2017,
        infer: bool = True,
    ) -> ExhaustiveCampaignResult:
        """Run (or fetch) one exhaustive single-bit error-space campaign.

        ``mode="exhaustive"`` executes every error of the space;
        ``mode="pruned"`` executes one representative per def-use
        equivalence class and infers the rest (weighted counts still cover
        the full space); ``mode="budgeted"`` weight-samples ``budget``
        representatives.  ``validate`` re-executes a seeded fraction of
        non-representative members and records the misprediction rate.
        Results are cached in the session store (and on disk when the
        session has a cache path).
        """
        from repro.errorspace import enumerate_error_space
        from repro.errorspace.inference import validation_sample

        if mode not in ("exhaustive", "pruned", "budgeted"):
            raise ConfigurationError(
                f"unknown exhaustive mode {mode!r}; expected exhaustive|pruned|budgeted"
            )
        if validate > 0.0 and mode != "pruned":
            raise ConfigurationError(
                "validation re-runs non-representative class members and only "
                "applies to the pruned mode; drop --validate or use --prune"
            )
        # Parameterised runs are cached under a distinguishing variant so a
        # different budget/seed/validation request never returns stale data.
        parts = []
        if mode == "budgeted":
            parts.append(f"budget={budget},seed={seed}")
        elif mode == "pruned" and validate > 0.0:
            parts.append(f"validate={validate},seed={seed}")
        if mode != "exhaustive" and not infer:
            parts.append("noinfer")
        variant = ";".join(parts)
        if self.store.has_exhaustive(program, technique, mode, variant):
            return self.store.exhaustive(program, technique, mode, variant)
        runner = self.experiment_runner(program)
        space = enumerate_error_space(runner.golden, technique)
        validation_sampled = 0
        validation_mispredicted = 0
        if mode == "exhaustive":
            errors = [(e.dynamic_index, e.slot, e.bit) for e in space.iter_errors()]
            outcomes = self.runner.run_errors(program, technique, errors)
            counts = OutcomeCounts()
            counts.update(outcomes)
            result = ExhaustiveCampaignResult(
                program=program,
                technique=technique,
                mode=mode,
                total_errors=space.size,
                candidate_count=space.candidate_count,
                executed_experiments=len(errors),
                inferred_errors=0,
                outcome_counts=counts,
                variant=variant,
            )
        else:
            plan = self.pruned_plan(program, technique, infer=infer)
            planned = plan.experiments(
                "exact" if mode == "pruned" else "budgeted", budget=budget, seed=seed
            )
            # Budgeted draws sample classes with replacement; execute each
            # distinct representative once and reuse its outcome.
            unique_errors = []
            position_of = {}
            for p in planned:
                key = (p.error.dynamic_index, p.error.slot, p.error.bit)
                if key not in position_of:
                    position_of[key] = len(unique_errors)
                    unique_errors.append(key)
            unique_outcomes = self.runner.run_errors(program, technique, unique_errors)
            errors = unique_errors
            representative_outcomes = {
                p.class_id: unique_outcomes[
                    position_of[(p.error.dynamic_index, p.error.slot, p.error.bit)]
                ]
                for p in planned
            }
            counts = plan.expand_counts(representative_outcomes, planned)
            if validate > 0.0 and mode == "pruned":
                population = plan.non_representative_members()
                sample = validation_sample(population, validate, seed)
                sample_errors = [member for member, _class_id in sample]
                actual = self.runner.run_errors(program, technique, sample_errors)
                for (member, class_id), outcome in zip(sample, actual):
                    validation_sampled += 1
                    if representative_outcomes[class_id] is not outcome:
                        validation_mispredicted += 1
            result = ExhaustiveCampaignResult(
                program=program,
                technique=technique,
                mode=mode,
                total_errors=space.size,
                candidate_count=space.candidate_count,
                executed_experiments=len(errors),
                inferred_errors=plan.inferred_errors,
                outcome_counts=counts,
                validation_sampled=validation_sampled,
                validation_mispredicted=validation_mispredicted,
                variant=variant,
            )
        self.store.add_exhaustive(result)
        if self.cache_path is not None:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.store.save(self.cache_path)
        return result

    def ensure_exhaustive(
        self, requests: Sequence[ExhaustiveCampaignRequest]
    ) -> ResultStore:
        """Run any exhaustive campaign requests not yet in the store."""
        for request in requests:
            self.run_exhaustive(
                request.program,
                request.technique,
                mode=request.mode,
                budget=request.budget,
                validate=request.validate,
                seed=request.seed,
            )
        return self.store
