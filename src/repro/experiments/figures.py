"""Regenerate the data behind each figure of the paper's evaluation.

Every function takes an :class:`~repro.experiments.session.ExperimentSession`
(which caches campaign results), a list of programs and optional parameter
subsets, runs whatever campaigns are missing, and returns a
:class:`FigureResult` with the raw per-program series plus a formatted text
table.  Absolute percentages will differ from the paper (different substrate,
scaled-down inputs and campaign sizes); the *shape* — which technique yields
more SDCs, how SDC % moves with max-MBF and win-size — is what the benchmark
assertions in ``benchmarks/`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.activation import activation_distribution
from repro.analysis.comparison import sdc_percentage_by_cluster
from repro.analysis.reporting import format_figure1, format_figure3, format_sdc_series
from repro.campaign.plan import (
    multi_register_campaigns,
    same_register_campaigns,
    single_bit_campaigns,
)
from repro.experiments.session import ExperimentSession
from repro.injection.faultmodel import MAX_MBF_VALUES, WIN_SIZE_SPECS, WinSizeSpec
from repro.injection.outcome import Outcome
from repro.programs.registry import all_program_names


@dataclass
class FigureResult:
    """Raw data plus a text rendering for one figure."""

    name: str
    description: str
    #: Per-technique mapping: program -> series (structure varies per figure).
    data: Dict[str, Dict] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.description}\n{self.text}"


_TECHNIQUES = ("inject-on-read", "inject-on-write")


def _programs_or_default(programs: Optional[Sequence[str]]) -> List[str]:
    return list(programs) if programs is not None else all_program_names()


# ------------------------------------------------------------------------------ Fig. 1
def figure1(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 1: outcome classification of single bit-flip campaigns."""
    selected = _programs_or_default(programs)
    store = session.ensure(single_bit_campaigns(selected, session.scale))
    result = FigureResult(
        name="figure1",
        description="Single bit-flip outcome classification per program and technique",
    )
    sections: List[str] = []
    for technique in _TECHNIQUES:
        per_program: Dict[str, Dict[str, float]] = {}
        for program in selected:
            campaign = store.single_bit(program, technique)
            per_program[program] = {
                "benign": campaign.benign_percentage,
                "detection": campaign.detection_percentage,
                "sdc": campaign.sdc_percentage,
                "hw_exception": campaign.outcome_percentage(Outcome.DETECTED_HW_EXCEPTION),
                "hang": campaign.outcome_percentage(Outcome.HANG),
                "no_output": campaign.outcome_percentage(Outcome.NO_OUTPUT),
                "ci_half_width": 100.0 * campaign.sdc_estimate().half_width,
            }
        result.data[technique] = per_program
        sections.append(f"[{technique}]\n" + format_figure1(store, technique))
    result.text = "\n\n".join(sections)
    return result


# ------------------------------------------------------------------------------ Fig. 2
def figure2(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
) -> FigureResult:
    """Fig. 2: SDC % for multiple flips of the same register (win-size = 0)."""
    selected = _programs_or_default(programs)
    configs = single_bit_campaigns(selected, session.scale)
    configs += same_register_campaigns(selected, session.scale, max_mbf_values=max_mbf_values)
    store = session.ensure(configs)
    result = FigureResult(
        name="figure2",
        description="SDC% when injecting 1..30 errors into the same register",
    )
    sections: List[str] = []
    for technique in _TECHNIQUES:
        per_program: Dict[str, Dict] = {}
        for program in selected:
            series = sdc_percentage_by_cluster(store, program, technique, same_register=True)
            per_program[program] = {
                "single_bit": series.get((1, "single")),
                "by_max_mbf": {
                    max_mbf: value
                    for (max_mbf, _label), value in series.items()
                    if max_mbf != 1
                },
            }
        result.data[technique] = per_program
        sections.append(
            f"[{technique}]\n"
            + format_sdc_series(store, technique, same_register=True, programs=selected)
        )
    result.text = "\n\n".join(sections)
    return result


# ------------------------------------------------------------------------------ Fig. 3
def figure3(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
) -> FigureResult:
    """Fig. 3: distribution of activated errors when 30 flips are planned."""
    selected = _programs_or_default(programs)
    configs = multi_register_campaigns(
        selected,
        session.scale,
        max_mbf_values=(30,),
        win_size_specs=win_size_specs,
    )
    configs += same_register_campaigns(selected, session.scale, max_mbf_values=(30,))
    store = session.ensure(configs)
    result = FigureResult(
        name="figure3",
        description="Distribution of activated errors before crash (max-MBF = 30)",
    )
    for technique in _TECHNIQUES:
        distribution = activation_distribution(
            store, technique, max_mbf=30, programs=selected
        )
        result.data[technique] = {
            "histogram": dict(distribution.histogram),
            "buckets": distribution.bucket_percentages(),
            "mean": distribution.mean_activated(),
            "fraction_at_most_10": distribution.fraction_at_most(10),
        }
    result.text = format_figure3(store, max_mbf=30)
    return result


# ------------------------------------------------------------------------------ Figs. 4 & 5
def _multi_register_figure(
    session: ExperimentSession,
    technique: str,
    programs: Optional[Sequence[str]],
    max_mbf_values: Sequence[int],
    win_size_specs: Optional[Sequence[WinSizeSpec]],
    name: str,
) -> FigureResult:
    selected = _programs_or_default(programs)
    configs = single_bit_campaigns(selected, session.scale, techniques=[technique])
    configs += multi_register_campaigns(
        selected,
        session.scale,
        max_mbf_values=max_mbf_values,
        win_size_specs=win_size_specs,
        techniques=[technique],
    )
    store = session.ensure(configs)
    result = FigureResult(
        name=name,
        description=f"SDC% for multi-register injections using {technique}",
    )
    per_program: Dict[str, Dict] = {}
    for program in selected:
        series = sdc_percentage_by_cluster(store, program, technique, same_register=False)
        per_program[program] = {
            "single_bit": series.get((1, "single")),
            "by_cluster": {
                f"mbf={max_mbf},win={label}": value
                for (max_mbf, label), value in series.items()
                if max_mbf != 1
            },
        }
    result.data[technique] = per_program
    result.text = format_sdc_series(
        store, technique, same_register=False, programs=selected
    )
    return result


def figure4(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
) -> FigureResult:
    """Fig. 4: SDC % for multi-register injections, inject-on-read."""
    return _multi_register_figure(
        session, "inject-on-read", programs, max_mbf_values, win_size_specs, "figure4"
    )


def figure5(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
) -> FigureResult:
    """Fig. 5: SDC % for multi-register injections, inject-on-write."""
    return _multi_register_figure(
        session, "inject-on-write", programs, max_mbf_values, win_size_specs, "figure5"
    )
