"""Experiment harness: one entry point per table and figure of the paper.

:class:`~repro.experiments.session.ExperimentSession` owns a campaign runner
and a result store so that different figures can share campaign results
(Fig. 4 and Table III, for example, use the same multi-register campaigns).
The :mod:`~repro.experiments.figures` and :mod:`~repro.experiments.tables`
modules expose ``figure1`` … ``figure5`` and ``table1`` … ``table4``
functions returning both the raw data and a formatted text rendering.
"""

from repro.experiments.session import ExperimentSession
from repro.experiments.figures import figure1, figure2, figure3, figure4, figure5
from repro.experiments.tables import table1, table2, table3, table4

__all__ = [
    "ExperimentSession",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "table3",
    "table4",
]
