"""Regenerate the data behind each table of the paper.

* Table I — the max-MBF / win-size parameter grid (pure configuration);
* Table II — per-program candidate instruction counts for both techniques;
* Table III — the (max-MBF, win-size) configurations with the highest SDC %;
* Table IV — Transition I / Transition II likelihoods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.comparison import highest_sdc_configurations
from repro.analysis.reporting import format_table, format_table3, format_table4
from repro.analysis.transitions import TransitionStudyResult, transition_study
from repro.campaign.plan import multi_register_campaigns, single_bit_campaigns
from repro.experiments.session import ExperimentSession
from repro.injection.faultmodel import MAX_MBF_VALUES, WIN_SIZE_SPECS, WinSizeSpec
from repro.injection.techniques import INJECT_ON_READ, INJECT_ON_WRITE
from repro.programs.registry import all_program_names, get_experiment_runner, get_program


@dataclass
class TableResult:
    """Raw rows plus a text rendering for one table."""

    name: str
    description: str
    rows: List[Dict] = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.description}\n{self.text}"


# ------------------------------------------------------------------------------ Table I
def table1() -> TableResult:
    """Table I: the values selected for max-MBF and win-size."""
    rows: List[Dict] = []
    for index, value in enumerate(MAX_MBF_VALUES, start=1):
        rows.append({"kind": "max-MBF", "index": f"m{index}", "value": str(value)})
    for spec in WIN_SIZE_SPECS:
        rows.append({"kind": "win-size", "index": spec.index, "value": spec.label})
    text = format_table(
        ["kind", "index", "value"],
        [[row["kind"], row["index"], row["value"]] for row in rows],
    )
    return TableResult(
        name="table1",
        description="max-MBF and win-size values of the error-space clustering",
        rows=rows,
        text=text,
    )


# ------------------------------------------------------------------------------ Table II
def table2(programs: Optional[Sequence[str]] = None) -> TableResult:
    """Table II: candidate fault-injection instruction counts per program."""
    selected = list(programs) if programs is not None else all_program_names()
    rows: List[Dict] = []
    for name in selected:
        definition = get_program(name)
        runner = get_experiment_runner(name)
        golden = runner.golden
        rows.append(
            {
                "program": name,
                "suite": definition.suite,
                "package": definition.package,
                "dynamic_instructions": golden.dynamic_instruction_count,
                "inject_on_read_candidates": INJECT_ON_READ.candidate_instruction_count(golden),
                "inject_on_write_candidates": INJECT_ON_WRITE.candidate_instruction_count(golden),
                "description": definition.description,
            }
        )
    text = format_table(
        ["program", "suite", "package", "dyn. instr.", "read candidates", "write candidates"],
        [
            [
                row["program"],
                row["suite"],
                row["package"],
                row["dynamic_instructions"],
                row["inject_on_read_candidates"],
                row["inject_on_write_candidates"],
            ]
            for row in rows
        ],
    )
    return TableResult(
        name="table2",
        description="Benchmark programs and their candidate instruction counts",
        rows=rows,
        text=text,
    )


# ------------------------------------------------------------------------------ Table III
def table3(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    max_mbf_values: Sequence[int] = MAX_MBF_VALUES,
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
) -> TableResult:
    """Table III: configurations with the highest SDC % per program/technique."""
    selected = list(programs) if programs is not None else all_program_names()
    configs = single_bit_campaigns(selected, session.scale)
    configs += multi_register_campaigns(
        selected,
        session.scale,
        max_mbf_values=max_mbf_values,
        win_size_specs=win_size_specs,
    )
    store = session.ensure(configs)
    rows = [
        {
            "program": row.program,
            "technique": row.technique,
            "max_mbf": row.max_mbf,
            "win_size": row.win_size_label,
            "sdc_percentage": row.sdc_percentage,
            "single_bit_sdc_percentage": row.single_bit_sdc_percentage,
            "exceeds_single_bit": row.exceeds_single_bit,
        }
        for row in highest_sdc_configurations(store, programs=selected)
    ]
    return TableResult(
        name="table3",
        description="Configurations with the highest SDC% among multi-bit campaigns",
        rows=rows,
        text=format_table3(store, programs=selected),
    )


# ------------------------------------------------------------------------------ Table IV
def table4(
    session: ExperimentSession,
    programs: Optional[Sequence[str]] = None,
    *,
    techniques: Sequence[str] = ("inject-on-read", "inject-on-write"),
    max_mbf_values: Sequence[int] = (2, 3),
    win_size_specs: Optional[Sequence[WinSizeSpec]] = None,
    locations_per_class: int = 40,
) -> TableResult:
    """Table IV: likelihood of Transition I and Transition II per program."""
    selected = list(programs) if programs is not None else all_program_names()
    configs = single_bit_campaigns(selected, session.scale, techniques=techniques)
    configs += multi_register_campaigns(
        selected,
        session.scale,
        max_mbf_values=max_mbf_values,
        win_size_specs=win_size_specs,
        techniques=techniques,
    )
    store = session.ensure(configs)

    studies: List[TransitionStudyResult] = []
    for program in selected:
        for technique in techniques:
            studies.append(
                transition_study(
                    store,
                    session.experiment_runner(program),
                    program,
                    technique,
                    locations_per_class=locations_per_class,
                )
            )
    rows = [
        {
            "program": study.program,
            "technique": study.technique,
            "transition1_percentage": 100.0 * study.transition1_likelihood,
            "transition2_percentage": 100.0 * study.transition2_likelihood,
            "max_mbf": study.max_mbf,
            "win_size": study.win_size,
        }
        for study in studies
    ]
    return TableResult(
        name="table4",
        description="Likelihood of Detection->SDC and Benign->SDC transitions",
        rows=rows,
        text=format_table4(studies),
    )
