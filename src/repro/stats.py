"""Small, dependency-light statistical helpers shared across the library.

These functions carry the statistical machinery the paper reports: proportion
estimates with 95 % confidence intervals ("we also compute error bars at the
95% confidence intervals") and comparisons of two proportions.  Both the
normal-approximation interval (what error bars on large fault-injection
campaigns conventionally use) and the Wilson score interval (better behaved
for small samples, used by the unit-test-scale runs) are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Two-sided z value for a 95 % confidence level.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its confidence interval (all values in [0, 1])."""

    successes: int
    trials: int
    point: float
    lower: float
    upper: float

    @property
    def half_width(self) -> float:
        """Half the confidence interval width (the paper's "error bar")."""
        return (self.upper - self.lower) / 2.0

    @property
    def percentage(self) -> float:
        return 100.0 * self.point

    def as_percentage_tuple(self) -> Tuple[float, float, float]:
        return (100.0 * self.lower, 100.0 * self.point, 100.0 * self.upper)


def normal_proportion_interval(
    successes: int, trials: int, z: float = Z_95
) -> ProportionEstimate:
    """Normal-approximation (Wald) interval for a binomial proportion."""
    _validate(successes, trials)
    if trials == 0:
        return ProportionEstimate(0, 0, 0.0, 0.0, 0.0)
    p = successes / trials
    margin = z * math.sqrt(p * (1.0 - p) / trials)
    return ProportionEstimate(
        successes, trials, p, max(0.0, p - margin), min(1.0, p + margin)
    )


def _clamped_estimate(
    successes: int, trials: int, p: float, lower: float, upper: float
) -> ProportionEstimate:
    """Build an estimate whose interval is guaranteed to bracket the point."""
    return ProportionEstimate(
        successes, trials, p, max(0.0, min(lower, p)), min(1.0, max(upper, p))
    )


def wilson_proportion_interval(
    successes: int, trials: int, z: float = Z_95
) -> ProportionEstimate:
    """Wilson score interval — preferred when the sample is small."""
    _validate(successes, trials)
    if trials == 0:
        return ProportionEstimate(0, 0, 0.0, 0.0, 0.0)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p + z2 / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    return _clamped_estimate(successes, trials, p, centre - margin, centre + margin)


def proportion_difference_significant(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    z: float = Z_95,
) -> bool:
    """Two-proportion z-test at the given confidence level.

    Used when deciding whether a multi-bit campaign's SDC percentage is
    *significantly* higher than the single-bit campaign's, rather than just
    noisier.
    """
    _validate(successes_a, trials_a)
    _validate(successes_b, trials_b)
    if trials_a == 0 or trials_b == 0:
        return False
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance == 0.0:
        return False
    return abs(p_a - p_b) / math.sqrt(variance) > z


def percentage_point_difference(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> float:
    """Difference of two proportions expressed in percentage points (a − b)."""
    _validate(successes_a, trials_a)
    _validate(successes_b, trials_b)
    p_a = successes_a / trials_a if trials_a else 0.0
    p_b = successes_b / trials_b if trials_b else 0.0
    return 100.0 * (p_a - p_b)


def _validate(successes: int, trials: int) -> None:
    if trials < 0 or successes < 0:
        raise ValueError("counts must be non-negative")
    if successes > trials:
        raise ValueError(f"successes ({successes}) cannot exceed trials ({trials})")
