"""Compile a restricted Python subset into MiniIR modules.

The supported language (checked by the compiler, documented here for program
authors):

* **Functions** with string type annotations on every parameter and on the
  return value (``"i64"``, ``"f64"``, ``"i32*"`` …).  A missing return
  annotation means ``void``.
* **Locals** are typed by their first assignment and lowered to ``alloca``'d
  stack slots (the ``clang -O0`` style LLFI operates on): reads become
  ``load``s, writes become ``store``s.
* **Integers** are ``i64`` and **floats** are ``f64`` in registers; arrays
  and globals may use any scalar element type, with automatic widening on
  load and narrowing on store.
* **Statements**: assignment, augmented assignment, ``if``/``elif``/``else``,
  ``while``, ``for i in range(...)``, ``break``, ``continue``, ``return``,
  ``assert``, ``pass``, and expression statements (calls).
* **Expressions**: arithmetic and bitwise operators, comparisons (single
  comparator), short-circuit ``and``/``or``, ``not``, unary ``-``/``~``,
  subscripts on pointers, conditional expressions (both arms evaluated),
  calls to other program functions and to the builtins listed in
  :mod:`repro.frontend.intrinsics` (``output``, ``sqrt``, ``array``, …).
* **Globals** are declared through :meth:`ProgramCompiler.add_global` and are
  visible in every function as pointers to their element type.

Anything outside the subset raises :class:`~repro.errors.CompilationError`
with the offending source location.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CompilationError
from repro.frontend.intrinsics import FRONTEND_BUILTINS, INLINE_BUILTINS, MATH_BUILTINS
from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import (
    ArrayType,
    BOOL,
    FloatType,
    IntType,
    IRType,
    PointerType,
    F64,
    I64,
    VOID,
    parse_type,
)
from repro.ir.values import Constant, Value
from repro.ir.verifier import verify_module


@dataclass(frozen=True)
class FrontendOptions:
    """Knobs for the frontend (kept small on purpose)."""

    #: Register type used for Python ``int`` expressions.
    default_int: IntType = I64
    #: Register type used for Python ``float`` expressions.
    default_float: FloatType = F64
    #: Verify the produced module before returning it.
    verify: bool = True


@dataclass
class CompiledProgram:
    """A compiled module plus the metadata needed to run it."""

    module: Module
    entry: str = "main"

    def instruction_count(self) -> int:
        return self.module.instruction_count()


SourceLike = Union[str, Callable]


class ProgramCompiler:
    """Collects globals and function sources, then compiles them to a module."""

    def __init__(self, name: str, options: Optional[FrontendOptions] = None) -> None:
        self.name = name
        self.options = options or FrontendOptions()
        self._module = Module(name)
        self._function_sources: List[Tuple[str, ast.FunctionDef]] = []
        self._signatures: Dict[str, Function] = {}

    # -- program inputs -------------------------------------------------------
    def add_global(
        self,
        name: str,
        element_typename: str,
        values: Sequence[Union[int, float]],
        *,
        constant: bool = False,
    ) -> None:
        """Declare a module-level array global visible to every function."""
        element = parse_type(element_typename)
        if element.is_void or element.is_pointer:
            raise CompilationError(f"global {name}: unsupported element type {element}")
        array = ArrayType(element, len(values))
        self._module.add_global(name, array, list(values), constant=constant)

    def add_output_global(self, name: str, element_typename: str, count: int) -> None:
        """Declare a zero-initialised global used as an output buffer."""
        self.add_global(name, element_typename, [0] * count)

    def add_function(self, source: SourceLike) -> None:
        """Add a function given as source text or a Python function object."""
        if callable(source):
            source = inspect.getsource(source)
        source = textwrap.dedent(source)
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            raise CompilationError(f"cannot parse function source: {error}") from None
        found = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
        if not found:
            raise CompilationError("source does not contain a function definition")
        for node in found:
            self._function_sources.append((source, node))

    def add_functions(self, sources: Sequence[SourceLike]) -> None:
        for source in sources:
            self.add_function(source)

    # -- compilation -----------------------------------------------------------
    def compile(self, entry: str = "main") -> CompiledProgram:
        """Compile all added functions and return the finished program."""
        if not self._function_sources:
            raise CompilationError(f"program {self.name} has no functions")

        # Pass 1: build signatures so calls can be type-checked in any order.
        for _, node in self._function_sources:
            signature = self._build_signature(node)
            if signature.name in self._signatures:
                raise CompilationError(f"duplicate function {signature.name}")
            self._signatures[signature.name] = signature
            self._module.add_function(signature)

        # Pass 2: lower bodies.
        for _, node in self._function_sources:
            lowering = _FunctionLowering(
                compiler=self,
                node=node,
                function=self._signatures[node.name],
            )
            lowering.run()

        if entry not in self._signatures:
            raise CompilationError(f"program {self.name} has no entry function {entry!r}")
        self._module.finalize()
        if self.options.verify:
            verify_module(self._module)
        return CompiledProgram(module=self._module, entry=entry)

    # -- internals ---------------------------------------------------------------
    def _annotation_type(self, node: Optional[ast.expr], where: str) -> IRType:
        if node is None:
            return VOID
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return parse_type(node.value)
            except ValueError as error:
                raise CompilationError(str(error), location=where) from None
        if isinstance(node, ast.Constant) and node.value is None:
            return VOID
        raise CompilationError(
            "type annotations must be string literals such as \"i64\" or \"f64*\"",
            location=where,
        )

    def _build_signature(self, node: ast.FunctionDef) -> Function:
        where = f"{self.name}:{node.name}"
        if node.args.vararg or node.args.kwarg or node.args.kwonlyargs or node.args.defaults:
            raise CompilationError(
                "only plain positional parameters are supported", location=where
            )
        arg_types: List[IRType] = []
        arg_names: List[str] = []
        for arg in node.args.args:
            arg_type = self._annotation_type(arg.annotation, f"{where}:{arg.arg}")
            if arg_type.is_void:
                raise CompilationError(
                    f"parameter {arg.arg} must have a non-void type annotation",
                    location=where,
                )
            arg_types.append(arg_type)
            arg_names.append(arg.arg)
        return_type = self._annotation_type(node.returns, where)
        return Function(node.name, return_type, arg_types, arg_names)

    @property
    def module(self) -> Module:
        return self._module

    @property
    def signatures(self) -> Dict[str, Function]:
        return self._signatures


def compile_program(
    name: str,
    functions: Sequence[SourceLike],
    globals_: Optional[Dict[str, Tuple[str, Sequence[Union[int, float]]]]] = None,
    *,
    entry: str = "main",
    options: Optional[FrontendOptions] = None,
) -> CompiledProgram:
    """One-shot helper: declare globals, add functions, compile.

    ``globals_`` maps a global name to ``(element_typename, values)``.
    """
    compiler = ProgramCompiler(name, options)
    for global_name, (typename, values) in (globals_ or {}).items():
        compiler.add_global(global_name, typename, values)
    compiler.add_functions(functions)
    return compiler.compile(entry=entry)


@dataclass
class _LoopContext:
    break_target: BasicBlock
    continue_target: BasicBlock


@dataclass
class _Local:
    """A stack-slot local variable."""

    slot: Value
    type: IRType


class _FunctionLowering(ast.NodeVisitor):
    """Lowers a single Python function body into MiniIR."""

    def __init__(self, compiler: ProgramCompiler, node: ast.FunctionDef, function: Function) -> None:
        self.compiler = compiler
        self.node = node
        self.function = function
        self.options = compiler.options
        self.module = compiler.module
        self.where = f"{compiler.name}:{node.name}"
        self.builder: IRBuilder = IRBuilder(function, function.add_block("entry"))
        self.locals: Dict[str, _Local] = {}
        self.loop_stack: List[_LoopContext] = []
        self._terminated = False

    # -- driver ---------------------------------------------------------------
    def run(self) -> None:
        # Parameters get stack slots like any other local (clang -O0 style).
        for argument in self.function.arguments:
            slot = self.builder.alloca(argument.type, hint=f"{argument.name}.addr")
            self.builder.store(argument, slot)
            self.locals[argument.name] = _Local(slot, argument.type)

        self._lower_body(self.node.body)

        if not self._terminated:
            if self.function.return_type.is_void:
                self.builder.ret()
            elif isinstance(self.function.return_type, IntType):
                self.builder.ret(Constant(self.function.return_type, 0))
            elif isinstance(self.function.return_type, FloatType):
                self.builder.ret(Constant(self.function.return_type, 0.0))
            else:
                self.error(self.node, "missing return statement for pointer-returning function")

    def error(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", "?")
        raise CompilationError(message, location=f"{self.where}:{line}")

    # -- statements --------------------------------------------------------------
    def _lower_body(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            if self._terminated:
                # Unreachable trailing code (after return/break/continue) is
                # legal Python; simply ignore it.
                return
            self._lower_statement(statement)

    def _lower_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            self._lower_assign(statement)
        elif isinstance(statement, ast.AugAssign):
            self._lower_aug_assign(statement)
        elif isinstance(statement, ast.AnnAssign):
            self._lower_ann_assign(statement)
        elif isinstance(statement, ast.If):
            self._lower_if(statement)
        elif isinstance(statement, ast.While):
            self._lower_while(statement)
        elif isinstance(statement, ast.For):
            self._lower_for(statement)
        elif isinstance(statement, ast.Return):
            self._lower_return(statement)
        elif isinstance(statement, ast.Break):
            self._lower_break(statement)
        elif isinstance(statement, ast.Continue):
            self._lower_continue(statement)
        elif isinstance(statement, ast.Assert):
            self._lower_assert(statement)
        elif isinstance(statement, ast.Expr):
            self._lower_expr_statement(statement)
        elif isinstance(statement, ast.Pass):
            pass
        else:
            self.error(statement, f"unsupported statement: {type(statement).__name__}")

    def _lower_assign(self, statement: ast.Assign) -> None:
        if len(statement.targets) != 1:
            self.error(statement, "chained assignment is not supported")
        target = statement.targets[0]
        value, value_type = self._lower_expression(statement.value)
        self._store_to_target(target, value, value_type)

    def _lower_ann_assign(self, statement: ast.AnnAssign) -> None:
        if statement.value is None:
            self.error(statement, "annotated declaration requires an initial value")
        if not isinstance(statement.target, ast.Name):
            self.error(statement, "annotated assignment target must be a simple name")
        declared = self.compiler._annotation_type(statement.annotation, self.where)
        value, value_type = self._lower_expression(statement.value)
        value = self._coerce(value, value_type, declared, statement)
        self._store_to_name(statement.target.id, value, declared, statement)

    def _lower_aug_assign(self, statement: ast.AugAssign) -> None:
        load_node = ast.copy_location(
            ast.BinOp(
                left=self._target_as_expression(statement.target),
                op=statement.op,
                right=statement.value,
            ),
            statement,
        )
        ast.fix_missing_locations(load_node)
        value, value_type = self._lower_expression(load_node)
        self._store_to_target(statement.target, value, value_type)

    @staticmethod
    def _target_as_expression(target: ast.expr) -> ast.expr:
        copied = ast.copy_location(
            ast.Subscript(value=target.value, slice=target.slice, ctx=ast.Load())
            if isinstance(target, ast.Subscript)
            else ast.Name(id=target.id, ctx=ast.Load()),
            target,
        )
        ast.fix_missing_locations(copied)
        return copied

    def _store_to_target(self, target: ast.expr, value: Value, value_type: IRType) -> None:
        if isinstance(target, ast.Name):
            self._store_to_name(target.id, value, value_type, target)
        elif isinstance(target, ast.Subscript):
            pointer, element_type = self._lower_subscript_address(target)
            converted = self._coerce(value, value_type, element_type, target)
            self.builder.store(converted, pointer)
        elif isinstance(target, ast.Tuple):
            self.error(target, "tuple unpacking is not supported")
        else:
            self.error(target, f"unsupported assignment target: {type(target).__name__}")

    def _store_to_name(self, name: str, value: Value, value_type: IRType, node: ast.AST) -> None:
        if name in self.compiler.module.globals:
            self.error(node, f"cannot assign to global array {name!r}")
        local = self.locals.get(name)
        if local is None:
            slot = self.builder.alloca(value_type, hint=f"{name}.addr")
            local = _Local(slot, value_type)
            self.locals[name] = local
            converted = value
        else:
            converted = self._coerce(value, value_type, local.type, node)
        self.builder.store(converted, local.slot)

    def _lower_if(self, statement: ast.If) -> None:
        condition, condition_type = self._lower_expression(statement.test)
        condition = self._to_bool(condition, condition_type)
        then_block = self.builder.append_block("if.then")
        else_block = self.builder.append_block("if.else") if statement.orelse else None
        merge_block = self.builder.append_block("if.end")
        # Note: blocks are falsy while empty, so use an explicit None check.
        false_target = else_block if else_block is not None else merge_block
        self.builder.cond_branch(condition, then_block, false_target)

        self.builder.position_at_end(then_block)
        self._terminated = False
        self._lower_body(statement.body)
        then_terminated = self._terminated
        if not then_terminated:
            self.builder.branch(merge_block)

        else_terminated = False
        if else_block is not None:
            self.builder.position_at_end(else_block)
            self._terminated = False
            self._lower_body(statement.orelse)
            else_terminated = self._terminated
            if not else_terminated:
                self.builder.branch(merge_block)

        self.builder.position_at_end(merge_block)
        self._terminated = then_terminated and (else_block is not None and else_terminated)
        if self._terminated:
            # Merge block is unreachable but must still be terminated.
            self.builder.unreachable()

    def _lower_while(self, statement: ast.While) -> None:
        if statement.orelse:
            self.error(statement, "while/else is not supported")
        cond_block = self.builder.append_block("while.cond")
        body_block = self.builder.append_block("while.body")
        end_block = self.builder.append_block("while.end")
        self.builder.branch(cond_block)

        self.builder.position_at_end(cond_block)
        condition, condition_type = self._lower_expression(statement.test)
        condition = self._to_bool(condition, condition_type)
        self.builder.cond_branch(condition, body_block, end_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(break_target=end_block, continue_target=cond_block))
        self._terminated = False
        self._lower_body(statement.body)
        if not self._terminated:
            self.builder.branch(cond_block)
        self.loop_stack.pop()

        self.builder.position_at_end(end_block)
        self._terminated = False

    def _lower_for(self, statement: ast.For) -> None:
        if statement.orelse:
            self.error(statement, "for/else is not supported")
        if not isinstance(statement.target, ast.Name):
            self.error(statement, "for-loop target must be a simple name")
        call = statement.iter
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name) and call.func.id == "range"):
            self.error(statement, "for-loops must iterate over range(...)")
        if not 1 <= len(call.args) <= 3:
            self.error(statement, "range() takes 1 to 3 arguments")

        int_type = self.options.default_int
        if len(call.args) == 1:
            start: Value = Constant(int_type, 0)
            stop, stop_type = self._lower_expression(call.args[0])
            step: Value = Constant(int_type, 1)
            step_type: IRType = int_type
        elif len(call.args) == 2:
            start, start_type = self._lower_expression(call.args[0])
            start = self._coerce(start, start_type, int_type, statement)
            stop, stop_type = self._lower_expression(call.args[1])
            step, step_type = Constant(int_type, 1), int_type
        else:
            start, start_type = self._lower_expression(call.args[0])
            start = self._coerce(start, start_type, int_type, statement)
            stop, stop_type = self._lower_expression(call.args[1])
            step, step_type = self._lower_expression(call.args[2])
        stop = self._coerce(stop, stop_type, int_type, statement)
        step = self._coerce(step, step_type, int_type, statement)

        # Decide the loop comparison direction from a constant step when
        # possible (negative constant steps count down).
        descending = isinstance(step, Constant) and step.value < 0

        loop_name = statement.target.id
        self._store_to_name(loop_name, start, int_type, statement)
        loop_var = self.locals[loop_name]

        cond_block = self.builder.append_block("for.cond")
        body_block = self.builder.append_block("for.body")
        step_block = self.builder.append_block("for.step")
        end_block = self.builder.append_block("for.end")
        self.builder.branch(cond_block)

        self.builder.position_at_end(cond_block)
        current = self.builder.load(loop_var.slot, hint=loop_name)
        predicate = "sgt" if descending else "slt"
        condition = self.builder.icmp(predicate, current, stop)
        self.builder.cond_branch(condition, body_block, end_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append(_LoopContext(break_target=end_block, continue_target=step_block))
        self._terminated = False
        self._lower_body(statement.body)
        if not self._terminated:
            self.builder.branch(step_block)
        self.loop_stack.pop()

        self.builder.position_at_end(step_block)
        current = self.builder.load(loop_var.slot, hint=loop_name)
        advanced = self.builder.add(current, step)
        self.builder.store(advanced, loop_var.slot)
        self.builder.branch(cond_block)

        self.builder.position_at_end(end_block)
        self._terminated = False

    def _lower_return(self, statement: ast.Return) -> None:
        return_type = self.function.return_type
        if statement.value is None:
            if not return_type.is_void:
                self.error(statement, "non-void function must return a value")
            self.builder.ret()
        else:
            if return_type.is_void:
                self.error(statement, "void function cannot return a value")
            value, value_type = self._lower_expression(statement.value)
            value = self._coerce(value, value_type, return_type, statement)
            self.builder.ret(value)
        self._terminated = True

    def _lower_break(self, statement: ast.Break) -> None:
        if not self.loop_stack:
            self.error(statement, "break outside of a loop")
        self.builder.branch(self.loop_stack[-1].break_target)
        self._terminated = True

    def _lower_continue(self, statement: ast.Continue) -> None:
        if not self.loop_stack:
            self.error(statement, "continue outside of a loop")
        self.builder.branch(self.loop_stack[-1].continue_target)
        self._terminated = True

    def _lower_assert(self, statement: ast.Assert) -> None:
        condition, condition_type = self._lower_expression(statement.test)
        condition = self._to_bool(condition, condition_type)
        self.builder.call("__assert", [condition], VOID)

    def _lower_expr_statement(self, statement: ast.Expr) -> None:
        if isinstance(statement.value, ast.Constant) and isinstance(statement.value.value, str):
            return  # docstring
        self._lower_expression(statement.value)

    # -- expressions -----------------------------------------------------------------
    def _lower_expression(self, node: ast.expr) -> Tuple[Value, IRType]:
        if isinstance(node, ast.Constant):
            return self._lower_constant(node)
        if isinstance(node, ast.Name):
            return self._lower_name(node)
        if isinstance(node, ast.BinOp):
            return self._lower_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._lower_unaryop(node)
        if isinstance(node, ast.Compare):
            return self._lower_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._lower_boolop(node)
        if isinstance(node, ast.Subscript):
            return self._lower_subscript_load(node)
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, ast.IfExp):
            return self._lower_ifexp(node)
        self.error(node, f"unsupported expression: {type(node).__name__}")
        raise AssertionError("unreachable")

    def _lower_constant(self, node: ast.Constant) -> Tuple[Value, IRType]:
        value = node.value
        if isinstance(value, bool):
            return Constant(BOOL, 1 if value else 0), BOOL
        if isinstance(value, int):
            return Constant(self.options.default_int, value), self.options.default_int
        if isinstance(value, float):
            return Constant(self.options.default_float, value), self.options.default_float
        self.error(node, f"unsupported constant {value!r}")
        raise AssertionError("unreachable")

    def _lower_name(self, node: ast.Name) -> Tuple[Value, IRType]:
        name = node.id
        local = self.locals.get(name)
        if local is not None:
            loaded = self.builder.load(local.slot, hint=name)
            return loaded, local.type
        if name in self.module.globals:
            variable = self.module.globals[name]
            element = variable.element_type()
            # Globals decay to a pointer to their first element, computed
            # through a gep so the address lives in an (injectable) register.
            pointer = self.builder.gep(
                variable, Constant(self.options.default_int, 0), element, hint=name
            )
            return pointer, PointerType(element)
        self.error(node, f"use of undefined variable {name!r}")
        raise AssertionError("unreachable")

    _INT_OPS = {
        ast.Add: "add",
        ast.Sub: "sub",
        ast.Mult: "mul",
        ast.FloorDiv: "sdiv",
        ast.Mod: "srem",
        ast.BitAnd: "and",
        ast.BitOr: "or",
        ast.BitXor: "xor",
        ast.LShift: "shl",
        ast.RShift: "ashr",
    }
    _FLOAT_OPS = {
        ast.Add: "fadd",
        ast.Sub: "fsub",
        ast.Mult: "fmul",
        ast.Div: "fdiv",
    }

    def _lower_binop(self, node: ast.BinOp) -> Tuple[Value, IRType]:
        lhs, lhs_type = self._lower_expression(node.left)
        rhs, rhs_type = self._lower_expression(node.right)
        op = type(node.op)

        if isinstance(node.op, ast.Div):
            # True division is always floating point, like Python.
            lhs = self._coerce(lhs, lhs_type, self.options.default_float, node)
            rhs = self._coerce(rhs, rhs_type, self.options.default_float, node)
            return self.builder.fdiv(lhs, rhs), self.options.default_float

        use_float = isinstance(lhs_type, FloatType) or isinstance(rhs_type, FloatType)
        if isinstance(node.op, ast.Pow):
            lhs = self._coerce(lhs, lhs_type, self.options.default_float, node)
            rhs = self._coerce(rhs, rhs_type, self.options.default_float, node)
            result = self.builder.call("__pow", [lhs, rhs], self.options.default_float)
            return result, self.options.default_float

        if use_float:
            if op not in self._FLOAT_OPS:
                self.error(node, f"operator {op.__name__} is not supported on floats")
            lhs = self._coerce(lhs, lhs_type, self.options.default_float, node)
            rhs = self._coerce(rhs, rhs_type, self.options.default_float, node)
            opcode = self._FLOAT_OPS[op]
            return self.builder.binop(opcode, lhs, rhs), self.options.default_float

        # Pointer arithmetic: pointer + int behaves like a getelementptr.
        if isinstance(lhs_type, PointerType) and isinstance(node.op, (ast.Add, ast.Sub)):
            index = self._coerce(rhs, rhs_type, self.options.default_int, node)
            if isinstance(node.op, ast.Sub):
                index = self.builder.sub(Constant(self.options.default_int, 0), index)
            return self.builder.gep(lhs, index, lhs_type.pointee), lhs_type

        if op not in self._INT_OPS:
            self.error(node, f"operator {op.__name__} is not supported on integers")
        int_type = self.options.default_int
        lhs = self._coerce(lhs, lhs_type, int_type, node)
        rhs = self._coerce(rhs, rhs_type, int_type, node)
        opcode = self._INT_OPS[op]
        return self.builder.binop(opcode, lhs, rhs), int_type

    def _lower_unaryop(self, node: ast.UnaryOp) -> Tuple[Value, IRType]:
        value, value_type = self._lower_expression(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(value_type, FloatType):
                return self.builder.fsub(Constant(value_type, 0.0), value), value_type
            value = self._coerce(value, value_type, self.options.default_int, node)
            return (
                self.builder.sub(Constant(self.options.default_int, 0), value),
                self.options.default_int,
            )
        if isinstance(node.op, ast.UAdd):
            return value, value_type
        if isinstance(node.op, ast.Invert):
            value = self._coerce(value, value_type, self.options.default_int, node)
            return (
                self.builder.xor(value, Constant(self.options.default_int, -1)),
                self.options.default_int,
            )
        if isinstance(node.op, ast.Not):
            as_bool = self._to_bool(value, value_type)
            return self.builder.xor(as_bool, Constant(BOOL, 1)), BOOL
        self.error(node, f"unsupported unary operator {type(node.op).__name__}")
        raise AssertionError("unreachable")

    _COMPARE_PREDICATES = {
        ast.Eq: "eq",
        ast.NotEq: "ne",
        ast.Lt: "slt",
        ast.LtE: "sle",
        ast.Gt: "sgt",
        ast.GtE: "sge",
    }

    def _lower_compare(self, node: ast.Compare) -> Tuple[Value, IRType]:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            self.error(node, "chained comparisons are not supported")
        predicate = self._COMPARE_PREDICATES.get(type(node.ops[0]))
        if predicate is None:
            self.error(node, f"unsupported comparison {type(node.ops[0]).__name__}")
        lhs, lhs_type = self._lower_expression(node.left)
        rhs, rhs_type = self._lower_expression(node.comparators[0])

        if isinstance(lhs_type, FloatType) or isinstance(rhs_type, FloatType):
            lhs = self._coerce(lhs, lhs_type, self.options.default_float, node)
            rhs = self._coerce(rhs, rhs_type, self.options.default_float, node)
            return self.builder.fcmp(predicate, lhs, rhs), BOOL
        if isinstance(lhs_type, PointerType) and isinstance(rhs_type, PointerType):
            return self.builder.icmp(predicate, lhs, rhs), BOOL
        lhs = self._coerce(lhs, lhs_type, self.options.default_int, node)
        rhs = self._coerce(rhs, rhs_type, self.options.default_int, node)
        return self.builder.icmp(predicate, lhs, rhs), BOOL

    def _lower_boolop(self, node: ast.BoolOp) -> Tuple[Value, IRType]:
        """Short-circuit ``and``/``or`` via a stack slot for the result."""
        is_and = isinstance(node.op, ast.And)
        result_slot = self.builder.alloca(BOOL, hint="bool.tmp")

        def lower_chain(index: int) -> None:
            value, value_type = self._lower_expression(node.values[index])
            as_bool = self._to_bool(value, value_type)
            self.builder.store(as_bool, result_slot)
            if index == len(node.values) - 1:
                return
            continue_block = self.builder.append_block("bool.next")
            done_block = self.builder.append_block("bool.done")
            if is_and:
                self.builder.cond_branch(as_bool, continue_block, done_block)
            else:
                self.builder.cond_branch(as_bool, done_block, continue_block)
            self.builder.position_at_end(continue_block)
            lower_chain(index + 1)
            self.builder.branch(done_block)
            self.builder.position_at_end(done_block)

        lower_chain(0)
        return self.builder.load(result_slot, hint="bool"), BOOL

    def _lower_ifexp(self, node: ast.IfExp) -> Tuple[Value, IRType]:
        condition, condition_type = self._lower_expression(node.test)
        condition = self._to_bool(condition, condition_type)
        true_value, true_type = self._lower_expression(node.body)
        false_value, false_type = self._lower_expression(node.orelse)
        target = self._unify(true_type, false_type, node)
        true_value = self._coerce(true_value, true_type, target, node)
        false_value = self._coerce(false_value, false_type, target, node)
        return self.builder.select(condition, true_value, false_value), target

    def _lower_subscript_address(self, node: ast.Subscript) -> Tuple[Value, IRType]:
        base, base_type = self._lower_expression(node.value)
        if not isinstance(base_type, PointerType):
            self.error(node, f"cannot index a value of type {base_type}")
        index_node = node.slice
        index, index_type = self._lower_expression(index_node)
        index = self._coerce(index, index_type, self.options.default_int, node)
        element_type = base_type.pointee
        pointer = self.builder.gep(base, index, element_type)
        return pointer, element_type

    def _lower_subscript_load(self, node: ast.Subscript) -> Tuple[Value, IRType]:
        pointer, element_type = self._lower_subscript_address(node)
        loaded = self.builder.load(pointer)
        widened_type = self._widened(element_type)
        widened = self._coerce(loaded, element_type, widened_type, node)
        return widened, widened_type

    def _lower_call(self, node: ast.Call) -> Tuple[Value, IRType]:
        if node.keywords:
            self.error(node, "keyword arguments are not supported")
        if not isinstance(node.func, ast.Name):
            self.error(node, "only direct calls by name are supported")
        name = node.func.id

        if name in INLINE_BUILTINS:
            return self._lower_inline_builtin(name, node)
        if name in FRONTEND_BUILTINS:
            return self._lower_intrinsic_call(FRONTEND_BUILTINS[name], node)
        if name in MATH_BUILTINS:
            return self._lower_intrinsic_call(MATH_BUILTINS[name], node)
        if name in self.compiler.signatures:
            return self._lower_user_call(name, node)
        self.error(node, f"call to unknown function {name!r}")
        raise AssertionError("unreachable")

    def _lower_intrinsic_call(self, spec, node: ast.Call) -> Tuple[Value, IRType]:
        if len(node.args) != len(spec.arg_kinds):
            self.error(
                node,
                f"{spec.name}() takes {len(spec.arg_kinds)} arguments, got {len(node.args)}",
            )
        lowered: List[Value] = []
        for arg_node, kind in zip(node.args, spec.arg_kinds):
            value, value_type = self._lower_expression(arg_node)
            if kind == "int":
                value = self._coerce(value, value_type, self.options.default_int, node)
            elif kind == "float":
                value = self._coerce(value, value_type, self.options.default_float, node)
            lowered.append(value)
        if spec.return_kind == "void":
            self.builder.call(spec.intrinsic, lowered, VOID)
            return Constant(self.options.default_int, 0), self.options.default_int
        if spec.return_kind == "float":
            result = self.builder.call(spec.intrinsic, lowered, self.options.default_float)
            return result, self.options.default_float
        result = self.builder.call(spec.intrinsic, lowered, self.options.default_int)
        return result, self.options.default_int

    def _lower_user_call(self, name: str, node: ast.Call) -> Tuple[Value, IRType]:
        callee = self.compiler.signatures[name]
        if len(node.args) != len(callee.arguments):
            self.error(
                node,
                f"{name}() takes {len(callee.arguments)} arguments, got {len(node.args)}",
            )
        lowered: List[Value] = []
        for arg_node, formal in zip(node.args, callee.arguments):
            value, value_type = self._lower_expression(arg_node)
            value = self._coerce(value, value_type, formal.type, node)
            lowered.append(value)
        result = self.builder.call(callee, lowered)
        if callee.return_type.is_void:
            return Constant(self.options.default_int, 0), self.options.default_int
        return result, callee.return_type

    def _lower_inline_builtin(self, name: str, node: ast.Call) -> Tuple[Value, IRType]:
        if name == "array":
            return self._lower_array(node)
        if name == "malloc":
            return self._lower_malloc(node)
        if name in ("min", "max"):
            return self._lower_min_max(name, node)
        if name == "abs":
            return self._lower_abs(node)
        if name == "int":
            value, value_type = self._lower_expression(node.args[0])
            coerced = self._coerce(value, value_type, self.options.default_int, node)
            return coerced, self.options.default_int
        if name == "float":
            value, value_type = self._lower_expression(node.args[0])
            coerced = self._coerce(value, value_type, self.options.default_float, node)
            return coerced, self.options.default_float
        if name == "bool":
            value, value_type = self._lower_expression(node.args[0])
            return self._to_bool(value, value_type), BOOL
        self.error(node, f"unhandled builtin {name!r}")
        raise AssertionError("unreachable")

    def _element_type_argument(self, node: ast.Call, which: int) -> IRType:
        arg = node.args[which]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            self.error(node, "element type must be a string literal such as \"i32\"")
        try:
            element = parse_type(arg.value)
        except ValueError as error:
            self.error(node, str(error))
        if element.is_void or element.is_pointer:
            self.error(node, f"unsupported array element type {element}")
        return element

    def _lower_array(self, node: ast.Call) -> Tuple[Value, IRType]:
        if len(node.args) != 2:
            self.error(node, "array(element_type, count) takes exactly 2 arguments")
        element = self._element_type_argument(node, 0)
        count, count_type = self._lower_expression(node.args[1])
        count = self._coerce(count, count_type, self.options.default_int, node)
        pointer = self.builder.alloca(element, count, hint="arr")
        return pointer, PointerType(element)

    def _lower_malloc(self, node: ast.Call) -> Tuple[Value, IRType]:
        if len(node.args) != 2:
            self.error(node, "malloc(element_type, count) takes exactly 2 arguments")
        element = self._element_type_argument(node, 0)
        count, count_type = self._lower_expression(node.args[1])
        count = self._coerce(count, count_type, self.options.default_int, node)
        size = self.builder.mul(count, Constant(self.options.default_int, element.size_bytes()))
        pointer = self.builder.call("__malloc", [size], PointerType(element), hint="heap")
        return pointer, PointerType(element)

    def _lower_min_max(self, name: str, node: ast.Call) -> Tuple[Value, IRType]:
        if len(node.args) != 2:
            self.error(node, f"{name}(a, b) takes exactly 2 arguments")
        lhs, lhs_type = self._lower_expression(node.args[0])
        rhs, rhs_type = self._lower_expression(node.args[1])
        target = self._unify(lhs_type, rhs_type, node)
        lhs = self._coerce(lhs, lhs_type, target, node)
        rhs = self._coerce(rhs, rhs_type, target, node)
        predicate = "slt" if name == "min" else "sgt"
        if isinstance(target, FloatType):
            condition = self.builder.fcmp(predicate, lhs, rhs)
        else:
            condition = self.builder.icmp(predicate, lhs, rhs)
        return self.builder.select(condition, lhs, rhs), target

    def _lower_abs(self, node: ast.Call) -> Tuple[Value, IRType]:
        if len(node.args) != 1:
            self.error(node, "abs(x) takes exactly 1 argument")
        value, value_type = self._lower_expression(node.args[0])
        if isinstance(value_type, FloatType):
            result = self.builder.call("__fabs", [value], self.options.default_float)
            return result, self.options.default_float
        value = self._coerce(value, value_type, self.options.default_int, node)
        negated = self.builder.sub(Constant(self.options.default_int, 0), value)
        negative = self.builder.icmp("slt", value, Constant(self.options.default_int, 0))
        return self.builder.select(negative, negated, value), self.options.default_int

    # -- type plumbing ------------------------------------------------------------------
    def _widened(self, element_type: IRType) -> IRType:
        """Register type used for a value loaded from memory of ``element_type``."""
        if isinstance(element_type, IntType):
            return self.options.default_int
        if isinstance(element_type, FloatType):
            return self.options.default_float
        return element_type

    def _unify(self, a: IRType, b: IRType, node: ast.AST) -> IRType:
        if isinstance(a, FloatType) or isinstance(b, FloatType):
            return self.options.default_float
        if isinstance(a, PointerType):
            return a
        if isinstance(b, PointerType):
            return b
        if a == BOOL and b == BOOL:
            return BOOL
        return self.options.default_int

    def _to_bool(self, value: Value, value_type: IRType) -> Value:
        if value_type == BOOL:
            return value
        if isinstance(value_type, FloatType):
            return self.builder.fcmp("ne", value, Constant(value_type, 0.0))
        if isinstance(value_type, PointerType):
            zero = Constant(I64, 0)
            as_int = self.builder.cast("ptrtoint", value, I64)
            return self.builder.icmp("ne", as_int, zero)
        return self.builder.icmp("ne", value, Constant(value_type, 0))

    def _coerce(self, value: Value, from_type: IRType, to_type: IRType, node: ast.AST) -> Value:
        if from_type == to_type:
            return value
        if isinstance(value, Constant) and isinstance(to_type, (IntType, FloatType)):
            if isinstance(to_type, IntType) and isinstance(from_type, (IntType,)):
                return Constant(to_type, int(value.value))
            if isinstance(to_type, FloatType):
                return Constant(to_type, float(value.value))
            if isinstance(to_type, IntType) and isinstance(from_type, FloatType):
                return Constant(to_type, int(value.value))
        if isinstance(from_type, IntType) and isinstance(to_type, IntType):
            if to_type.width > from_type.width:
                opcode = "zext" if from_type == BOOL else "sext"
                return self.builder.cast(opcode, value, to_type)
            return self.builder.trunc(value, to_type)
        if isinstance(from_type, IntType) and isinstance(to_type, FloatType):
            return self.builder.sitofp(value, to_type)
        if isinstance(from_type, FloatType) and isinstance(to_type, IntType):
            return self.builder.fptosi(value, to_type)
        if isinstance(from_type, FloatType) and isinstance(to_type, FloatType):
            opcode = "fpext" if to_type.width > from_type.width else "fptrunc"
            return self.builder.cast(opcode, value, to_type)
        if isinstance(from_type, PointerType) and isinstance(to_type, IntType):
            return self.builder.cast("ptrtoint", value, to_type)
        if isinstance(from_type, IntType) and isinstance(to_type, PointerType):
            return self.builder.cast("inttoptr", value, to_type)
        if isinstance(from_type, PointerType) and isinstance(to_type, PointerType):
            return self.builder.cast("bitcast", value, to_type)
        self.error(node, f"cannot convert {from_type} to {to_type}")
        raise AssertionError("unreachable")
