"""Frontend builtin functions and their mapping to VM intrinsics.

Programs written for the frontend call ordinary-looking functions such as
``output``, ``sqrt`` or ``abort``.  The compiler lowers each of them either
to a VM intrinsic call (``__output``, ``__sqrt``, …) or to a short inline
MiniIR sequence (``min``/``max`` become ``select``).

Keeping the table here, separate from the compiler, makes it easy to assert
in tests that every builtin a benchmark uses has a lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class BuiltinSpec:
    """Description of a frontend builtin lowered to a VM intrinsic.

    ``arg_kinds`` / ``return_kind`` use coarse frontend kinds:
    ``"int"`` (i64), ``"float"`` (f64), ``"any"`` (no coercion), ``"void"``.
    """

    name: str
    intrinsic: str
    arg_kinds: Tuple[str, ...]
    return_kind: str


#: Builtins lowered 1:1 to VM intrinsics.
FRONTEND_BUILTINS: Dict[str, BuiltinSpec] = {
    "output": BuiltinSpec("output", "__output", ("any",), "void"),
    "abort": BuiltinSpec("abort", "__abort", (), "void"),
    "exit": BuiltinSpec("exit", "__exit", ("int",), "void"),
}

#: Math builtins — all take and return f64, mirroring libm.
MATH_BUILTINS: Dict[str, BuiltinSpec] = {
    name: BuiltinSpec(name, f"__{name}", ("float",) * arity, "float")
    for name, arity in (
        ("sqrt", 1),
        ("sin", 1),
        ("cos", 1),
        ("tan", 1),
        ("atan", 1),
        ("asin", 1),
        ("acos", 1),
        ("fabs", 1),
        ("floor", 1),
        ("ceil", 1),
        ("log", 1),
        ("exp", 1),
        ("pow", 2),
        ("fmin", 2),
        ("fmax", 2),
    )
}

#: Builtins the compiler expands inline rather than lowering to a call.
INLINE_BUILTINS = frozenset({"array", "malloc", "min", "max", "abs", "int", "float", "bool"})


def all_builtin_names() -> frozenset:
    """Every name the compiler treats as a builtin (reserved identifiers)."""
    return frozenset(FRONTEND_BUILTINS) | frozenset(MATH_BUILTINS) | INLINE_BUILTINS
