"""Frontend: compiles a restricted Python subset into MiniIR.

The benchmark programs of the paper are C programs compiled to LLVM IR.  In
this reproduction the programs are written in a small, statically-typeable
subset of Python (annotated functions, explicit element types for arrays)
and compiled by :class:`~repro.frontend.compiler.ProgramCompiler` into MiniIR
modules that the VM executes and the injector instruments.

The lowering style matches ``clang -O0`` (the configuration LLFI studies are
usually run at): every local variable becomes an ``alloca``'d stack slot,
reads are ``load``s and writes are ``store``s.  This produces the realistic
mix of address-producing and data-producing instructions that the paper uses
to explain the difference between inject-on-read and inject-on-write results.
"""

from repro.frontend.compiler import (
    CompiledProgram,
    FrontendOptions,
    ProgramCompiler,
    compile_program,
)
from repro.frontend.intrinsics import FRONTEND_BUILTINS, MATH_BUILTINS

__all__ = [
    "CompiledProgram",
    "FRONTEND_BUILTINS",
    "FrontendOptions",
    "MATH_BUILTINS",
    "ProgramCompiler",
    "compile_program",
]
